"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in offline environments lacking the ``wheel`` package
(PEP 660 editable installs need it): ``python setup.py develop`` or
``pip install -e . --no-build-isolation`` with old tooling.
"""

from setuptools import setup

setup()
