#!/usr/bin/env python3
"""DEPRECATED shim: use ``repro profile`` instead.

The standalone cProfile harness grew into the ``repro profile``
subcommand (:mod:`repro.cli`), which runs the phase-span profiler
(docs/performance.md), prints the per-phase hot-spot table, exports a
Perfetto-loadable Chrome trace with ``--spans-out``, and still offers
function-level cProfile output via ``--cprofile PATH``.

This wrapper keeps the old flags working for scripts that call it:

    python tools/profile_simulation.py --algorithm LOS --jobs 2000

``--output`` maps to ``repro profile --cprofile``; ``--sort``/``--top``
are accepted but ignored (inspect the dumped stats with ``pstats`` or
snakeviz, which sort interactively).
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algorithm", default="Delayed-LOS")
    parser.add_argument("--jobs", type=int, default=500)
    parser.add_argument("--p-small", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sort", default=None, help="ignored (deprecated)")
    parser.add_argument("--top", type=int, default=None, help="ignored (deprecated)")
    parser.add_argument("--output", default=None, help="maps to repro profile --cprofile")
    args = parser.parse_args(argv)

    print(
        "tools/profile_simulation.py is deprecated; use `repro profile` "
        "(same workload flags, plus --spans-out for a Perfetto timeline).",
        file=sys.stderr,
    )
    if args.sort is not None or args.top is not None:
        print(
            "note: --sort/--top are ignored; sort the --output stats with "
            "pstats or snakeviz instead.",
            file=sys.stderr,
        )

    forwarded = [
        "--algorithm", args.algorithm,
        "--jobs", str(args.jobs),
        "--p-small", str(args.p_small),
        "--seed", str(args.seed),
    ]
    if args.output:
        forwarded += ["--cprofile", args.output]

    from repro.cli import _profile_main

    return _profile_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
