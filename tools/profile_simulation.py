#!/usr/bin/env python3
"""Profile a simulation run (the guides' rule: no optimization without
measuring).

Runs one paper-scale simulation under cProfile and prints the top
functions by cumulative time, so hot spots are identified before
anyone "optimizes" anything:

    python tools/profile_simulation.py                       # Delayed-LOS, 500 jobs
    python tools/profile_simulation.py --algorithm LOS --jobs 2000
    python tools/profile_simulation.py --sort tottime --top 30
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

import numpy as np

from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import SimulationRunner
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algorithm", default="Delayed-LOS", choices=sorted(ALGORITHMS))
    parser.add_argument("--jobs", type=int, default=500)
    parser.add_argument("--p-small", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sort", default="cumulative", choices=["cumulative", "tottime", "ncalls"])
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument("--output", default=None, help="also save raw stats to this file")
    args = parser.parse_args()

    config = GeneratorConfig(
        n_jobs=args.jobs, size=TwoStageSizeConfig(p_small=args.p_small)
    )
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(args.seed))
    scheduler = make_scheduler(args.algorithm, max_skip_count=7)
    runner = SimulationRunner(workload, scheduler)

    profiler = cProfile.Profile()
    profiler.enable()
    metrics = runner.run()
    profiler.disable()

    print(
        f"{args.algorithm}: {metrics.n_jobs} jobs, utilization "
        f"{metrics.utilization:.3f}, mean wait {metrics.mean_wait:.0f}s\n"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw stats saved to {args.output} (view with snakeviz/pstats)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
