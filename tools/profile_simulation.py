#!/usr/bin/env python3
"""Profile a simulation run (the guides' rule: no optimization without
measuring).

Runs one paper-scale simulation under cProfile and prints the top
functions by cumulative time, so hot spots are identified before
anyone "optimizes" anything:

    python tools/profile_simulation.py                       # Delayed-LOS, 500 jobs
    python tools/profile_simulation.py --algorithm LOS --jobs 2000
    python tools/profile_simulation.py --sort tottime --top 30

Output goes through the same monospace table formatting as
``repro-sim --telemetry`` (:func:`repro.obs.telemetry.format_snapshot`
and :func:`repro.metrics.report.format_table`), so profiling sessions
and telemetry dumps read alike.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import List

import numpy as np

from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import format_table
from repro.obs.telemetry import format_snapshot
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

#: pstats sort key -> index into its per-function stat tuple
#: ``(call_count, n_calls, tottime, cumtime, callers)``.
_SORT_INDEX = {"ncalls": 1, "tottime": 2, "cumulative": 3}


def profile_table(stats: pstats.Stats, sort: str, top: int) -> str:
    """The top-``top`` profile rows as a monospace table."""
    entries = []
    for (filename, line, function), stat in stats.stats.items():  # type: ignore[attr-defined]
        call_count, n_calls, tottime, cumtime = stat[:4]
        where = f"{filename.rsplit('/', 1)[-1]}:{line}({function})"
        entries.append((n_calls, tottime, cumtime, where))
    entries.sort(key=lambda e: e[_SORT_INDEX[sort] - 1], reverse=True)
    rows: List[List[object]] = [
        [n_calls, f"{tottime:.4f}s", f"{cumtime:.4f}s", where]
        for n_calls, tottime, cumtime, where in entries[:top]
    ]
    return format_table(["ncalls", "tottime", "cumtime", "function"], rows)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algorithm", default="Delayed-LOS", choices=sorted(ALGORITHMS))
    parser.add_argument("--jobs", type=int, default=500)
    parser.add_argument("--p-small", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sort", default="cumulative", choices=sorted(_SORT_INDEX))
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument("--output", default=None, help="also save raw stats to this file")
    args = parser.parse_args()

    config = GeneratorConfig(
        n_jobs=args.jobs, size=TwoStageSizeConfig(p_small=args.p_small)
    )
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(args.seed))
    scheduler = make_scheduler(args.algorithm, max_skip_count=7)
    runner = SimulationRunner(workload, scheduler)

    profiler = cProfile.Profile()
    profiler.enable()
    metrics = runner.run()
    profiler.disable()

    print(
        f"{args.algorithm}: {metrics.n_jobs} jobs, utilization "
        f"{metrics.utilization:.3f}, mean wait {metrics.mean_wait:.0f}s"
    )
    if metrics.telemetry is not None:
        print(f"\n--- telemetry: {args.algorithm} ---")
        print(format_snapshot(metrics.telemetry))

    stats = pstats.Stats(profiler)
    print(f"\n--- profile: top {args.top} by {args.sort} ---")
    print(profile_table(stats, args.sort, args.top))
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw stats saved to {args.output} (view with snakeviz/pstats)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
