#!/usr/bin/env python3
"""Keep docs/observability.md's telemetry catalog in sync with the code.

Scans every module under ``src/repro`` for the names it emits into run
telemetry — ``bump(...)`` / ``Telemetry.count(...)`` counters,
``add_time(...)`` / ``timeit(...)`` timers, ``series_handle(...)``
timeseries, direct ``counters[...] =`` writes — expands the dynamic
families (``span_<phase>`` / ``span_<phase>_s`` / ``span_<phase>_self_s``
from :data:`repro.obs.spans.PHASES`, ``<series>_samples_dropped`` per
registered series) and verifies each concrete name appears, backtick
quoted, somewhere in docs/observability.md:

    python tools/check_counter_catalog.py            # report
    python tools/check_counter_catalog.py --check    # exit 1 on drift

CI runs the ``--check`` form next to ``gen_api_doc.py --check``: adding
a counter without cataloguing it fails the build, so the doc can never
silently drift from the instrumentation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Set

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOC = ROOT / "docs" / "observability.md"

#: Emission sites: regex -> what the captured name is.  ``\s*`` spans
#: newlines, so multi-line calls (the name literal on its own line)
#: still match.  f-string names deliberately do NOT match — dynamic
#: families are expanded explicitly below.
_EMITTERS = [
    (re.compile(r"\bbump\(\s*\"([a-z0-9_]+)\""), "counter"),
    (re.compile(r"\.count\(\s*\"([a-z0-9_]+)\""), "counter"),
    (re.compile(r"\bcounters\[\s*\"([a-z0-9_]+)\"\]\s*="), "counter"),
    (re.compile(r"\.add_time\(\s*\"([a-z0-9_]+)\""), "timer"),
    (re.compile(r"\.timeit\(\s*\"([a-z0-9_]+)\""), "timer"),
    (re.compile(r"\.series_handle\(\s*\"([a-z0-9_]+)\""), "series"),
]

#: Files whose string literals are examples, not emissions.
_SKIP = {"obs/telemetry.py"}  # doctest examples reuse real names anyway


def emitted_names() -> Dict[str, str]:
    """name -> kind for every telemetry name the code can emit."""
    names: Dict[str, str] = {}
    series: Set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        if str(path.relative_to(SRC)) in _SKIP:
            continue
        text = path.read_text(encoding="utf-8")
        for pattern, kind in _EMITTERS:
            for name in pattern.findall(text):
                names[name] = kind
                if kind == "series":
                    series.add(name)
    # Dynamic family 1: the span profiler folds one counter and two
    # timers per phase into telemetry (repro.obs.spans.fold_into).
    sys.path.insert(0, str(ROOT / "src"))
    from repro.obs.spans import PHASES

    for phase in PHASES:
        names[f"span_{phase}"] = "counter"
        names[f"span_{phase}_s"] = "timer"
        names[f"span_{phase}_self_s"] = "timer"
    # Dynamic family 2: every bounded series synthesizes a
    # ``<name>_samples_dropped`` counter when it decimates
    # (repro.obs.telemetry.Telemetry.snapshot).
    for name in series:
        names[f"{name}_samples_dropped"] = "counter"
    return names


def documented_tokens() -> Set[str]:
    """Every backtick-quoted identifier token in the catalog doc."""
    text = DOC.read_text(encoding="utf-8")
    tokens: Set[str] = set()
    # Fenced code blocks count as documentation too (usage examples),
    # and must be cut before inline-code extraction or their ``` fences
    # break the single-backtick pairing for the rest of the file.
    def _eat_fence(match: "re.Match[str]") -> str:
        tokens.update(re.findall(r"[A-Za-z0-9_]+", match.group(1)))
        return " "

    text = re.sub(r"```[a-z]*\n(.*?)```", _eat_fence, text, flags=re.S)
    for span in re.findall(r"`([^`]+)`", text):
        tokens.update(re.findall(r"[A-Za-z0-9_]+", span))
    return tokens


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when an emitted name is missing from the catalog",
    )
    args = parser.parse_args(argv)

    names = emitted_names()
    documented = documented_tokens()
    missing = sorted(name for name in names if name not in documented)
    print(
        f"{len(names)} telemetry names emitted by src/repro "
        f"({sum(1 for k in names.values() if k == 'counter')} counters, "
        f"{sum(1 for k in names.values() if k == 'timer')} timers, "
        f"{sum(1 for k in names.values() if k == 'series')} series)"
    )
    if missing:
        print(f"\nmissing from {DOC.relative_to(ROOT)}:")
        for name in missing:
            print(f"  {name}  ({names[name]})")
        if args.check:
            print("\ncatalog drift: document the names above (backtick-quoted)")
            return 1
    else:
        print(f"all catalogued in {DOC.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
