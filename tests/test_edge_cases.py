"""Degenerate geometries and boundary workloads.

Every scheduler and substrate must behave sensibly at the edges:
single-processor machines, full-machine jobs only, zero-length
workloads, 1-second jobs, serial (num=1, granularity=1) mixes, and
single-job heterogeneous/elastic corner cases.
"""

from __future__ import annotations

import pytest

from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import Workload
from repro.workload.job import Job, JobKind
from tests.conftest import batch_job, dedicated_job, make_workload

BATCH_NAMES = sorted(
    name for name in ALGORITHMS if not make_scheduler(name).handles_dedicated
)


class TestEmptyWorkload:
    @pytest.mark.parametrize("name", ["EASY", "Delayed-LOS", "Hybrid-LOS"])
    def test_zero_jobs(self, name):
        workload = make_workload([])
        metrics = simulate(workload, make_scheduler(name))
        assert metrics.n_jobs == 0
        assert metrics.utilization == 0.0
        assert metrics.makespan == 0.0
        assert metrics.slowdown == 1.0


class TestSingleProcessorMachine:
    @pytest.mark.parametrize("name", BATCH_NAMES)
    def test_serial_jobs_on_tiny_machine(self, name):
        jobs = [
            Job(job_id=i, submit=float(i), num=1, estimate=10.0) for i in range(1, 6)
        ]
        workload = Workload(jobs=jobs, machine_size=1, granularity=1)
        metrics = simulate(workload, make_scheduler(name))
        assert metrics.n_jobs == 5
        # One processor: strictly sequential, any policy.
        finishes = sorted(r.finish for r in metrics.records)
        starts = sorted(r.start for r in metrics.records)
        for finish, next_start in zip(finishes, starts[1:]):
            assert next_start >= finish - 1e-9


class TestFullMachineJobsOnly:
    @pytest.mark.parametrize("name", BATCH_NAMES)
    def test_sequential_execution(self, name):
        jobs = [batch_job(i, submit=0.0, num=320, estimate=50.0) for i in range(1, 4)]
        metrics = simulate(make_workload(jobs), make_scheduler(name))
        assert metrics.n_jobs == 3
        assert metrics.makespan == pytest.approx(150.0)
        assert metrics.utilization == pytest.approx(1.0)


class TestOneSecondJobs:
    def test_minimal_runtimes(self):
        jobs = [batch_job(i, submit=0.0, num=32, estimate=1.0) for i in range(1, 21)]
        metrics = simulate(make_workload(jobs), make_scheduler("Delayed-LOS"))
        assert metrics.n_jobs == 20
        # 10 fit at once: two 1-second waves.
        assert metrics.makespan == pytest.approx(2.0)


class TestSingleJobVariants:
    def test_single_dedicated_job(self):
        job = dedicated_job(1, submit=0.0, num=320, estimate=10.0, requested_start=100.0)
        metrics = simulate(make_workload([job]), make_scheduler("Hybrid-LOS"))
        assert metrics.records[0].start == 100.0
        # Utilization window covers the idle lead-in.
        assert metrics.utilization == pytest.approx(10.0 / 110.0)

    def test_single_elastic_job_extended_repeatedly(self):
        job = batch_job(1, submit=0.0, num=320, estimate=10.0)
        eccs = [
            ECC(job_id=1, issue_time=float(t), kind=ECCKind.EXTEND_TIME, amount=10.0)
            for t in (5, 12, 25)
        ]
        workload = make_workload([job], eccs=eccs)
        metrics = simulate(workload, make_scheduler("EASY-E"))
        assert metrics.records[0].finish == 40.0  # 10 + 3x10

    def test_job_exactly_machine_sized_with_granularity(self):
        workload = Workload(
            jobs=[batch_job(1, num=320, estimate=5.0)], machine_size=320, granularity=320
        )
        metrics = simulate(workload, make_scheduler("LOS"))
        assert metrics.n_jobs == 1


class TestPathologicalQueues:
    def test_thousand_identical_tiny_jobs(self):
        jobs = [batch_job(i, submit=0.0, num=32, estimate=2.0) for i in range(1, 501)]
        metrics = simulate(make_workload(jobs), make_scheduler("Delayed-LOS"))
        assert metrics.n_jobs == 500
        # 10 at a time, 2s each: 50 waves.
        assert metrics.makespan == pytest.approx(100.0)
        assert metrics.utilization == pytest.approx(1.0)

    def test_alternating_giant_and_tiny(self):
        jobs = []
        for i in range(1, 21):
            num = 320 if i % 2 else 32
            jobs.append(batch_job(i, submit=float(i), num=num, estimate=20.0))
        for name in ("EASY", "LOS", "Delayed-LOS", "CONSERVATIVE"):
            metrics = simulate(make_workload(jobs), make_scheduler(name))
            assert metrics.n_jobs == 20, name

    def test_simultaneous_dedicated_group_fills_machine(self):
        """Five same-start dedicated jobs exactly filling the machine."""
        jobs = [
            dedicated_job(i, submit=0.0, num=64, estimate=30.0, requested_start=50.0)
            for i in range(1, 6)
        ]
        metrics = simulate(make_workload(jobs), make_scheduler("Hybrid-LOS"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert all(start == 50.0 for start in starts.values())

    def test_estimates_much_longer_than_actuals(self):
        """Massive over-estimation: early terminations cascade."""
        jobs = [
            batch_job(i, submit=0.0, num=320, estimate=10_000.0, actual=5.0)
            for i in range(1, 11)
        ]
        metrics = simulate(make_workload(jobs), make_scheduler("EASY"))
        assert metrics.makespan == pytest.approx(50.0)


class TestRunnerReuse:
    def test_runner_instance_not_reusable_but_workload_is(self, small_batch_workload):
        runner = SimulationRunner(small_batch_workload, make_scheduler("EASY"))
        first = runner.run()
        # The workload itself supports unlimited fresh runs.
        second = SimulationRunner(small_batch_workload, make_scheduler("EASY")).run()
        assert [(r.job_id, r.start) for r in first.records] == [
            (r.job_id, r.start) for r in second.records
        ]
