"""Run the executable examples embedded in module docstrings.

Keeps the documentation honest: every ``>>>`` example in the covered
modules is executed on every test run.
"""

from __future__ import annotations

import doctest

import pytest

import repro.cluster.partition
import repro.core.dp
import repro.metrics.stats
import repro.metrics.timeline
import repro.sim.engine
import repro.workload.load

MODULES = [
    repro.cluster.partition,
    repro.core.dp,
    repro.metrics.stats,
    repro.metrics.timeline,
    repro.sim.engine,
    repro.workload.load,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
