"""Run the executable examples embedded in module docstrings.

Keeps the documentation honest: every ``>>>`` example in the covered
modules is executed on every test run.
"""

from __future__ import annotations

import doctest

import pytest

import repro.cluster.partition
import repro.core.dp
import repro.experiments.cache
import repro.metrics.stats
import repro.metrics.timeline
import repro.obs.analytics
import repro.obs.bench_history
import repro.obs.inspect
import repro.obs.progress
import repro.obs.telemetry
import repro.obs.trace_io
import repro.sim.engine
import repro.workload.load

MODULES = [
    repro.cluster.partition,
    repro.core.dp,
    repro.experiments.cache,
    repro.metrics.stats,
    repro.metrics.timeline,
    repro.obs.analytics,
    repro.obs.bench_history,
    repro.obs.inspect,
    repro.obs.progress,
    repro.obs.telemetry,
    repro.obs.trace_io,
    repro.sim.engine,
    repro.workload.load,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
