"""Atomic checksummed writes: round-trips and corruption detection."""

from __future__ import annotations

import json

import pytest

from repro.durable.atomic import (
    CorruptFileError,
    append_durable,
    atomic_write_bytes,
    checksummed_read,
    checksummed_write,
    read_header,
)

MAGIC = "repro.test/1"


class TestAtomicWrite:
    def test_writes_exact_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.bin"
        atomic_write_bytes(target, b"x")
        assert target.read_bytes() == b"x"


class TestChecksummedRoundTrip:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "entry"
        checksummed_write(target, b"the payload", magic=MAGIC, meta={"k": 1})
        header, payload = checksummed_read(target, magic=MAGIC)
        assert payload == b"the payload"
        assert header["magic"] == MAGIC
        assert header["meta"] == {"k": 1}

    def test_header_only_read(self, tmp_path):
        target = tmp_path / "entry"
        checksummed_write(target, b"xyz", magic=MAGIC, meta={"n": 7})
        assert read_header(target, magic=MAGIC)["meta"] == {"n": 7}

    def test_empty_payload(self, tmp_path):
        target = tmp_path / "entry"
        checksummed_write(target, b"", magic=MAGIC)
        _header, payload = checksummed_read(target, magic=MAGIC)
        assert payload == b""

    def test_missing_file_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            checksummed_read(tmp_path / "absent", magic=MAGIC)


class TestCorruptionDetection:
    def _write(self, tmp_path, payload=b"payload bytes"):
        target = tmp_path / "entry"
        checksummed_write(target, payload, magic=MAGIC)
        return target

    def test_flipped_payload_byte(self, tmp_path):
        target = self._write(tmp_path)
        data = bytearray(target.read_bytes())
        data[-1] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(CorruptFileError, match="SHA-256 mismatch"):
            checksummed_read(target, magic=MAGIC)

    def test_truncated_payload(self, tmp_path):
        target = self._write(tmp_path)
        data = target.read_bytes()
        target.write_bytes(data[:-4])
        with pytest.raises(CorruptFileError):
            checksummed_read(target, magic=MAGIC)

    def test_truncated_mid_header(self, tmp_path):
        target = self._write(tmp_path)
        target.write_bytes(target.read_bytes()[:10])
        with pytest.raises(CorruptFileError):
            checksummed_read(target, magic=MAGIC)

    def test_wrong_magic(self, tmp_path):
        target = self._write(tmp_path)
        with pytest.raises(CorruptFileError, match="magic"):
            checksummed_read(target, magic="repro.other/1")

    def test_garbage_file(self, tmp_path):
        target = tmp_path / "entry"
        target.write_bytes(b"not a container at all")
        with pytest.raises(CorruptFileError):
            checksummed_read(target, magic=MAGIC)

    def test_header_not_json(self, tmp_path):
        target = tmp_path / "entry"
        target.write_bytes(b"{broken json\npayload")
        with pytest.raises(CorruptFileError):
            checksummed_read(target, magic=MAGIC)


class TestAppendDurable:
    def test_appends_and_creates(self, tmp_path):
        target = tmp_path / "d" / "log.jsonl"
        append_durable(target, "one\n")
        append_durable(target, "two\n")
        assert target.read_text() == "one\ntwo\n"

    def test_lines_parse_back(self, tmp_path):
        target = tmp_path / "log.jsonl"
        for n in range(3):
            append_durable(target, json.dumps({"n": n}) + "\n")
        lines = target.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [0, 1, 2]
