"""Sweep manifests: durable completion tracking across crashes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.durable.manifest import SWEEP_MANIFEST_SCHEMA, SweepManifest
from repro.experiments import parallel
from repro.experiments.cache import RunCache
from repro.experiments.parallel import (
    RunSpec,
    SweepInterrupted,
    execute_runs,
    execute_spec,
)
from repro.experiments.sweep import run_algorithms
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

ALGOS = ["EASY", "LOS", "Delayed-LOS"]


def generate(seed=4, n_jobs=40):
    config = GeneratorConfig(n_jobs=n_jobs, size=TwoStageSizeConfig(p_small=0.5))
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


def specs_for(workload):
    return [RunSpec(workload=workload, algorithm=name) for name in ALGOS]


class TestManifestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        manifest = SweepManifest(path)
        manifest.begin(3)
        manifest.mark_done("aaa", algorithm="EASY")
        manifest.mark_done("bbb")
        manifest.finalize("complete")

        reloaded = SweepManifest(path)
        assert reloaded.done == {"aaa", "bbb"}
        assert reloaded.total == 3
        assert reloaded.status == "complete"
        assert len(reloaded) == 2
        assert reloaded.is_done("aaa") and not reloaded.is_done("ccc")

    def test_mark_done_is_idempotent(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        manifest = SweepManifest(path)
        manifest.begin(1)
        manifest.mark_done("aaa")
        manifest.mark_done("aaa")
        lines = path.read_text().splitlines()
        assert sum(1 for line in lines if '"done"' in line) == 1

    def test_new_begin_supersedes_old_end(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        manifest = SweepManifest(path)
        manifest.begin(2)
        manifest.mark_done("aaa")
        manifest.finalize("interrupted")
        manifest2 = SweepManifest(path)
        manifest2.begin(2)
        assert manifest2.status is None  # restarted
        assert manifest2.is_done("aaa")  # progress kept

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        manifest = SweepManifest(path)
        manifest.begin(2)
        manifest.mark_done("aaa")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"op": "done", "key": "bb')  # killed mid-append
        with pytest.warns(RuntimeWarning, match="malformed manifest line"):
            reloaded = SweepManifest(path)
        assert reloaded.done == {"aaa"}

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        path.write_text(
            json.dumps({"schema": "repro.sweep-manifest/999", "op": "begin"}) + "\n"
        )
        with pytest.raises(ValueError, match="schema"):
            SweepManifest(path)

    def test_schema_constant_on_first_line(self, tmp_path):
        path = tmp_path / "sweep.manifest"
        SweepManifest(path).begin(1)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == SWEEP_MANIFEST_SCHEMA


class TestExecuteRunsWithManifest:
    def test_complete_sweep_marks_every_spec(self, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        manifest = SweepManifest(tmp_path / "sweep.manifest")
        results = execute_runs(
            specs_for(generate()), jobs=1, cache=cache, manifest=manifest
        )
        assert len(results) == len(ALGOS)
        assert len(manifest.done) == len(ALGOS)
        assert manifest.status == "complete"
        assert manifest.total == len(ALGOS)

    def test_manifest_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            execute_runs(
                specs_for(generate()),
                jobs=1,
                cache=RunCache.disabled(),
                manifest=tmp_path / "sweep.manifest",
            )

    def test_path_coerced_to_manifest(self, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        path = tmp_path / "sweep.manifest"
        execute_runs(specs_for(generate()), jobs=1, cache=cache, manifest=path)
        assert SweepManifest(path).status == "complete"

    def test_interrupt_lands_partial_progress(self, tmp_path, monkeypatch):
        # Simulate a Ctrl-C striking during the second run: the first
        # result must already be durably landed (cache + manifest), and
        # the batch must surface SweepInterrupted with counts.
        workload = generate()
        cache = RunCache(root=tmp_path / "cache")
        manifest_path = tmp_path / "sweep.manifest"
        calls = []

        def interrupting(spec):
            if len(calls) == 1:
                raise KeyboardInterrupt
            calls.append(spec.algorithm)
            return execute_spec(spec)

        monkeypatch.setattr(parallel, "execute_spec", interrupting)
        with pytest.raises(SweepInterrupted) as info:
            execute_runs(
                specs_for(workload),
                jobs=1,
                cache=cache,
                manifest=SweepManifest(manifest_path),
            )
        assert info.value.completed == 1
        assert info.value.total == len(ALGOS)
        assert calls == ["EASY"]

        reloaded = SweepManifest(manifest_path)
        assert reloaded.status == "interrupted"
        assert len(reloaded.done) == 1

        # Re-running the same batch re-simulates only the remainder.
        monkeypatch.undo()
        cache2 = RunCache(root=tmp_path / "cache")
        results = execute_runs(
            specs_for(workload),
            jobs=1,
            cache=cache2,
            manifest=SweepManifest(manifest_path),
        )
        assert len(results) == len(ALGOS)
        assert cache2.stats.hits == 1  # EASY came back from the cache
        assert cache2.stats.stores == len(ALGOS) - 1
        final = SweepManifest(manifest_path)
        assert final.status == "complete"
        assert len(final.done) == len(ALGOS)

    def test_manifest_results_identical_to_plain_run(self, tmp_path):
        workload = generate()
        plain = execute_runs(specs_for(workload), jobs=1, cache=RunCache.disabled())
        managed = execute_runs(
            specs_for(workload),
            jobs=1,
            cache=RunCache(root=tmp_path / "cache"),
            manifest=SweepManifest(tmp_path / "sweep.manifest"),
        )
        assert managed == plain


class TestRunAlgorithmsPlumbing:
    def test_manifest_and_checkpoints_through_sweep_layer(self, tmp_path):
        workload = generate()
        results = run_algorithms(
            workload,
            ALGOS,
            jobs=1,
            cache=RunCache(root=tmp_path / "cache"),
            manifest=str(tmp_path / "sweep.manifest"),
            checkpoint_dir=str(tmp_path / "ck"),
            checkpoint_every=100,
        )
        assert set(results) == set(ALGOS)
        manifest = SweepManifest(tmp_path / "sweep.manifest")
        assert manifest.status == "complete"
        # Completed runs clean their checkpoints up (cache owns results).
        leftovers = list((tmp_path / "ck").rglob("*.ckpt"))
        assert leftovers == []

    def test_checkpointed_sweep_matches_plain(self, tmp_path):
        workload = generate()
        plain = run_algorithms(workload, ALGOS, jobs=1)
        durable = run_algorithms(
            workload,
            ALGOS,
            jobs=1,
            checkpoint_dir=str(tmp_path / "ck"),
            checkpoint_every=80,
        )
        assert durable == plain
