"""The resume oracle: a checkpointed/resumed run is bitwise-identical.

This is the durability layer's contract (docs/resilience.md): for every
registry algorithm, under fault injection, in streaming mode and with
tracing attached, completing a run from any mid-run checkpoint yields
the same :class:`~repro.metrics.records.RunMetrics` (dataclass
equality) and the same trace bytes as the uninterrupted run.  The
subprocess SIGKILL variant lives in ``test_kill_fuzz.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.registry import ALGORITHMS, make_scheduler
from repro.durable.atomic import checksummed_read, checksummed_write
from repro.durable.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConfig,
    CheckpointError,
    inspect_checkpoint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    resume,
    save_checkpoint,
)
from repro.experiments.runner import SimulationRunner, simulate
from repro.faults.model import FaultConfig
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.transform import make_malleable
from repro.workload.twostage import TwoStageSizeConfig

#: Fault-injected coverage uses this subset: non-elastic policies hit a
#: pre-existing full-machine-job-on-degraded-machine limitation that is
#: independent of checkpointing.
FAULT_ALGORITHMS = ["EASY", "LOS-E", "Hybrid-LOS-E"]

FAULTS = FaultConfig(mtbf=40000.0, mttr=2000.0, seed=5)


def generate(seed=11, n_jobs=60, p_dedicated=0.0, p_extend=0.3, p_reduce=0.2):
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_dedicated=p_dedicated,
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


def checkpointed_run(tmp_path, algorithm, *, faults=None, every=60, **kwargs):
    """One run checkpointed with unlimited retention; returns (metrics, dir)."""
    ckdir = tmp_path / f"ck-{algorithm}"
    config = CheckpointConfig(dir=ckdir, every_events=every, keep=0)
    metrics = simulate(
        generate(),
        make_scheduler(algorithm),
        faults=faults,
        checkpoint=config,
        **kwargs,
    )
    return metrics, ckdir


class TestResumeOracle:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_resume_matches_uninterrupted(self, tmp_path, algorithm):
        baseline = simulate(generate(), make_scheduler(algorithm))
        checkpointed, ckdir = checkpointed_run(tmp_path, algorithm)
        assert checkpointed == baseline, "checkpointing perturbed the run"
        checkpoints = list_checkpoints(ckdir)
        assert checkpoints, "run produced no checkpoints"
        middle = checkpoints[len(checkpoints) // 2]
        resumed = load_checkpoint(middle).run()
        assert resumed == baseline, f"resume diverged for {algorithm}"

    @pytest.mark.parametrize("algorithm", FAULT_ALGORITHMS)
    def test_resume_under_fault_injection(self, tmp_path, algorithm):
        baseline = simulate(generate(), make_scheduler(algorithm), faults=FAULTS)
        checkpointed, ckdir = checkpointed_run(tmp_path, algorithm, faults=FAULTS)
        assert checkpointed == baseline
        checkpoints = list_checkpoints(ckdir)
        middle = checkpoints[len(checkpoints) // 2]
        resumed = load_checkpoint(middle).run()
        assert resumed == baseline, f"fault-injected resume diverged for {algorithm}"
        assert resumed.requeue_count == baseline.requeue_count
        assert resumed.lost_work == baseline.lost_work

    def test_every_checkpoint_resumes_identically(self, tmp_path):
        # Not just the middle one: every checkpoint of a run is a valid
        # resume point producing the same final state.
        baseline = simulate(generate(), make_scheduler("Delayed-LOS-E"))
        _, ckdir = checkpointed_run(tmp_path, "Delayed-LOS-E", every=150)
        for path in list_checkpoints(ckdir):
            assert load_checkpoint(path).run() == baseline, path.name

    def test_online_aggregates_survive_resume(self, tmp_path):
        # RunMetrics equality excludes the online summary (compare=False),
        # so check it explicitly: the O(1)-memory aggregator state is part
        # of the checkpoint.
        workload = generate()
        baseline = SimulationRunner(
            workload, make_scheduler("LOS-E"), online=True
        ).run()
        ckdir = tmp_path / "ck"
        runner = SimulationRunner(
            generate(), make_scheduler("LOS-E"), online=True
        )
        runner.run(checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=0))
        checkpoints = list_checkpoints(ckdir)
        resumed = load_checkpoint(checkpoints[len(checkpoints) // 2]).run()
        assert baseline.online is not None
        assert resumed.online == baseline.online

    def test_resume_helper_runs_from_directory(self, tmp_path):
        baseline = simulate(generate(), make_scheduler("EASY"))
        _, ckdir = checkpointed_run(tmp_path, "EASY")
        assert resume(ckdir) == baseline

    def test_resume_with_dedicated_jobs(self, tmp_path):
        # Heterogeneous coverage: dedicated (rigid-start) jobs in the mix.
        workload = generate(p_dedicated=0.2)
        baseline = simulate(workload, make_scheduler("LOS-DE"))
        ckdir = tmp_path / "ck"
        simulate(
            generate(p_dedicated=0.2),
            make_scheduler("LOS-DE"),
            checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=0),
        )
        checkpoints = list_checkpoints(ckdir)
        middle = checkpoints[len(checkpoints) // 2]
        assert load_checkpoint(middle).run() == baseline


class TestTraceByteEquality:
    def test_resumed_trace_is_byte_identical(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        ckpt = tmp_path / "ckpt.jsonl"
        baseline = simulate(
            generate(), make_scheduler("Hybrid-LOS-E"), trace_out=str(plain)
        )
        ckdir = tmp_path / "ck"
        checkpointed = simulate(
            generate(),
            make_scheduler("Hybrid-LOS-E"),
            trace_out=str(ckpt),
            checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=0),
        )
        assert checkpointed == baseline
        expected = plain.read_bytes()
        assert ckpt.read_bytes() == expected

        # Resume from the middle: the journal truncates the trace back
        # to the checkpoint's offset and re-appends the tail, ending
        # byte-identical.
        checkpoints = list_checkpoints(ckdir)
        middle = checkpoints[len(checkpoints) // 2]
        resumed = load_checkpoint(middle).run()
        assert resumed == baseline
        assert ckpt.read_bytes() == expected

    def test_resume_truncates_torn_trace_tail(self, tmp_path):
        # A writer killed mid-record leaves a torn final line past the
        # journalled offset; resume discards it.
        trace = tmp_path / "run.jsonl"
        ckdir = tmp_path / "ck"
        baseline = simulate(generate(), make_scheduler("EASY"))
        simulate(
            generate(),
            make_scheduler("EASY"),
            trace_out=str(trace),
            checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=0),
        )
        expected = trace.read_bytes()
        checkpoints = list_checkpoints(ckdir)
        middle = checkpoints[len(checkpoints) // 2]
        offset = inspect_checkpoint(middle)["trace"]["offset"]
        with open(trace, "r+b") as fh:
            fh.truncate(offset)
            fh.seek(0, 2)
            fh.write(b'{"t": 123.0, "kind": "sta')  # torn mid-record
        resumed = load_checkpoint(middle).run()
        assert resumed == baseline
        assert trace.read_bytes() == expected


class TestStreamingResume:
    def test_synthetic_stream_resumes(self, tmp_path):
        from repro.workload.streaming import SyntheticStreamSpec

        spec = SyntheticStreamSpec(
            config=GeneratorConfig(
                n_jobs=120, size=TwoStageSizeConfig(p_small=0.5), p_extend=0.2
            ),
            seed=3,
        )
        baseline = simulate(spec.build(), make_scheduler("EASY"))
        ckdir = tmp_path / "ck"
        checkpointed = simulate(
            spec.build(),
            make_scheduler("EASY"),
            checkpoint=CheckpointConfig(dir=ckdir, every_events=80, keep=0),
        )
        assert checkpointed == baseline
        checkpoints = list_checkpoints(ckdir)
        middle = checkpoints[len(checkpoints) // 2]
        assert load_checkpoint(middle).run() == baseline

    def test_specless_stream_refuses_mid_stream_checkpoint(self, tmp_path):
        from repro.workload.streaming import JobStream

        # Longer than the admission window, so the stream is still
        # mid-flight (not yet exhausted) when the checkpoint is taken.
        workload = generate(n_jobs=200)
        stream = JobStream(
            items=iter(workload.jobs),
            machine_size=workload.machine_size,
            granularity=workload.granularity,
        )
        runner = SimulationRunner(stream, make_scheduler("EASY"))
        with pytest.raises(CheckpointError, match="spec"):
            save_checkpoint(runner, tmp_path / "ck")


class TestCheckpointFiles:
    def test_rotation_keeps_last_k(self, tmp_path):
        ckdir = tmp_path / "ck"
        simulate(
            generate(),
            make_scheduler("EASY"),
            checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=2),
        )
        assert len(list_checkpoints(ckdir)) <= 2

    def test_inspect_returns_metadata(self, tmp_path):
        _, ckdir = checkpointed_run(tmp_path, "EASY")
        path = latest_checkpoint(ckdir)
        meta = inspect_checkpoint(path)
        assert meta["algorithm"] == "EASY"
        assert meta["event_count"] > 0
        assert meta["seq_watermark"] >= 0
        assert meta["streaming"] is False

    def test_corrupt_checkpoint_is_rejected(self, tmp_path):
        _, ckdir = checkpointed_run(tmp_path, "EASY")
        path = latest_checkpoint(ckdir)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_checkpoint_is_rejected(self, tmp_path):
        _, ckdir = checkpointed_run(tmp_path, "EASY")
        path = latest_checkpoint(ckdir)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_latest_skips_corrupt_newest(self, tmp_path):
        baseline = simulate(generate(), make_scheduler("EASY"))
        _, ckdir = checkpointed_run(tmp_path, "EASY")
        checkpoints = list_checkpoints(ckdir)
        assert len(checkpoints) >= 2
        newest = checkpoints[-1]
        newest.write_bytes(b"garbage" * 100)
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            found = latest_checkpoint(ckdir)
        assert found == checkpoints[-2]
        assert load_checkpoint(found).run() == baseline

    def test_run_key_mismatch_is_rejected(self, tmp_path):
        runner = SimulationRunner(generate(), make_scheduler("EASY"))
        path = save_checkpoint(
            runner, CheckpointConfig(dir=tmp_path / "ck", run_key="abc")
        )
        assert load_checkpoint(path, expect_run_key="abc") is not None
        with pytest.raises(CheckpointError, match="run"):
            load_checkpoint(path, expect_run_key="different")

    def test_non_runner_payload_is_rejected(self, tmp_path):
        path = tmp_path / "ck" / "ckpt-000000000001.ckpt"
        checksummed_write(
            path,
            pickle.dumps({"not": "a runner"}),
            magic=CHECKPOINT_SCHEMA,
            meta={"seq_watermark": 0},
        )
        with pytest.raises(CheckpointError, match="SimulationRunner"):
            load_checkpoint(path)

    def test_checkpoint_is_checksummed_container(self, tmp_path):
        _, ckdir = checkpointed_run(tmp_path, "EASY")
        path = latest_checkpoint(ckdir)
        header, payload = checksummed_read(path, magic=CHECKPOINT_SCHEMA)
        assert header["magic"] == CHECKPOINT_SCHEMA
        assert isinstance(pickle.loads(payload), SimulationRunner)

    def test_telemetry_counts_checkpoints(self, tmp_path):
        metrics, ckdir = checkpointed_run(tmp_path, "EASY")
        assert metrics.telemetry is not None
        written = metrics.telemetry.counters.get("checkpoints_written", 0)
        assert written == len(list_checkpoints(ckdir))


class TestConfig:
    def test_coerce_accepts_paths_and_configs(self, tmp_path):
        config = CheckpointConfig.coerce(tmp_path)
        assert config.dir == tmp_path
        assert CheckpointConfig.coerce(config) is config
        with pytest.raises(TypeError):
            CheckpointConfig.coerce(42)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(dir=tmp_path, every_events=0)
        with pytest.raises(ValueError):
            CheckpointConfig(dir=tmp_path, every_seconds=0.0)
        with pytest.raises(ValueError):
            CheckpointConfig(dir=tmp_path, keep=-1)

    def test_resume_without_checkpoints_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            resume(tmp_path)

    def test_simulate_resume_from_rejects_extra_args(self, tmp_path):
        workload = generate(n_jobs=20)
        with pytest.raises(ValueError):
            simulate(workload, resume_from=tmp_path)


class TestMalleableResume:
    """Scheduler-initiated resizes are engine events like any other:
    resuming mid-run must replay them bit-for-bit
    (docs/malleability.md)."""

    @pytest.mark.parametrize(
        "algorithm", ["Malleable-FCFS", "Malleable-Backfill", "Malleable-Agreement"]
    )
    def test_resume_matches_uninterrupted(self, tmp_path, algorithm):
        workload = make_malleable(generate(), 1.0, seed=3)
        baseline = simulate(workload, make_scheduler(algorithm))
        ckdir = tmp_path / "ck"
        config = CheckpointConfig(dir=ckdir, every_events=60, keep=0)
        assert simulate(workload, make_scheduler(algorithm), checkpoint=config) == baseline
        checkpoints = list_checkpoints(ckdir)
        assert checkpoints, "run too short to checkpoint"
        middle = checkpoints[len(checkpoints) // 2]
        assert load_checkpoint(middle).run() == baseline

    def test_resumed_trace_with_resizes_is_byte_identical(self, tmp_path):
        workload = make_malleable(generate(), 1.0, seed=3)
        plain = tmp_path / "plain.jsonl"
        ckpt = tmp_path / "ckpt.jsonl"
        baseline = simulate(
            workload, make_scheduler("Malleable-Backfill"), trace_out=str(plain)
        )
        expected = plain.read_bytes()
        assert b'"origin": "scheduler"' in expected or b'"origin":"scheduler"' in expected, (
            "the scenario must actually exercise scheduler-initiated resizes"
        )
        ckdir = tmp_path / "ck"
        checkpointed = simulate(
            workload,
            make_scheduler("Malleable-Backfill"),
            trace_out=str(ckpt),
            checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=0),
        )
        assert checkpointed == baseline
        assert ckpt.read_bytes() == expected
        # resume from the middle; the journal truncates and re-appends
        checkpoints = list_checkpoints(ckdir)
        middle = checkpoints[len(checkpoints) // 2]
        resumed = load_checkpoint(middle).run()
        assert resumed == baseline
        assert ckpt.read_bytes() == expected
