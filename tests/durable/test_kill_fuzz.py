"""Kill-fuzz: SIGKILL a checkpointing run, resume, demand bitwise equality.

The strongest claim the durability layer makes is that a run killed at
an *arbitrary* moment — no warning, no cleanup, ``SIGKILL`` — and
resumed from its newest checkpoint finishes with exactly the metrics
and exactly the trace bytes of an uninterrupted run.  These tests
enforce it with real processes: a child simulates under periodic
checkpointing, the parent kills it once checkpoints appear (the poll
delay randomizes the kill point across event counts), then resumes
in-process and compares against a clean baseline.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.registry import make_scheduler
from repro.durable.checkpoint import CheckpointConfig, list_checkpoints, resume
from repro.durable.signals import EXIT_INTERRUPTED
from repro.experiments.runner import simulate
from repro.faults.model import FaultConfig
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

#: Workload parameters shared verbatim by parent and child process.
SEED, N_JOBS = 11, 300

FAULTS = FaultConfig(mtbf=40000.0, mttr=2000.0, seed=5)

CHILD_TEMPLATE = """\
import sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.core.registry import make_scheduler
from repro.durable.checkpoint import CheckpointConfig
from repro.experiments.runner import simulate
from repro.faults.model import FaultConfig
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

config = GeneratorConfig(
    n_jobs={n_jobs}, size=TwoStageSizeConfig(p_small=0.5),
    p_extend=0.3, p_reduce=0.2,
)
workload = CWFWorkloadGenerator(config).generate(np.random.default_rng({seed}))
faults = FaultConfig(mtbf=40000.0, mttr=2000.0, seed=5) if {faulty} else None
simulate(
    workload,
    make_scheduler({algorithm!r}),
    faults=faults,
    trace_out={trace!r},
    checkpoint=CheckpointConfig(dir={ckdir!r}, every_events=40, keep=3),
)
"""


def generate():
    config = GeneratorConfig(
        n_jobs=N_JOBS, size=TwoStageSizeConfig(p_small=0.5),
        p_extend=0.3, p_reduce=0.2,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(SEED))


def spawn_and_kill(tmp_path, algorithm, *, faulty=False, min_checkpoints=1):
    """Start a checkpointing child, SIGKILL it once checkpoints appear.

    Returns (checkpoint_dir, trace_path, killed) — ``killed`` is False
    when the child outran the poll and completed, which the caller
    treats identically (resume from the final checkpoint must still be
    exact).
    """
    ckdir = tmp_path / "ck"
    trace = tmp_path / "run.jsonl"
    script = tmp_path / "child.py"
    script.write_text(CHILD_TEMPLATE.format(
        src=str(SRC), n_jobs=N_JOBS, seed=SEED, faulty=faulty,
        algorithm=algorithm, trace=str(trace), ckdir=str(ckdir),
    ))
    child = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        cwd=str(tmp_path),
    )
    killed = False
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break
            if len(list_checkpoints(ckdir)) >= min_checkpoints:
                child.kill()  # SIGKILL: no handlers, no cleanup
                killed = True
                break
            time.sleep(0.002)
        else:
            pytest.fail("child produced no checkpoint within 120s")
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    if not killed and child.returncode != 0:
        stderr = child.stderr.read().decode(errors="replace")
        pytest.fail(f"child failed before any checkpoint:\n{stderr}")
    assert list_checkpoints(ckdir), "no checkpoint survived the kill"
    return ckdir, trace, killed


class TestKillFuzz:
    @pytest.mark.parametrize(
        "algorithm", ["LOS", "LOS-E", "Delayed-LOS-E", "Hybrid-LOS-E"]
    )
    def test_sigkill_resume_is_bitwise_equal(self, tmp_path, algorithm):
        baseline_trace = tmp_path / "baseline.jsonl"
        baseline = simulate(
            generate(), make_scheduler(algorithm), trace_out=str(baseline_trace)
        )
        ckdir, trace, _killed = spawn_and_kill(tmp_path, algorithm)
        metrics = resume(ckdir)
        assert metrics == baseline, f"kill/resume diverged for {algorithm}"
        assert trace.read_bytes() == baseline_trace.read_bytes()

    def test_sigkill_resume_under_fault_injection(self, tmp_path):
        baseline_trace = tmp_path / "baseline.jsonl"
        baseline = simulate(
            generate(),
            make_scheduler("LOS-E"),
            faults=FAULTS,
            trace_out=str(baseline_trace),
        )
        ckdir, trace, _killed = spawn_and_kill(tmp_path, "LOS-E", faulty=True)
        metrics = resume(ckdir)
        assert metrics == baseline
        assert metrics.requeue_count == baseline.requeue_count
        assert trace.read_bytes() == baseline_trace.read_bytes()

    def test_repeated_kill_resume_cycles(self, tmp_path):
        # Kill, resume-with-checkpointing, kill the *resumed* run too,
        # resume again: progress must survive arbitrary cycle counts.
        baseline = simulate(generate(), make_scheduler("LOS"))
        ckdir, _trace, killed = spawn_and_kill(tmp_path, "LOS", min_checkpoints=2)
        before = list_checkpoints(ckdir)[-1]
        if killed:
            # Second cycle: resume in a child and kill that one as well.
            script = tmp_path / "resume_child.py"
            script.write_text(
                f"import sys\n"
                f"sys.path.insert(0, {str(SRC)!r})\n"
                f"from repro.durable.checkpoint import CheckpointConfig, resume\n"
                f"resume({str(ckdir)!r}, checkpoint=CheckpointConfig("
                f"dir={str(ckdir)!r}, every_events=40, keep=3))\n"
            )
            child = subprocess.Popen(
                [sys.executable, str(script)], stdout=subprocess.DEVNULL
            )
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if list_checkpoints(ckdir) and list_checkpoints(ckdir)[-1] != before:
                    child.kill()
                    break
                time.sleep(0.002)
            child.wait(timeout=60)
        assert resume(ckdir) == baseline


class TestCliInterruptAndResume:
    def test_sigterm_checkpoints_then_cli_resume_completes(self, tmp_path):
        # A SIGTERM'd CLI sweep exits with the distinct resumable code
        # (75) after writing a final checkpoint; `repro resume` then
        # finishes the run and cleans the checkpoints up.
        ckdir = tmp_path / "ck"
        env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_JOBS="1")
        child = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "--algorithms", "LOS",
                "--jobs", "1200",
                "--checkpoint-dir", str(ckdir),
                "--checkpoint-every", "40",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            cwd=str(tmp_path),
            env=env,
        )
        deadline = time.monotonic() + 180
        terminated = False
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break
            if list_checkpoints(ckdir / "LOS"):
                child.send_signal(signal.SIGTERM)
                terminated = True
                break
            time.sleep(0.002)
        returncode = child.wait(timeout=120)
        if not terminated:
            pytest.skip("run completed before SIGTERM could be delivered")
        assert returncode == EXIT_INTERRUPTED
        assert list_checkpoints(ckdir / "LOS"), "no final checkpoint on SIGTERM"

        from repro.cli import repro_main

        assert repro_main(["resume", str(ckdir / "LOS")]) == 0
        assert list_checkpoints(ckdir / "LOS") == []  # cleaned up when done
