"""Unit tests for the trace log."""

from __future__ import annotations

from repro.sim.trace import TraceLog, TraceRecord


class TestTraceLog:
    def test_record_and_query(self):
        log = TraceLog()
        log.record(1.0, "start", job=1)
        log.record(2.0, "finish", job=1)
        assert len(log) == 2
        assert log[0].kind == "start"
        assert log[1].data == {"job": 1}

    def test_of_kind_filters_in_order(self):
        log = TraceLog()
        log.record(1.0, "a")
        log.record(2.0, "b")
        log.record(3.0, "a")
        kinds = [r.time for r in log.of_kind("a")]
        assert kinds == [1.0, 3.0]

    def test_of_kind_multiple(self):
        log = TraceLog()
        log.record(1.0, "a")
        log.record(2.0, "b")
        log.record(3.0, "c")
        assert len(log.of_kind("a", "c")) == 2

    def test_kinds_set(self):
        log = TraceLog()
        log.record(1.0, "a")
        log.record(2.0, "a")
        log.record(3.0, "b")
        assert log.kinds() == {"a", "b"}

    def test_between_is_inclusive(self):
        log = TraceLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.record(t, "x")
        assert [r.time for r in log.between(2.0, 3.0)] == [2.0, 3.0]

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "a")
        log.extend([TraceRecord(2.0, "b")])
        assert len(log) == 0

    def test_is_time_ordered(self):
        log = TraceLog()
        log.record(1.0, "a")
        log.record(2.0, "a")
        assert log.is_time_ordered()
        log.extend([TraceRecord(0.5, "late")])
        assert not log.is_time_ordered()

    def test_iteration(self):
        log = TraceLog()
        log.record(1.0, "a")
        log.record(2.0, "b")
        assert [r.kind for r in log] == ["a", "b"]
