"""Unit and property tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventPriority


class TestScheduling:
    def test_schedule_at_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.schedule_at(2.0, lambda: fired.append(sim.now))
        processed = sim.run()
        assert processed == 2
        assert fired == [2.0, 5.0]
        assert sim.now == 5.0

    def test_schedule_in_relative(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [13.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError, match="clock is at"):
            sim.schedule_at(9.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="negative delay"):
            sim.schedule_in(-1.0, lambda: None)

    def test_same_time_priority_ordering(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("low"), priority=EventPriority.LOW)
        sim.schedule_at(1.0, lambda: fired.append("finish"), priority=EventPriority.FINISH)
        sim.schedule_at(1.0, lambda: fired.append("arrival"), priority=EventPriority.ARRIVAL)
        sim.run()
        assert fired == ["finish", "arrival", "low"]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule_in(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        event.cancel()
        assert sim.run() == 1
        assert fired == ["b"]

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule_at(1.0, lambda: None)
        drop = sim.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1
        assert list(sim.pending()) == [keep]

    def test_peek_time_skips_cancelled_head(self):
        sim = Simulator()
        head = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        head.cancel()
        assert sim.peek_time() == 2.0


class TestRunControl:
    def test_until_processes_inclusive_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1, 2]
        assert sim.now == 2.0
        assert sim.pending_count() == 1

    def test_until_advances_clock_when_no_events(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_stops_early(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending_count() == 2

    def test_step_returns_none_when_drained(self):
        sim = Simulator()
        assert sim.step() is None

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError, match="not reentrant"):
                sim.run()

        sim.schedule_at(1.0, nested)
        sim.run()

    def test_processed_events_counter(self):
        sim = Simulator()
        for t in range(4):
            sim.schedule_at(float(t), lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestClockMonotonicity:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_events_fire_in_nondecreasing_time_order(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule_at(t, lambda t=t: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=100), min_size=2, max_size=30
        ),
        cancel_index=st.integers(min_value=0, max_value=29),
    )
    def test_cancellation_never_affects_other_events(self, times, cancel_index):
        sim = Simulator()
        events = [sim.schedule_at(float(t), lambda: None) for t in times]
        victim = events[cancel_index % len(events)]
        victim.cancel()
        assert sim.run() == len(times) - 1


class TestLiveEventAccounting:
    """The O(1) pending counter and the cancelled-heap compaction."""

    def test_pending_count_exact_through_mixed_lifecycle(self):
        sim = Simulator()
        events = [sim.schedule_at(float(t), lambda: None) for t in range(10)]
        assert sim.pending_count() == 10
        for event in events[::2]:
            event.cancel()
        assert sim.pending_count() == 5
        sim.run()
        assert sim.pending_count() == 0

    def test_double_cancel_does_not_corrupt_count(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_count() == 1

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.step()  # fires `event`
        event.cancel()
        assert sim.pending_count() == 1

    def test_compaction_drops_cancelled_events(self):
        sim = Simulator()
        doomed = [sim.schedule_at(float(t), lambda: None) for t in range(100)]
        survivor = sim.schedule_at(200.0, lambda: None)
        for event in doomed:
            event.cancel()
        # Cancelled events outnumbered live ones mid-way, so the heap
        # was compacted down to the survivor (at most one cancelled
        # event may linger below the compaction threshold).
        assert len(sim._heap) <= 2
        assert sim.pending_count() == 1
        assert sim.peek_time() == 200.0
        sim.run()
        assert survivor.cancelled is False

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        fired = []
        keep = []
        for t in range(50):
            event = sim.schedule_at(float(t), lambda t=t: fired.append(t))
            if t % 5:
                event.cancel()
            else:
                keep.append(t)
        sim.run()
        assert fired == keep

    def test_reschedule_churn_stays_compact(self):
        """Elastic-style churn: repeatedly cancel + reschedule one
        finish event; the heap must not accumulate dead entries."""
        sim = Simulator()
        event = sim.schedule_at(1000.0, lambda: None)
        for i in range(1000):
            event.cancel()
            event = sim.schedule_at(1000.0 + i, lambda: None)
        assert sim.pending_count() == 1
        assert len(sim._heap) <= 3
