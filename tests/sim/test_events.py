"""Unit tests for event records and ordering."""

from __future__ import annotations

from repro.sim.events import Event, EventPriority


def _event(time: float, priority: int = EventPriority.LOW) -> Event:
    return Event(time=time, priority=priority, action=lambda: None)


class TestOrdering:
    def test_earlier_time_fires_first(self):
        assert _event(1.0) < _event(2.0)

    def test_priority_breaks_time_ties(self):
        finish = _event(5.0, EventPriority.FINISH)
        schedule = _event(5.0, EventPriority.SCHEDULE)
        assert finish < schedule

    def test_sequence_breaks_full_ties(self):
        first = _event(5.0, EventPriority.LOW)
        second = _event(5.0, EventPriority.LOW)
        assert first < second  # scheduling order preserved
        assert first.seq < second.seq

    def test_priority_enum_encodes_semantics(self):
        # Terminations release capacity before the scheduler observes
        # state; ECCs apply before arrivals; the cycle runs last.
        assert (
            EventPriority.FINISH
            < EventPriority.ECC
            < EventPriority.ARRIVAL
            < EventPriority.TIMER
            < EventPriority.SCHEDULE
        )

    def test_sort_key_matches_lt(self):
        a, b = _event(1.0, 3), _event(1.0, 2)
        assert (a < b) == (a.sort_key() < b.sort_key())
        assert b < a


class TestCancellation:
    def test_cancel_sets_flag(self):
        event = _event(1.0)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        event = _event(1.0)
        event.cancel()
        event.cancel()
        assert event.cancelled
