"""Property: DP packing dominates greedy backfilling instantaneously.

At any single scheduling instant, Delayed-LOS (before its C_s
threshold trips) solves the exact knapsack EASY approximates greedily,
under the *same* constraints — free capacity now plus the head job's
shadow reservation.  Therefore the processors occupied after running
either policy to fix-point from identical state must satisfy

    used(Delayed-LOS) >= used(EASY).

This is the formal content of the paper's Figure 2 argument, checked
on randomized states with hypothesis.  (Continuous estimates avoid the
one boundary asymmetry: EASY admits a backfill ending *exactly* at the
shadow time, while Reservation_DP's strict ``<`` charges it to the
freeze capacity.)
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.delayed_los import DelayedLOS
from repro.core.easy import EasyBackfill
from repro.workload.job import Job
from tests.core.policy_harness import PolicyHarness

job_strategy = st.tuples(
    st.integers(1, 10),  # size
    st.floats(1.0, 1000.0, allow_nan=False),  # estimate (continuous!)
)


def build_harness(active_specs, queue_specs) -> PolicyHarness:
    harness = PolicyHarness(total=10, granularity=1, now=0.0)
    for index, (num, estimate) in enumerate(active_specs, start=1000):
        remaining_capacity = harness.machine.free
        if num > remaining_capacity:
            continue
        job = Job(job_id=index, submit=0.0, num=num, estimate=estimate + 0.123)
        harness.run_job(job, started_at=-0.5)  # already running
    for index, (num, estimate) in enumerate(queue_specs, start=1):
        harness.enqueue(
            Job(job_id=index, submit=float(index) * 0.001, num=num, estimate=estimate)
        )
    return harness


@settings(max_examples=200, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    active_specs=st.lists(job_strategy, max_size=4),
    queue_specs=st.lists(job_strategy, min_size=1, max_size=8),
)
def test_delayed_los_never_packs_less_than_easy(active_specs, queue_specs):
    dp_harness = build_harness(active_specs, queue_specs)
    easy_harness = build_harness(active_specs, queue_specs)
    assert dp_harness.machine.used == easy_harness.machine.used  # identical states

    dp_harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=100, lookahead=None))
    easy_harness.cycle_to_fixpoint(EasyBackfill())

    assert dp_harness.machine.used >= easy_harness.machine.used, (
        f"DP packed {dp_harness.machine.used}, EASY packed "
        f"{easy_harness.machine.used} from the same state"
    )


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(queue_specs=st.lists(job_strategy, min_size=1, max_size=8))
def test_dp_achieves_exact_knapsack_on_idle_machine(queue_specs):
    """On an idle machine the DP's fix-point utilization equals the
    exact knapsack optimum over the queue."""
    from itertools import combinations

    harness = build_harness([], queue_specs)
    harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=100, lookahead=None))

    sizes = [num for num, _ in queue_specs]
    best = 0
    for r in range(len(sizes) + 1):
        for combo in combinations(sizes, r):
            total = sum(combo)
            if total <= 10:
                best = max(best, total)
    assert harness.machine.used == best
