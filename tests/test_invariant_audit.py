"""Deep invariant auditing: every algorithm, every cycle.

Uses the library's :class:`~repro.core.audit.AuditingScheduler` (see
its docstring) to re-check the paper's Notations-box invariants on
every scheduling pass of full simulations, across the whole registry —
plus direct tests that deliberately misbehaving policies are caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.audit import AuditingScheduler, AuditViolation
from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import SimulationRunner
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig


def _workload(p_dedicated: float, elastic: bool, seed: int):
    config = GeneratorConfig(
        n_jobs=70,
        size=TwoStageSizeConfig(p_small=0.4),
        p_dedicated=p_dedicated,
        p_extend=0.3 if elastic else 0.0,
        p_reduce=0.2 if elastic else 0.0,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_every_algorithm_passes_full_audit(name):
    scheduler = make_scheduler(name)
    workload = _workload(
        p_dedicated=0.4 if scheduler.handles_dedicated else 0.0,
        elastic=scheduler.elastic,
        seed=555,
    )
    audited = AuditingScheduler(scheduler)
    metrics = SimulationRunner(workload, audited).run()
    assert metrics.n_jobs == len(workload)
    assert audited.passes > len(workload), "auditor must have seen real cycles"


class OvercommittingPolicy(Scheduler):
    """Deliberately broken: starts everything, capacity be damned."""

    name = "BROKEN-OVERCOMMIT"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        return CycleDecision(starts=ctx.batch_queue.jobs())


class PhantomStartPolicy(Scheduler):
    """Deliberately broken: starts a job that is not queued."""

    name = "BROKEN-PHANTOM"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        from tests.conftest import batch_job

        if ctx.batch_queue:
            return CycleDecision(starts=[batch_job(999_999, num=32)])
        return CycleDecision.nothing()


class TestAuditorCatchesMisbehaviour:
    def test_overcommit_detected(self):
        workload = _workload(0.0, False, seed=1)
        runner = SimulationRunner(workload, AuditingScheduler(OvercommittingPolicy()))
        with pytest.raises(AuditViolation, match="overcommitted"):
            runner.run()

    def test_phantom_start_detected(self):
        workload = _workload(0.0, False, seed=2)
        runner = SimulationRunner(workload, AuditingScheduler(PhantomStartPolicy()))
        with pytest.raises(AuditViolation, match="non-queued"):
            runner.run()

    def test_wrapper_is_transparent(self):
        """Auditing must not change any scheduling decision."""
        workload = _workload(0.0, False, seed=3)
        plain = SimulationRunner(workload, make_scheduler("Delayed-LOS")).run()
        audited = SimulationRunner(
            workload, AuditingScheduler(make_scheduler("Delayed-LOS"))
        ).run()
        assert [(r.job_id, r.start) for r in plain.records] == [
            (r.job_id, r.start) for r in audited.records
        ]

    def test_wrapper_propagates_flags(self):
        wrapped = AuditingScheduler(make_scheduler("Hybrid-LOS-E"))
        assert wrapped.handles_dedicated
        assert wrapped.elastic
