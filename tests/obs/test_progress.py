"""Progress events: tracker semantics, reporter output, executor wiring."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.experiments.cache import RunCache
from repro.experiments.parallel import RunSpec, execute_runs, fork_available, parallel_map
from repro.obs.progress import (
    ProgressEvent,
    ProgressReporter,
    ProgressTracker,
    format_duration,
    format_event,
)
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def small_workload(seed: int = 7, n_jobs: int = 40):
    config = GeneratorConfig(n_jobs=n_jobs)
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


class TestTracker:
    def test_counts_and_kinds(self):
        events = []
        clock = iter(float(i) for i in range(10)).__next__
        tracker = ProgressTracker(total=4, callback=events.append, clock=clock)
        tracker.hit()
        tracker.hit()
        tracker.ran()
        tracker.ran(retried=True)
        assert [e.kind for e in events] == ["hit", "hit", "run", "retry"]
        last = events[-1]
        assert (last.done, last.total, last.cached, last.fresh, last.retried) == (
            4, 4, 2, 2, 1,
        )

    def test_eta_none_until_first_cold_run(self):
        events = []
        clock = iter([0.0, 1.0, 2.0]).__next__
        tracker = ProgressTracker(total=3, callback=events.append, clock=clock)
        tracker.hit()
        assert events[0].eta_s is None
        tracker.ran()
        # One cold run took 2s (elapsed), one run remains -> eta 2s.
        assert events[1].eta_s == pytest.approx(2.0)

    def test_cache_hits_do_not_skew_eta(self):
        events = []
        clock = iter([0.0, 4.0, 4.0, 4.0]).__next__
        tracker = ProgressTracker(total=4, callback=events.append, clock=clock)
        tracker.ran()      # 4s of cold work
        tracker.hit()      # free
        tracker.hit()      # free
        # eta = elapsed/fresh * remaining = 4/1 * 1
        assert events[-1].eta_s == pytest.approx(4.0)


class TestFormatting:
    def test_format_duration_tiers(self):
        assert format_duration(4.21) == "4.2s"
        assert format_duration(127) == "2m07s"
        assert format_duration(3725) == "1h02m"

    def test_format_event_mentions_retries(self):
        event = ProgressEvent("retry", 5, 8, 1, 4, 2, 10.0, 7.5)
        line = format_event(event)
        assert "5/8" in line and "serial-retried" in line

    def test_reporter_plain_stream_one_line_per_event(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter(ProgressEvent("run", 1, 2, 0, 1, 0, 1.0, 1.0))
        reporter(ProgressEvent("run", 2, 2, 0, 2, 0, 2.0, 0.0))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("runs 1/2")


class TestExecutorWiring:
    def test_serial_progress_events(self):
        workload = small_workload()
        specs = [RunSpec(workload=workload, algorithm=a) for a in ("EASY", "LOS")]
        events = []
        results = execute_runs(specs, jobs=1, progress=events.append)
        assert len(results) == 2
        assert [(e.kind, e.done, e.total) for e in events] == [
            ("run", 1, 2),
            ("run", 2, 2),
        ]

    @needs_fork
    def test_pool_progress_events_and_identical_results(self):
        workload = small_workload()
        algorithms = ("EASY", "LOS", "Delayed-LOS")
        specs = [RunSpec(workload=workload, algorithm=a) for a in algorithms]
        events = []
        with_progress = execute_runs(specs, jobs=2, progress=events.append)
        without = execute_runs(specs, jobs=1)
        assert [e.kind for e in events] == ["run"] * 3
        assert events[-1].done == events[-1].total == 3
        # Progress is observe-only: identical metrics either way.
        assert with_progress == without

    def test_cache_hits_reported_as_hits(self, tmp_path):
        workload = small_workload()
        cache = RunCache(root=tmp_path / "cache", enabled=True)
        specs = [RunSpec(workload=workload, algorithm=a) for a in ("EASY", "LOS")]
        execute_runs(specs, jobs=1, cache=cache)
        events = []
        execute_runs(specs, jobs=1, cache=cache, progress=events.append)
        assert [e.kind for e in events] == ["hit", "hit"]
        assert events[-1].cached == 2 and events[-1].fresh == 0

    def test_parallel_map_serial_progress(self):
        events = []
        out = parallel_map(abs, [-1, -2, -3], jobs=1, progress=events.append)
        assert out == [1, 2, 3]
        assert [(e.kind, e.done) for e in events] == [("run", 1), ("run", 2), ("run", 3)]


class TestSummarySamplesDropped:
    @staticmethod
    def _summary():
        from repro.obs.progress import ProgressSummary

        summary = ProgressSummary()
        summary(ProgressEvent("run", 2, 2, 0, 2, 0, 3.0, 0.0))
        return summary

    def test_reported_when_positive(self):
        line = self._summary().render(samples_dropped=17)
        assert "17 telemetry samples dropped" in line

    def test_omitted_when_zero_or_unknown(self):
        summary = self._summary()
        assert "dropped" not in summary.render(samples_dropped=0)
        assert "dropped" not in summary.render()
