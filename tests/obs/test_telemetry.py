"""Telemetry registry: counters, timers, bounded series, the hook."""

from __future__ import annotations

import pickle

from repro.obs.telemetry import (
    MAX_SAMPLES,
    Telemetry,
    TelemetrySnapshot,
    activated,
    bump,
    current,
)


class TestRegistry:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.count("passes")
        telemetry.count("passes", 4)
        assert telemetry.counters == {"passes": 5}

    def test_timeit_accumulates_wall_time(self):
        telemetry = Telemetry()
        with telemetry.timeit("block"):
            pass
        with telemetry.timeit("block"):
            pass
        assert telemetry.timers["block"] >= 0.0

    def test_snapshot_is_frozen_copy(self):
        telemetry = Telemetry()
        telemetry.count("n", 2)
        telemetry.sample("depth", 0.0, 3.0)
        snapshot = telemetry.snapshot()
        telemetry.count("n", 10)
        telemetry.sample("depth", 1.0, 9.0)
        assert snapshot.counter("n") == 2
        assert snapshot.series["depth"] == ((0.0, 3.0),)

    def test_snapshot_accessors_default(self):
        snapshot = TelemetrySnapshot()
        assert snapshot.counter("missing") == 0
        assert snapshot.timer("missing") == 0.0
        assert snapshot.series_max("missing") == 0.0

    def test_as_columns_flattens_counters_and_timers(self):
        telemetry = Telemetry()
        telemetry.count("dp_cells", 7)
        telemetry.add_time("run_wall_s", 1.5)
        columns = telemetry.snapshot().as_columns()
        assert columns == {"dp_cells": 7.0, "run_wall_s": 1.5}

    def test_snapshot_is_picklable(self):
        # Snapshots ride inside RunMetrics through the fork pool and
        # the run cache; pickling must survive.
        telemetry = Telemetry()
        telemetry.count("n")
        telemetry.sample("depth", 0.0, 1.0)
        snapshot = telemetry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestSeriesDecimation:
    def test_series_stays_bounded(self):
        telemetry = Telemetry()
        for i in range(MAX_SAMPLES * 8):
            telemetry.sample("depth", float(i), float(i % 50))
        points = telemetry.snapshot().series["depth"]
        assert len(points) <= MAX_SAMPLES
        # Still spans the whole run, not just a prefix.
        assert points[0][0] == 0.0
        assert points[-1][0] > MAX_SAMPLES

    def test_decimation_is_deterministic(self):
        def fill():
            telemetry = Telemetry()
            for i in range(MAX_SAMPLES * 3 + 17):
                telemetry.sample("s", float(i), float(i))
            return telemetry.snapshot().series["s"]

        assert fill() == fill()


class TestModuleHook:
    def test_bump_without_registry_is_noop(self):
        assert current() is None
        bump("orphan", 3)  # must not raise, must not leak anywhere
        assert current() is None

    def test_activated_installs_and_restores(self):
        outer = Telemetry()
        with activated(outer):
            assert current() is outer
            bump("n")
        assert current() is None
        assert outer.counters == {"n": 1}

    def test_activated_restores_previous_on_error(self):
        telemetry = Telemetry()
        try:
            with activated(telemetry):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current() is None


class TestDropAccounting:
    def test_points_plus_dropped_equals_observations(self):
        telemetry = Telemetry()
        total = MAX_SAMPLES * 5
        for i in range(total):
            telemetry.sample("depth", float(i), float(i))
        handle = telemetry.series_handle("depth")
        assert len(handle.points) + handle.dropped == total

    def test_snapshot_surfaces_dropped_counter(self):
        telemetry = Telemetry()
        for i in range(MAX_SAMPLES * 2):
            telemetry.sample("depth", float(i), float(i))
        snapshot = telemetry.snapshot()
        assert snapshot.counter("depth_samples_dropped") == (
            telemetry.series_handle("depth").dropped
        )
        assert snapshot.counter("depth_samples_dropped") > 0

    def test_sparse_series_reports_no_drop(self):
        telemetry = Telemetry()
        for i in range(100):
            telemetry.sample("sparse", float(i), float(i))
        snapshot = telemetry.snapshot()
        assert "sparse_samples_dropped" not in snapshot.counters
        assert len(snapshot.series["sparse"]) == 100
