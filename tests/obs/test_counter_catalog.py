"""The counter-catalog checker: docs/observability.md never drifts."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest


@pytest.fixture(scope="module")
def checker():
    path = (
        Path(__file__).resolve().parents[2] / "tools" / "check_counter_catalog.py"
    )
    spec = importlib.util.spec_from_file_location("check_counter_catalog", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCatalog:
    def test_repo_catalog_is_in_sync(self, checker, capsys):
        """The committed docs must catalog every emitted name."""
        assert checker.main(["--check"]) == 0
        assert "all catalogued" in capsys.readouterr().out

    def test_span_families_expanded_from_phases(self, checker):
        from repro.obs.spans import PHASES

        names = checker.emitted_names()
        for phase in PHASES:
            assert names[f"span_{phase}"] == "counter"
            assert names[f"span_{phase}_s"] == "timer"
            assert names[f"span_{phase}_self_s"] == "timer"
        assert names.get("decisions_recorded") == "counter"

    def test_series_synthesize_dropped_counters(self, checker):
        names = checker.emitted_names()
        dropped = [n for n in names if n.endswith("_samples_dropped")]
        assert dropped, "bounded series must surface *_samples_dropped"
        for name in dropped:
            assert names[name] == "counter"

    def test_uncatalogued_name_is_flagged(self, checker, monkeypatch, capsys):
        def with_rogue():
            names = dict(real())
            names["totally_undocumented_counter"] = "counter"
            return names

        real = checker.emitted_names
        monkeypatch.setattr(checker, "emitted_names", with_rogue)
        assert checker.main(["--check"]) == 1
        out = capsys.readouterr().out
        assert "totally_undocumented_counter" in out
        assert "catalog drift" in out

    def test_report_mode_never_fails(self, checker, monkeypatch):
        def with_rogue():
            names = dict(real())
            names["totally_undocumented_counter"] = "counter"
            return names

        real = checker.emitted_names
        monkeypatch.setattr(checker, "emitted_names", with_rogue)
        assert checker.main([]) == 0
