"""Trace JSONL round-trip guarantees and error reporting."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.obs.trace_io import (
    TRACE_SCHEMA,
    TraceReadError,
    TraceWriter,
    iter_trace,
    read_meta,
    read_trace,
    write_trace,
)
from repro.sim.trace import TraceRecord


def _records():
    return [
        TraceRecord(time=0.0, kind="arrive", data={"job": 1, "num": 32}),
        TraceRecord(time=7.25, kind="start", data={"job": 1, "num": 32}),
        TraceRecord(time=1e9 + 0.125, kind="finish", data={"job": 1, "num": 32}),
    ]


class TestRoundTrip:
    def test_records_and_meta_survive(self, tmp_path):
        path = tmp_path / "run.jsonl"
        meta = {"algorithm": "EASY", "machine_size": 320}
        n = write_trace(_records(), path, meta=meta)
        assert n == 3
        trace = read_trace(path)
        assert trace.meta == meta
        assert trace.records == _records()

    def test_float_times_roundtrip_exactly(self, tmp_path):
        # repr-level float fidelity: JSON round-trips IEEE doubles.
        times = [0.1, 1 / 3, 2**53 - 1.0, 6.02e23, 5e-324]
        records = [
            TraceRecord(time=t, kind="tick", data={"value": t}) for t in times
        ]
        path = tmp_path / "floats.jsonl"
        write_trace(records, path)
        back = read_trace(path).records
        assert [r.time for r in back] == times
        assert [r.data["value"] for r in back] == times

    def test_numpy_scalars_coerced(self, tmp_path):
        records = [
            TraceRecord(
                time=np.float64(3.5),
                kind="start",
                data={"job": np.int64(9), "util": np.float32(0.5)},
            )
        ]
        path = tmp_path / "np.jsonl"
        write_trace(records, path)
        (record,) = read_trace(path).records
        assert record.time == 3.5
        assert record.data["job"] == 9
        # Every line is plain JSON — no numpy repr leaked through.
        lines = path.read_text().splitlines()
        for line in lines:
            json.loads(line)

    def test_stream_target_and_streaming_reader(self):
        buffer = io.StringIO()
        with TraceWriter(buffer, meta={"k": 1}) as writer:
            for record in _records():
                writer.write(record)
            assert writer.count == 3
        buffer.seek(0)
        assert read_meta(buffer) == {"k": 1}
        buffer.seek(0)
        assert list(iter_trace(buffer)) == _records()

    def test_header_written_even_without_records(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_trace([], path, meta={"algorithm": "LOS"})
        trace = read_trace(path)
        assert trace.meta == {"algorithm": "LOS"}
        assert trace.records == []

    def test_writer_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        write_trace(_records(), path)
        assert len(read_trace(path).records) == 3


class TestValidation:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t":0,"kind":"arrive","data":{}}\n')
        with pytest.raises(TraceReadError, match="header"):
            read_trace(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":"other/9","meta":{}}\n')
        with pytest.raises(TraceReadError, match="schema"):
            read_trace(path)

    def test_corrupt_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "meta": {}})
            + '\n{"t":0,"kind":"x","data":{}}\nnot json\n'
        )
        with pytest.raises(TraceReadError, match=r"bad\.jsonl:3: malformed record"):
            read_trace(path)

    def test_non_strict_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "meta": {}})
            + '\n{"t":0,"kind":"x","data":{}}\nnot json\n'
            + '{"t":1,"kind":"y","data":{}}\n'
        )
        records = read_trace(path, strict=False).records
        assert [r.kind for r in records] == ["x", "y"]

    def test_unserializable_payload_raises(self, tmp_path):
        record = TraceRecord(time=0.0, kind="bad", data={"obj": object()})
        with pytest.raises(TypeError, match="not JSON-serializable"):
            write_trace([record], tmp_path / "x.jsonl")


class TestTornTail:
    """A killed writer leaves a final line without its newline.

    That is recoverable damage, not corruption: every complete record
    is returned, a RuntimeWarning names the truncation, and the
    ``truncated`` flag is set (docs/resilience.md).
    """

    def _torn(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        write_trace(_records(), path, meta={"algorithm": "LOS"})
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"t": 123.0, "kind": "sta')  # SIGKILL mid-append
        return path

    def test_read_trace_recovers_complete_records(self, tmp_path):
        path = self._torn(tmp_path)
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            trace = read_trace(path)
        assert trace.records == _records()
        assert trace.truncated is True
        assert trace.meta == {"algorithm": "LOS"}

    def test_iter_trace_recovers_complete_records(self, tmp_path):
        path = self._torn(tmp_path)
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            records = list(iter_trace(path))
        assert records == _records()

    def test_clean_file_is_not_flagged(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        write_trace(_records(), path)
        assert read_trace(path).truncated is False

    def test_interior_corruption_still_raises(self, tmp_path):
        # Only the file's *last* line may lack its newline; a malformed
        # line followed by further records is real corruption and keeps
        # its strict-mode error with file/line context.
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "meta": {}})
            + '\n{"t":0,"kind":"x","data":{}}\n{"t": 1, "ki\n'
            + '{"t":2,"kind":"y","data":{}}\n'
        )
        with pytest.raises(TraceReadError, match=r"bad\.jsonl:3: malformed record"):
            read_trace(path)

    def test_torn_tail_in_non_strict_mode(self, tmp_path):
        path = self._torn(tmp_path)
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            trace = read_trace(path, strict=False)
        assert trace.records == _records()
        assert trace.truncated is True
