"""The trace-replay oracle: recomputed metrics must equal RunMetrics.

The acceptance bar of docs/observability.md: for every registered
algorithm, a traced run's trace-recomputed mean wait / response /
bounded slowdown / utilization / makespan agree with the simulator's
own :class:`~repro.metrics.records.RunMetrics` within 1e-9 relative
tolerance.  A committed golden fixture pins the replay semantics
against silent drift in both the exporter and the replayer.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.registry import ALGORITHMS
from repro.experiments.parallel import RunSpec, execute_spec
from repro.faults.model import RetryPolicy, parse_faults_spec
from repro.obs.analytics import (
    REL_TOLERANCE,
    TraceOracleError,
    assert_consistent,
    cross_validate,
    recompute_metrics,
    replay,
    validate_trace_file,
)
from repro.obs.trace_io import read_trace
from repro.sim.trace import TraceRecord
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig

FIXTURES = Path(__file__).parent / "fixtures"


def _workload(name: str, n_jobs: int = 40, seed: int = 11):
    """A small workload exercising what the policy can handle."""
    dedicated = 0.3 if "-D" in name else 0.0
    elastic = 0.3 if name.endswith("E") else 0.0
    config = GeneratorConfig(
        n_jobs=n_jobs, p_dedicated=dedicated, p_extend=elastic, p_reduce=elastic / 2
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


# ----------------------------------------------------------------------
# The oracle, for every registered algorithm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_trace_recomputation_matches_run_metrics(name, tmp_path):
    workload = _workload(name)
    path = tmp_path / f"{name}.jsonl"
    metrics = execute_spec(
        RunSpec(workload=workload, algorithm=name, trace_out=str(path))
    )
    trace = read_trace(path)
    result = replay(trace.records, trace.meta)
    findings = cross_validate(result, metrics, rel_tol=REL_TOLERANCE)
    assert findings == [], "\n".join(findings)
    # assert_consistent is the hard-error twin — must not raise.
    assert_consistent(result, metrics)


def test_oracle_holds_under_faults(tmp_path):
    """Requeues and evictions exercise the latest-start semantics."""
    workload = _workload("Hybrid-LOS-E", n_jobs=60, seed=7)
    path = tmp_path / "faulty.jsonl"
    metrics = execute_spec(
        RunSpec(
            workload=workload,
            algorithm="Hybrid-LOS-E",
            trace_out=str(path),
            faults=parse_faults_spec("mtbf=40000,mttr=2000,seed=3,pfail=0.05"),
            retry=RetryPolicy(max_retries=2, backoff=10.0, checkpoint=True),
        )
    )
    validate_trace_file(str(path), metrics)  # raises on any mismatch


def test_oracle_detects_tampering(tmp_path):
    workload = _workload("EASY")
    path = tmp_path / "t.jsonl"
    metrics = execute_spec(
        RunSpec(workload=workload, algorithm="EASY", trace_out=str(path))
    )
    trace = read_trace(path)
    # Nudge one record's finish time: every derived metric shifts.
    tampered = [
        TraceRecord(r.time + 250.0, r.kind, r.data) if r.kind == "finish" else r
        for r in trace.records[:-1]
    ] + [trace.records[-1]]
    findings = cross_validate(replay(tampered, trace.meta), metrics)
    assert findings
    with pytest.raises(TraceOracleError) as excinfo:
        assert_consistent(replay(tampered, trace.meta), metrics, context="tampered")
    assert "tampered" in str(excinfo.value)
    assert "mean_runtime" in str(excinfo.value)


def test_validate_env_hook_runs_oracle(tmp_path, monkeypatch):
    """REPRO_TRACE_VALIDATE=1 arms the oracle inside execute_spec."""
    monkeypatch.setenv("REPRO_TRACE_VALIDATE", "1")
    workload = _workload("LOS")
    metrics = execute_spec(
        RunSpec(workload=workload, algorithm="LOS", trace_out=str(tmp_path / "v.jsonl"))
    )
    assert metrics.n_jobs == len(workload)  # a passing oracle is silent


# ----------------------------------------------------------------------
# Golden fixture: pins exporter + replayer semantics
# ----------------------------------------------------------------------
def test_golden_fixture_metrics():
    trace = read_trace(FIXTURES / "golden_easy.jsonl")
    expected = json.loads(
        (FIXTURES / "golden_easy.expected.json").read_text(encoding="utf-8")
    )
    assert trace.meta["algorithm"] == expected["algorithm"]
    recomputed = recompute_metrics(replay(trace.records, trace.meta))
    assert recomputed.n_jobs == expected["n_jobs"]
    for metric in (
        "mean_wait",
        "mean_runtime",
        "mean_response",
        "slowdown",
        "mean_bounded_slowdown",
        "utilization",
        "makespan",
    ):
        assert math.isclose(
            getattr(recomputed, metric), expected[metric], rel_tol=REL_TOLERANCE
        ), metric


# ----------------------------------------------------------------------
# Replay reconstruction details
# ----------------------------------------------------------------------
class TestReplay:
    def test_single_job_timeline(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 160}),
            TraceRecord(10.0, "start", {"job": 1, "num": 160}),
            TraceRecord(110.0, "finish", {"job": 1, "num": 160}),
        ]
        result = replay(records, meta={"machine_size": 320})
        assert result.start_time == 0.0
        assert result.last_finish == 110.0
        assert result.peak_level == 160
        assert result.utilization_steps == [(10.0, 160), (110.0, 0)]
        assert result.queue_depth == [(0.0, 1), (10.0, 0)]
        [record] = result.records
        assert record.wait == 10.0 and record.runtime == 100.0
        metrics = recompute_metrics(result)
        # 160 procs busy for 100 of 110 machine-seconds of 320.
        assert math.isclose(metrics.utilization, 160 * 100 / (320 * 110))

    def test_requeue_uses_latest_start(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 32}),
            TraceRecord(0.0, "start", {"job": 1, "num": 32}),
            TraceRecord(50.0, "job-fail", {"job": 1, "num": 32}),
            TraceRecord(50.0, "requeue", {"job": 1}),
            TraceRecord(60.0, "start", {"job": 1, "num": 32}),
            TraceRecord(160.0, "finish", {"job": 1, "num": 32}),
        ]
        result = replay(records, meta={"machine_size": 320})
        [record] = result.records
        assert record.wait == 60.0  # latest start - submit
        assert record.runtime == 100.0
        # Busy during [0, 50] and [60, 160], idle in between.
        assert result.busy_area() == 32 * 150

    def test_ecc_episodes_collected(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 32}),
            TraceRecord(
                1.0, "ecc",
                {"job": 1, "ecc_kind": "ET", "amount": 600.0,
                 "outcome": "applied-queued", "num": 32},
            ),
            TraceRecord(
                2.0, "ecc-dropped", {"job": 1, "ecc_kind": "RT"},
            ),
            TraceRecord(5.0, "start", {"job": 1, "num": 32}),
            TraceRecord(90.0, "finish", {"job": 1, "num": 32}),
        ]
        result = replay(records, meta={})
        assert len(result.ecc_episodes) == 2
        applied, dropped = result.ecc_episodes
        assert applied.applied and applied.kind == "ET"
        assert not dropped.applied
        assert dropped.outcome == "dropped-not-elastic"
        [record] = result.records
        assert record.eccs_applied == 1

    def test_empty_trace(self):
        result = replay([], meta={"machine_size": 320})
        assert result.records == []
        assert result.span == 0.0
        metrics = recompute_metrics(result)
        assert metrics.n_jobs == 0
        assert metrics.utilization == 0.0


# ----------------------------------------------------------------------
# Scheduler-origin ECCs (Malleable-* runtime resizes)
# ----------------------------------------------------------------------
class TestSchedulerOriginEccs:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        from repro.workload.transform import make_malleable

        path = tmp_path_factory.mktemp("malleable") / "run.jsonl"
        workload = make_malleable(_workload("Malleable-Backfill", n_jobs=60), 0.6, seed=3)
        metrics = execute_spec(
            RunSpec(workload=workload, algorithm="Malleable-Backfill",
                    trace_out=str(path))
        )
        trace = read_trace(path)
        return metrics, trace

    def test_replay_tags_scheduler_origin(self, traced):
        _, trace = traced
        result = replay(trace.records, trace.meta)
        scheduler = [e for e in result.ecc_episodes if e.origin == "scheduler"]
        assert scheduler, "a congested malleable run must resize someone"
        for episode in scheduler:
            assert episode.applied

    def test_recompute_matches_run_metrics(self, traced):
        metrics, trace = traced
        result = replay(trace.records, trace.meta)
        assert cross_validate(result, metrics, rel_tol=REL_TOLERANCE) == []
        assert_consistent(result, metrics)

    def test_check_trace_accepts_running_resizes(self, traced):
        from repro.obs.inspect import check_trace

        _, trace = traced
        machine = int(trace.meta["machine_size"])
        assert check_trace(trace.records, machine) == []
