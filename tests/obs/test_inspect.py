"""The trace inspector: analysis functions and the ``repro trace`` CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import repro_main
from repro.experiments.parallel import RunSpec, execute_spec
from repro.obs.inspect import (
    check_trace,
    filter_records,
    job_timeline,
    main as trace_main,
    summarize,
)
from repro.obs.trace_io import TRACE_SCHEMA
from repro.sim.trace import TraceRecord
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig


def _lifecycle(job: int, arrive: float, start: float, finish: float, num: int = 32):
    return [
        TraceRecord(arrive, "arrive", {"job": job, "num": num}),
        TraceRecord(start, "start", {"job": job, "num": num}),
        TraceRecord(finish, "finish", {"job": job, "num": num}),
    ]


@pytest.fixture
def trace_file(tmp_path):
    """A real exported trace from a small EASY run."""
    workload = CWFWorkloadGenerator(GeneratorConfig(n_jobs=30)).generate(
        np.random.default_rng(3)
    )
    path = tmp_path / "easy.jsonl"
    execute_spec(RunSpec(workload=workload, algorithm="EASY", trace_out=str(path)))
    return path


class TestAnalysis:
    def test_summarize_counts_and_span(self):
        records = _lifecycle(1, 0.0, 10.0, 70.0) + _lifecycle(2, 5.0, 80.0, 90.0)
        records.sort(key=lambda r: r.time)
        summary = summarize(records)
        assert summary.n_records == 6
        assert summary.n_jobs == 2
        assert summary.kind_counts == {"arrive": 2, "start": 2, "finish": 2}
        assert summary.span == 90.0

    def test_job_timeline_orders_one_job(self):
        records = _lifecycle(1, 0.0, 10.0, 70.0) + _lifecycle(2, 5.0, 80.0, 90.0)
        timeline = job_timeline(records, 2)
        assert [r.kind for r in timeline] == ["arrive", "start", "finish"]
        assert all(r.data["job"] == 2 for r in timeline)

    def test_filter_by_kind_and_window(self):
        records = _lifecycle(1, 0.0, 10.0, 70.0)
        assert [r.kind for r in filter_records(records, kinds=["start"])] == ["start"]
        windowed = filter_records(records, t0=5.0, t1=20.0)
        assert [r.kind for r in windowed] == ["start"]

    def test_check_accepts_legal_trace(self):
        records = _lifecycle(1, 0.0, 10.0, 70.0)
        assert check_trace(records, machine_size=320) == []

    def test_check_flags_double_start(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 32}),
            TraceRecord(1.0, "start", {"job": 1, "num": 32}),
            TraceRecord(2.0, "start", {"job": 1, "num": 32}),
        ]
        findings = check_trace(records)
        assert any("not waiting" in f for f in findings)

    def test_check_flags_overallocation(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 300}),
            TraceRecord(0.0, "arrive", {"job": 2, "num": 300}),
            TraceRecord(1.0, "start", {"job": 1, "num": 300}),
            TraceRecord(1.0, "start", {"job": 2, "num": 300}),
        ]
        findings = check_trace(records, machine_size=320)
        assert any("exceeds machine size" in f for f in findings)

    def test_requeue_allows_restart(self):
        # Fault-injection lifecycle: fail, requeue, run again.
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 32}),
            TraceRecord(1.0, "start", {"job": 1, "num": 32}),
            TraceRecord(2.0, "job-fail", {"job": 1, "num": 32}),
            TraceRecord(2.0, "requeue", {"job": 1, "num": 32}),
            TraceRecord(3.0, "start", {"job": 1, "num": 32}),
            TraceRecord(9.0, "finish", {"job": 1, "num": 32}),
        ]
        assert check_trace(records, machine_size=320) == []


class TestCli:
    def test_summary_and_check_ok(self, trace_file, capsys):
        assert trace_main([str(trace_file), "--check"]) == 0
        out = capsys.readouterr().out
        assert "meta: " in out and "algorithm=EASY" in out
        assert "checks: OK" in out

    def test_job_filter_prints_timeline(self, trace_file, capsys):
        assert trace_main([str(trace_file), "--job", "1"]) == 0
        out = capsys.readouterr().out
        assert "filter matched" in out
        assert "arrive(job=1" in out

    def test_check_failure_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        lines = [json.dumps({"schema": TRACE_SCHEMA, "meta": {}})] + [
            json.dumps({"t": 1.0, "kind": "start", "data": {"job": 1, "num": 8}})
        ]
        path.write_text("\n".join(lines) + "\n")
        assert trace_main([str(path), "--check"]) == 1
        assert "CHECK FAILED" in capsys.readouterr().out

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "missing.jsonl")]) == 2
        assert capsys.readouterr().err != ""

    def test_repro_umbrella_dispatch(self, trace_file, capsys):
        assert repro_main(["trace", str(trace_file)]) == 0
        assert "records over t=" in capsys.readouterr().out

    def test_repro_unknown_subcommand(self, capsys):
        assert repro_main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err


class TestElasticInvariants:
    """The --check elastic-policy invariants (post-command ``num``)."""

    def _elastic(self, job: int = 1, num: int = 8):
        return [
            TraceRecord(0.0, "arrive", {"job": job, "num": num}),
            TraceRecord(
                1.0, "ecc",
                {"job": job, "ecc_kind": "EP", "amount": 8,
                 "outcome": "applied-queued", "num": num + 8},
            ),
            TraceRecord(2.0, "start", {"job": job, "num": num + 8}),
            TraceRecord(60.0, "finish", {"job": job, "num": num + 8}),
        ]

    def test_consistent_expand_passes(self):
        assert check_trace(self._elastic(), machine_size=320) == []

    def test_ep_shrinking_flagged(self):
        records = self._elastic()
        records[1] = TraceRecord(
            1.0, "ecc",
            {"job": 1, "ecc_kind": "EP", "amount": 8,
             "outcome": "applied-queued", "num": 4},
        )
        findings = check_trace(records, machine_size=320)
        assert any("EP" in f and "shrank" in f for f in findings)

    def test_rp_growing_flagged(self):
        records = self._elastic()
        records[1] = TraceRecord(
            1.0, "ecc",
            {"job": 1, "ecc_kind": "RP", "amount": 8,
             "outcome": "applied-queued", "num": 16},
        )
        findings = check_trace(records, machine_size=320)
        assert any("RP" in f and "grew" in f for f in findings)

    def test_start_must_match_traced_size(self):
        records = self._elastic()
        # Start with the pre-ECC size: the allocation delta is missing.
        records[2] = TraceRecord(2.0, "start", {"job": 1, "num": 8})
        records[3] = TraceRecord(60.0, "finish", {"job": 1, "num": 8})
        findings = check_trace(records, machine_size=320)
        assert any("traced size" in f for f in findings)

    def test_release_must_match_allocation(self):
        records = self._elastic()
        records[3] = TraceRecord(60.0, "finish", {"job": 1, "num": 12})
        findings = check_trace(records, machine_size=320)
        assert any("releases" in f for f in findings)

    def test_size_above_machine_flagged(self):
        records = self._elastic()
        records[1] = TraceRecord(
            1.0, "ecc",
            {"job": 1, "ecc_kind": "EP", "amount": 999,
             "outcome": "applied-queued", "num": 400},
        )
        findings = check_trace(records, machine_size=320)
        assert any("exceeding" in f for f in findings)

    def test_resource_ecc_while_running_flagged(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 8}),
            TraceRecord(1.0, "start", {"job": 1, "num": 8}),
            TraceRecord(
                2.0, "ecc",
                {"job": 1, "ecc_kind": "EP", "amount": 8,
                 "outcome": "applied-running", "num": 16},
            ),
            TraceRecord(60.0, "finish", {"job": 1, "num": 8}),
        ]
        findings = check_trace(records, machine_size=320)
        assert any("while the job" in f for f in findings)

    def test_time_dimension_must_not_change_size(self):
        records = self._elastic()
        records[1] = TraceRecord(
            1.0, "ecc",
            {"job": 1, "ecc_kind": "ET", "amount": 600,
             "outcome": "applied-queued", "num": 99},
        )
        findings = check_trace(records, machine_size=320)
        assert any("time-dimension" in f for f in findings)

    def test_terminated_job_must_finish_at_that_instant(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 8}),
            TraceRecord(1.0, "start", {"job": 1, "num": 8}),
            TraceRecord(
                10.0, "ecc",
                {"job": 1, "ecc_kind": "RT", "amount": -999,
                 "outcome": "terminated-job", "num": 8},
            ),
            TraceRecord(50.0, "finish", {"job": 1, "num": 8}),
        ]
        findings = check_trace(records, machine_size=320)
        assert any("terminated by an ECC" in f for f in findings)
        # Same-instant finish passes.
        records[3] = TraceRecord(10.0, "finish", {"job": 1, "num": 8})
        assert check_trace(records, machine_size=320) == []

    def test_terminated_job_never_finishing_flagged(self):
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 8}),
            TraceRecord(1.0, "start", {"job": 1, "num": 8}),
            TraceRecord(
                10.0, "ecc",
                {"job": 1, "ecc_kind": "RT", "amount": -999,
                 "outcome": "terminated-job", "num": 8},
            ),
        ]
        findings = check_trace(records, machine_size=320)
        assert any("never finished" in f for f in findings)

    def test_legacy_traces_without_num_still_pass(self):
        """Pre-analytics ecc records (no num field) skip size checks."""
        records = [
            TraceRecord(0.0, "arrive", {"job": 1, "num": 8}),
            TraceRecord(
                1.0, "ecc",
                {"job": 1, "ecc_kind": "EP", "amount": 8,
                 "outcome": "applied-queued"},
            ),
            TraceRecord(2.0, "start", {"job": 1, "num": 16}),
            TraceRecord(60.0, "finish", {"job": 1, "num": 16}),
        ]
        assert check_trace(records, machine_size=320) == []
