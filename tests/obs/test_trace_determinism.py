"""Tracing and telemetry must never change scheduling decisions.

The observability constraint of docs/observability.md, enforced for
every registered algorithm: a run with ``trace_out`` produces metrics
equal to the same run without it, and the exported file is a valid
schema-versioned trace whose lifecycle records match the run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import ALGORITHMS
from repro.experiments.parallel import RunSpec, execute_spec
from repro.experiments.sweep import run_algorithms
from repro.obs.inspect import check_trace, summarize
from repro.obs.trace_io import read_meta, read_trace
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig


def _workload(name: str):
    """A small workload exercising what the policy can handle."""
    dedicated = 0.3 if "-D" in name else 0.0
    elastic = 0.3 if name.endswith("E") else 0.0
    config = GeneratorConfig(
        n_jobs=40, p_dedicated=dedicated, p_extend=elastic, p_reduce=elastic / 2
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(11))


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_traced_equals_untraced(name, tmp_path):
    workload = _workload(name)
    untraced = execute_spec(RunSpec(workload=workload, algorithm=name))
    path = tmp_path / f"{name}.jsonl"
    traced = execute_spec(
        RunSpec(workload=workload, algorithm=name, trace_out=str(path))
    )
    assert traced == untraced

    meta = read_meta(path)
    assert meta["algorithm"] == name
    assert meta["machine_size"] == workload.machine_size

    records = read_trace(path).records
    summary = summarize(records)
    assert summary.kind_counts["finish"] == traced.n_jobs
    # The exported trace passes its own invariant checks.
    assert check_trace(records, machine_size=workload.machine_size) == []


def test_run_algorithms_trace_mapping(tmp_path):
    workload = _workload("EASY")
    algorithms = ["EASY", "LOS"]
    plain = run_algorithms(workload, algorithms, jobs=1)
    traced = run_algorithms(
        workload,
        algorithms,
        jobs=1,
        trace_out={"EASY": str(tmp_path / "easy.jsonl")},
    )
    assert traced == plain
    assert (tmp_path / "easy.jsonl").exists()
    assert not (tmp_path / "los.jsonl").exists()


def test_telemetry_attached_but_excluded_from_equality():
    workload = _workload("Delayed-LOS")
    a = execute_spec(RunSpec(workload=workload, algorithm="Delayed-LOS"))
    b = execute_spec(RunSpec(workload=workload, algorithm="Delayed-LOS"))
    assert a.telemetry is not None and b.telemetry is not None
    # Deterministic counters agree between repeat runs...
    assert a.telemetry.counters == b.telemetry.counters
    assert a.telemetry.counters["dp_invocations"] > 0
    # ...while wall timers differ without breaking metric equality.
    assert a == b
