"""Phase spans: recorder arithmetic, Chrome export, runner integration."""

from __future__ import annotations

import filecmp
import json

import numpy as np
import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.obs import spans
from repro.obs.spans import PHASES, SpanRecorder, activated, begin, current, end, phase_table
from repro.obs.telemetry import Telemetry
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.transform import make_malleable
from repro.workload.twostage import TwoStageSizeConfig


def generate(seed=11, n_jobs=60, p_extend=0.3, p_reduce=0.2):
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


class TestRecorderAggregation:
    def test_nested_spans_attribute_self_time(self):
        recorder = SpanRecorder()
        outer = recorder.begin_at("schedule_cycle", 10.0)
        inner = recorder.begin_at("dp_solve", 11.0)
        recorder.end_at(inner, 14.0)
        recorder.end_at(outer, 20.0)
        assert recorder.phases["dp_solve"] == [1, 3.0, 3.0]
        # 10s total, 3s of it inside the child.
        assert recorder.phases["schedule_cycle"] == [1, 10.0, 7.0]

    def test_root_spans_accumulate_root_child(self):
        recorder = SpanRecorder()
        token = recorder.begin_at("schedule_cycle", 0.0)
        recorder.end_at(token, 4.0)
        token = recorder.begin_at("ecc_apply", 5.0)
        recorder.end_at(token, 6.0)
        assert recorder.root_child == 5.0

    def test_add_bulk_folds_batch_totals(self):
        recorder = SpanRecorder()
        recorder.add_bulk("event", 100, 2.0, 1.5)
        recorder.add_bulk("event", 50, 1.0, 0.5)
        assert recorder.phases["event"] == [150, 3.0, 2.0]

    def test_add_bulk_ignores_empty_batches(self):
        recorder = SpanRecorder()
        recorder.add_bulk("event", 0, 0.0, 0.0)
        assert "event" not in recorder.phases

    def test_bulk_plus_root_child_models_engine_accounting(self):
        # The engine's aggregate mode: actions open root-level spans;
        # their cumulative time is subtracted from the batch self time.
        recorder = SpanRecorder()
        before = recorder.root_child
        token = recorder.begin_at("schedule_cycle", 1.0)
        recorder.end_at(token, 3.0)
        child = recorder.root_child - before
        recorder.add_bulk("event", 10, 5.0, 5.0 - child)
        assert recorder.phases["event"] == [10, 5.0, 3.0]

    def test_aggregate_mode_keeps_no_timeline(self):
        recorder = SpanRecorder()
        token = recorder.begin("dp_solve")
        recorder.end(token)
        assert recorder.events == []
        assert recorder.events_dropped == 0

    def test_timeline_mode_records_events_with_depth(self):
        recorder = SpanRecorder(timeline=True)
        recorder._origin = 0.0
        outer = recorder.begin_at("schedule_cycle", 1.0)
        inner = recorder.begin_at("dp_solve", 2.0)
        recorder.end_at(inner, 3.0)
        recorder.end_at(outer, 5.0)
        assert recorder.events == [
            ("dp_solve", 2.0, 1.0, 1),
            ("schedule_cycle", 1.0, 4.0, 0),
        ]

    def test_timeline_buffer_cap_counts_drops(self):
        recorder = SpanRecorder(max_events=2, timeline=True)
        for _ in range(5):
            recorder.end(recorder.begin("event"))
        assert len(recorder.events) == 2
        assert recorder.events_dropped == 3
        # Aggregation is unaffected by the export cap.
        assert recorder.phases["event"][0] == 5

    def test_span_context_manager(self):
        recorder = SpanRecorder()
        with recorder.span("backfill"):
            pass
        assert recorder.phases["backfill"][0] == 1

    def test_fold_into_writes_catalogued_names(self):
        telemetry = Telemetry()
        recorder = SpanRecorder(max_events=1, timeline=True)
        recorder.end(recorder.begin("dp_solve"))
        recorder.end(recorder.begin("dp_solve"))
        recorder.fold_into(telemetry)
        snapshot = telemetry.snapshot()
        assert snapshot.counter("span_dp_solve") == 2
        assert snapshot.timer("span_dp_solve_s") >= 0.0
        assert snapshot.timer("span_dp_solve_self_s") >= 0.0
        assert snapshot.counter("span_events_dropped") == 1


class TestModuleHook:
    def test_begin_is_none_without_recorder(self):
        assert current() is None
        assert begin("dp_solve") is None
        end(None)  # no-op, must not raise

    def test_activated_installs_and_restores(self):
        recorder = SpanRecorder()
        with activated(recorder) as active:
            assert active is recorder
            assert current() is recorder
            token = begin("dp_solve")
            assert token is not None
            end(token)
        assert current() is None
        assert recorder.phases["dp_solve"][0] == 1

    def test_phases_catalog_is_stable(self):
        # The counter-catalog checker and docs expand from this tuple.
        assert PHASES == (
            "event",
            "schedule_cycle",
            "dp_solve",
            "backfill",
            "profile_rebuild",
            "ecc_apply",
            "checkpoint_save",
            "trace_flush",
        )


class TestChromeExport:
    def _recorder(self):
        recorder = SpanRecorder(timeline=True)
        recorder._origin = 0.0
        outer = recorder.begin_at("schedule_cycle", 0.001)
        inner = recorder.begin_at("dp_solve", 0.002)
        recorder.end_at(inner, 0.0025)
        recorder.end_at(outer, 0.004)
        return recorder

    def test_chrome_trace_shape(self):
        doc = self._recorder().chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["dp_solve", "schedule_cycle"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 0 and event["tid"] == 0
        # Microsecond timestamps.
        assert events[0]["ts"] == pytest.approx(2000.0)
        assert events[0]["dur"] == pytest.approx(500.0)

    def test_write_matches_document_values(self, tmp_path):
        recorder = self._recorder()
        path = tmp_path / "spans.json"
        recorder.write_chrome_trace(path)
        written = json.loads(path.read_text())
        doc = recorder.chrome_trace()
        assert written["displayTimeUnit"] == doc["displayTimeUnit"]
        assert len(written["traceEvents"]) == len(doc["traceEvents"])
        for got, expected in zip(written["traceEvents"], doc["traceEvents"]):
            assert got["name"] == expected["name"]
            assert got["ts"] == pytest.approx(expected["ts"], abs=1e-3)
            assert got["dur"] == pytest.approx(expected["dur"], abs=1e-3)

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "spans.json"
        self._recorder().write_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"]


class TestPhaseTable:
    def test_sorts_by_self_time_and_shares(self):
        telemetry = Telemetry()
        telemetry.count("span_dp_solve", 5)
        telemetry.add_time("span_dp_solve_s", 0.25)
        telemetry.add_time("span_dp_solve_self_s", 0.25)
        telemetry.count("span_schedule_cycle", 2)
        telemetry.add_time("span_schedule_cycle_s", 1.0)
        telemetry.add_time("span_schedule_cycle_self_s", 0.75)
        telemetry.add_time("run_wall_s", 1.0)
        table = phase_table(telemetry.snapshot())
        lines = table.splitlines()
        assert lines[0].startswith("phase")
        # schedule_cycle has more self time: listed first.
        assert lines[2].startswith("schedule_cycle")
        assert "75.0%" in lines[2]

    def test_empty_snapshot_hint(self):
        assert "spans enabled" in phase_table(Telemetry().snapshot())


class TestRunnerIntegration:
    def test_spans_off_means_no_span_telemetry(self):
        metrics = simulate(generate(), make_scheduler("Delayed-LOS"))
        assert not any(
            name.startswith("span_") for name in metrics.telemetry.counters
        )

    def test_spans_on_aggregates_hot_phases(self):
        metrics = simulate(generate(), make_scheduler("Delayed-LOS"), spans=True)
        snapshot = metrics.telemetry
        assert snapshot.counter("span_event") > 0
        assert snapshot.counter("span_schedule_cycle") > 0
        assert snapshot.counter("span_dp_solve") > 0
        for phase in ("event", "schedule_cycle", "dp_solve"):
            cumulative = snapshot.timer(f"span_{phase}_s")
            self_time = snapshot.timer(f"span_{phase}_self_s")
            assert 0.0 <= self_time <= cumulative + 1e-12
        # Scheduling happens inside event dispatch: the engine's bulk
        # event accounting must cover the cycles' cumulative time.
        assert snapshot.timer("span_event_s") >= snapshot.timer(
            "span_schedule_cycle_s"
        ) - 1e-9

    def test_metrics_equal_spans_on_and_off(self):
        baseline = simulate(generate(), make_scheduler("Hybrid-LOS-E"))
        spanned = simulate(generate(), make_scheduler("Hybrid-LOS-E"), spans=True)
        assert spanned == baseline  # telemetry is compare=False

    @pytest.mark.parametrize("algorithm", ["EASY", "Delayed-LOS", "Malleable-Backfill"])
    def test_traces_byte_identical_spans_on_off(self, tmp_path, algorithm):
        workload = generate()
        if algorithm.startswith("Malleable"):
            workload = make_malleable(workload, 0.5, seed=3)
        off = tmp_path / "off.jsonl"
        on = tmp_path / "on.jsonl"
        simulate(workload, make_scheduler(algorithm), trace_out=str(off))
        simulate(
            workload,
            make_scheduler(algorithm),
            trace_out=str(on),
            spans=True,
            spans_out=str(tmp_path / "spans.json"),
        )
        assert filecmp.cmp(off, on, shallow=False)

    def test_spans_out_writes_loadable_timeline(self, tmp_path):
        path = tmp_path / "spans.json"
        simulate(generate(), make_scheduler("EASY"), spans_out=str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = {event["name"] for event in doc["traceEvents"]}
        assert "event" in names and "schedule_cycle" in names

    def test_recorder_detached_between_runs(self):
        runner = SimulationRunner(generate(), make_scheduler("EASY"), spans=True)
        runner.run()
        assert runner._span_recorder is None
        assert spans.current() is None


class TestProfileCli:
    def test_repro_profile_prints_phase_table(self, capsys):
        from repro.cli import repro_main

        assert repro_main(["profile", "--jobs", "40", "--algorithm", "EASY"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "schedule_cycle" in out

    def test_repro_profile_spans_out_and_cprofile(self, tmp_path, capsys):
        from repro.cli import repro_main

        spans_path = tmp_path / "spans.json"
        stats_path = tmp_path / "prof.stats"
        code = repro_main(
            [
                "profile",
                "--jobs",
                "30",
                "--spans-out",
                str(spans_path),
                "--cprofile",
                str(stats_path),
            ]
        )
        assert code == 0
        assert json.loads(spans_path.read_text())["traceEvents"]
        assert stats_path.stat().st_size > 0

    def test_deprecated_shim_forwards(self, capsys):
        import importlib.util
        from pathlib import Path

        shim_path = (
            Path(__file__).resolve().parents[2] / "tools" / "profile_simulation.py"
        )
        spec = importlib.util.spec_from_file_location("profile_shim", shim_path)
        shim = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(shim)
        assert shim.main(["--jobs", "30"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "phase" in captured.out
