"""Benchmark history: append/read round-trip and the regression diff."""

from __future__ import annotations

import json

import pytest

from repro.cli import repro_main
from repro.obs.bench_history import (
    HISTORY_SCHEMA,
    append_entry,
    compare,
    condense,
    main as bench_compare_main,
    read_history,
)


def _document(wall: float = 0.1, host_scenarios=None) -> dict:
    scenarios = host_scenarios or [
        {"algorithm": "EASY", "n_jobs": 50, "wall_time_s": wall,
         "events_per_sec": 9000.0},
        {"algorithm": "LOS", "n_jobs": 50, "wall_time_s": 2 * wall,
         "events_per_sec": 4000.0},
    ]
    return {
        "schema": 2,
        "quick": True,
        "workers": 2,
        "scenarios": scenarios,
        "pipeline": {"speedup": 1.7},
        "observability": {"traced_over_untraced": 1.02},
    }


class TestAppendRead:
    def test_two_runs_two_distinct_entries(self, tmp_path):
        history = tmp_path / "history.jsonl"
        first = append_entry(_document(0.10), history)
        second = append_entry(_document(0.12), history)
        entries = read_history(history)
        assert len(entries) == 2
        assert entries[0] != entries[1]
        assert entries == [first, second]
        for entry in entries:
            assert entry["schema"] == HISTORY_SCHEMA
            assert entry["git_sha"]
            assert entry["timestamp"].endswith("Z")
            assert entry["host"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_unknown_schema_lines_skipped(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_entry(_document(), history)
        with history.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": "repro.bench-history/999"}) + "\n")
            handle.write("\n")  # blank lines tolerated too
        assert len(read_history(history)) == 1

    def test_malformed_line_warns_and_skips(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_entry(_document(), history)
        with history.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        append_entry(_document(), history)
        with pytest.warns(RuntimeWarning, match="malformed history line"):
            entries = read_history(history)
        assert len(entries) == 2  # the damaged line is lost, nothing else

    def test_torn_final_line_is_tolerated(self, tmp_path):
        # A benchmark killed mid-append leaves a partial last line; the
        # next bench-compare must still see every complete entry.
        history = tmp_path / "history.jsonl"
        append_entry(_document(), history)
        full = history.read_text(encoding="utf-8")
        history.write_text(full + full[: len(full) // 2], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="malformed history line"):
            entries = read_history(history)
        assert len(entries) == 1


class TestCompare:
    def test_flags_injected_2x_slowdown(self):
        baseline = condense(_document(0.10), git_sha="aaa", timestamp="t0", host="ci")
        slow = condense(_document(0.20), git_sha="bbb", timestamp="t1", host="ci")
        result = compare(slow, [baseline], threshold=1.5)
        assert not result.ok
        assert len(result.regressions) == 2  # both scenarios doubled
        assert "2.00x" in result.regressions[0]
        assert "REGRESSION" in result.render()

    def test_within_threshold_is_ok(self):
        baseline = condense(_document(0.10), git_sha="aaa", timestamp="t0", host="ci")
        same = condense(_document(0.11), git_sha="bbb", timestamp="t1", host="ci")
        result = compare(same, [baseline], threshold=1.5)
        assert result.ok
        assert "bench-compare: OK" in result.render()

    def test_baseline_is_best_prior(self):
        entries = [
            condense(_document(wall), git_sha=sha, timestamp="t", host="ci")
            for wall, sha in ((0.30, "old-slow"), (0.10, "best"), (0.25, "mid"))
        ]
        latest = condense(_document(0.16), git_sha="new", timestamp="t", host="ci")
        result = compare(latest, entries, threshold=1.5)
        easy = next(d for d in result.diffs if d.algorithm == "EASY")
        assert easy.baseline_wall_s == 0.10
        assert easy.baseline_sha == "best"
        assert not result.ok  # 0.16 / 0.10 = 1.6x > 1.5x

    def test_prefers_same_host_baselines(self):
        other = condense(_document(0.01), git_sha="x", timestamp="t", host="beefy")
        mine = condense(_document(0.10), git_sha="y", timestamp="t", host="laptop")
        latest = condense(_document(0.12), git_sha="z", timestamp="t", host="laptop")
        result = compare(latest, [other, mine], threshold=1.5)
        assert result.ok  # judged against laptop's 0.10, not beefy's 0.01

    def test_no_baseline_scenarios_get_no_verdict(self):
        baseline = condense(_document(), git_sha="a", timestamp="t", host="ci")
        latest = condense(
            _document(host_scenarios=[
                {"algorithm": "SJF", "n_jobs": 99, "wall_time_s": 5.0,
                 "events_per_sec": 1.0},
            ]),
            git_sha="b", timestamp="t", host="ci",
        )
        result = compare(latest, [baseline])
        assert result.ok
        [diff] = result.diffs
        assert diff.ratio is None
        assert "no baseline" in result.render()


class TestCli:
    def test_empty_history_exits_0(self, tmp_path, capsys):
        rc = bench_compare_main(["--history", str(tmp_path / "none.jsonl")])
        assert rc == 0
        assert "no benchmark history" in capsys.readouterr().out

    def test_single_entry_exits_0(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        append_entry(_document(), history)
        assert bench_compare_main(["--history", str(history)]) == 0
        assert "only one history entry" in capsys.readouterr().out

    def test_regression_nonblocking_by_default(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        append_entry(_document(0.10), history)
        append_entry(_document(0.25), history)
        assert bench_compare_main(["--history", str(history)]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_strict_exits_1_on_regression(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_entry(_document(0.10), history)
        append_entry(_document(0.25), history)
        assert bench_compare_main(["--history", str(history), "--strict"]) == 1
        # A generous threshold clears the same history.
        assert bench_compare_main(
            ["--history", str(history), "--strict", "--threshold", "4.0"]
        ) == 0

    def test_umbrella_subcommand(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_entry(_document(), history)
        assert repro_main(["bench-compare", "--history", str(history)]) == 0


def test_run_bench_history_is_opt_in(tmp_path, monkeypatch):
    """run_bench(history=None) must never touch the tracked file."""
    import benchmarks.bench_perf_core as bench

    monkeypatch.setenv("REPRO_BENCH_JOBS", "8")
    tracked = tmp_path / "tracked.jsonl"
    bench.run_bench(quick=True, jobs=1, output=tmp_path / "a.json")
    assert not tracked.exists()
    bench.run_bench(quick=True, jobs=1, output=tmp_path / "b.json", history=tracked)
    bench.run_bench(quick=True, jobs=1, output=tmp_path / "c.json", history=tracked)
    entries = read_history(tracked)
    assert len(entries) == 2
    assert entries[0] != entries[1]


class TestMemoryDiff:
    @staticmethod
    def _scaled_document(rss_kb: int) -> dict:
        document = _document()
        document["scale"] = {
            "peak_rss_ratio_large_over_small": 1.0,
            "scenarios": [
                {"scenario": "synthetic-stream", "n_jobs": 100000,
                 "wall_time_s": 12.0, "events_per_sec": 33000.0,
                 "peak_rss_kb": rss_kb},
            ],
        }
        return document

    def test_condense_keeps_scale_scenarios(self):
        entry = condense(self._scaled_document(40960),
                         git_sha="a", timestamp="t", host="ci")
        assert entry["scale"]["peak_rss_ratio"] == 1.0
        assert entry["scale"]["scenarios"][0]["peak_rss_kb"] == 40960

    def test_condense_without_scale_omits_section(self):
        entry = condense(_document(), git_sha="a", timestamp="t", host="ci")
        assert "scale" not in entry

    def test_memory_growth_warns_but_never_fails(self):
        base = condense(self._scaled_document(40000),
                        git_sha="old", timestamp="t", host="ci")
        bloated = condense(self._scaled_document(80000),
                           git_sha="new", timestamp="t", host="ci")
        report = compare(bloated, [base], memory=True)
        assert report.ok  # advisory only
        assert len(report.memory_warnings) == 1
        assert "synthetic-stream" in report.memory_warnings[0]
        assert "WARN" in report.render()

    def test_memory_within_threshold_is_quiet(self):
        base = condense(self._scaled_document(40000),
                        git_sha="old", timestamp="t", host="ci")
        latest = condense(self._scaled_document(44000),
                          git_sha="new", timestamp="t", host="ci")
        report = compare(latest, [base], memory=True)
        assert report.memory_warnings == []
        assert report.memory_diffs[0].ratio == pytest.approx(1.1)

    def test_memory_flag_off_skips_diffing(self):
        base = condense(self._scaled_document(40000),
                        git_sha="old", timestamp="t", host="ci")
        report = compare(base, [base])
        assert report.memory_diffs == []

    def test_cli_memory_flag(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        append_entry(self._scaled_document(40000), history)
        append_entry(self._scaled_document(41000), history)
        assert bench_compare_main(
            ["--history", str(history), "--memory"]
        ) == 0
        out = capsys.readouterr().out
        assert "RSS (MiB)" in out


class TestThroughputGate:
    """Scale-tier / scaling-curve events/sec regressions block."""

    @staticmethod
    def _curved_document(eps: float, scale_eps: float = 33000.0) -> dict:
        document = _document()
        document["scaling_curve"] = {
            "algorithm": "EASY",
            "beta_arr": 0.51,
            "calibrated_load": 0.9,
            "points": [
                {"n_jobs": 10000, "events": 40000, "wall_time_s": 0.7,
                 "events_per_sec": eps},
                {"n_jobs": 100000, "events": 400000, "wall_time_s": 7.4,
                 "events_per_sec": eps},
            ],
            "throughput_ratio_smallest_over_largest": 1.0,
            "wall_time_exponent": 1.0,
        }
        document["scale"] = {
            "peak_rss_ratio_large_over_small": 1.0,
            "scenarios": [
                {"scenario": "synthetic-stream", "n_jobs": 100000,
                 "wall_time_s": 12.0, "events_per_sec": scale_eps,
                 "peak_rss_kb": 40960},
            ],
        }
        return document

    def test_condense_keeps_curve_points(self):
        entry = condense(self._curved_document(55000.0),
                         git_sha="a", timestamp="t", host="ci")
        curve = entry["scaling_curve"]
        assert curve["algorithm"] == "EASY"
        assert [p["n_jobs"] for p in curve["points"]] == [10000, 100000]
        assert curve["throughput_ratio"] == 1.0

    def test_condense_without_curve_omits_section(self):
        entry = condense(_document(), git_sha="a", timestamp="t", host="ci")
        assert "scaling_curve" not in entry

    def test_throughput_collapse_is_a_regression(self):
        base = condense(self._curved_document(55000.0),
                        git_sha="fast", timestamp="t", host="ci")
        cliff = condense(self._curved_document(7000.0),
                         git_sha="slow", timestamp="t", host="ci")
        result = compare(cliff, [base], threshold=1.5)
        assert not result.ok
        assert any("scaling-curve" in r for r in result.regressions)
        assert "slowdown" in result.render()

    def test_scale_tier_eps_is_gated_too(self):
        base = condense(self._curved_document(55000.0, scale_eps=33000.0),
                        git_sha="fast", timestamp="t", host="ci")
        slow = condense(self._curved_document(55000.0, scale_eps=8000.0),
                        git_sha="slow", timestamp="t", host="ci")
        result = compare(slow, [base], threshold=1.5)
        assert not result.ok
        assert any("synthetic-stream" in r for r in result.regressions)

    def test_flat_curve_is_ok_and_rendered(self):
        base = condense(self._curved_document(55000.0),
                        git_sha="a", timestamp="t", host="ci")
        latest = condense(self._curved_document(52000.0),
                          git_sha="b", timestamp="t", host="ci")
        result = compare(latest, [base], threshold=1.5)
        assert result.ok
        assert len(result.throughput_diffs) == 3  # 2 curve points + 1 tier
        assert "latest (ev/s)" in result.render()

    def test_baseline_is_best_prior_eps(self):
        entries = [
            condense(self._curved_document(eps), git_sha=sha,
                     timestamp="t", host="ci")
            for eps, sha in ((30000.0, "old"), (60000.0, "best"))
        ]
        latest = condense(self._curved_document(35000.0),
                          git_sha="new", timestamp="t", host="ci")
        result = compare(latest, entries, threshold=1.5)
        curve = [d for d in result.throughput_diffs
                 if d.scenario == "scaling-curve"]
        assert all(d.baseline_eps == 60000.0 for d in curve)
        assert all(d.baseline_sha == "best" for d in curve)
        assert not result.ok  # 60000 / 35000 = 1.71x > 1.5x

    def test_no_curve_in_latest_no_gate(self):
        base = condense(self._curved_document(55000.0),
                        git_sha="a", timestamp="t", host="ci")
        latest = condense(_document(), git_sha="b", timestamp="t", host="ci")
        result = compare(latest, [base], threshold=1.5)
        assert result.ok
        assert result.throughput_diffs == []


class TestPhaseAttribution:
    @staticmethod
    def _phased_document(cycle_share: float) -> dict:
        document = _document()
        document["phases"] = {
            "algorithm": "Delayed-LOS",
            "n_jobs": 100,
            "plain_wall_time_s": 0.005,
            "spans_wall_time_s": 0.0052,
            "spans_over_plain": 1.04,
            "phases": [
                {"phase": "schedule_cycle", "share": cycle_share},
                {"phase": "event", "share": 1.0 - cycle_share},
            ],
        }
        return document

    def test_condense_keeps_phase_shares(self):
        entry = condense(self._phased_document(0.3),
                         git_sha="a", timestamp="t", host="ci")
        phases = entry["phases"]
        assert phases["algorithm"] == "Delayed-LOS"
        assert phases["n_jobs"] == 100
        assert phases["spans_over_plain"] == 1.04
        assert phases["shares"] == {"schedule_cycle": 0.3, "event": 0.7}

    def test_condense_without_phases_omits_section(self):
        entry = condense(_document(), git_sha="a", timestamp="t", host="ci")
        assert "phases" not in entry

    def test_compare_names_the_grown_phase(self):
        base = condense(self._phased_document(0.30),
                        git_sha="old", timestamp="t", host="ci")
        latest = condense(self._phased_document(0.55),
                          git_sha="new", timestamp="t", host="ci")
        result = compare(latest, [base])
        assert result.phase_note is not None
        assert "'schedule_cycle'" in result.phase_note
        assert "30.0% -> 55.0%" in result.phase_note
        assert "1.04x" in result.phase_note
        assert result.phase_note in result.render()

    def test_no_prior_phase_data_means_no_note(self):
        base = condense(_document(), git_sha="old", timestamp="t", host="ci")
        latest = condense(self._phased_document(0.4),
                          git_sha="new", timestamp="t", host="ci")
        assert compare(latest, [base]).phase_note is None
