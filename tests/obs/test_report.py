"""``repro report``: trace files/sweep directories to Markdown/HTML."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import repro_main
from repro.experiments.parallel import RunSpec, execute_spec
from repro.obs.report import (
    analyze_trace,
    build_report,
    collect_traces,
    comparison_table,
    main as report_main,
)
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """A sweep directory: two traced runs of the same workload."""
    directory = tmp_path_factory.mktemp("sweep")
    config = GeneratorConfig(n_jobs=25, p_extend=0.3, p_reduce=0.1)
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(3))
    for name in ("EASY", "LOS-E"):
        execute_spec(
            RunSpec(
                workload=workload,
                algorithm=name,
                trace_out=str(directory / f"run.{name}.jsonl"),
            )
        )
    return directory


class TestCollect:
    def test_directory_globs_jsonl(self, sweep_dir):
        files = collect_traces([str(sweep_dir)])
        assert len(files) == 2
        assert files == sorted(files)

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            collect_traces(["/nonexistent/trace.jsonl"])

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            collect_traces([str(tmp_path)])


class TestMarkdown:
    def test_report_is_self_contained(self, sweep_dir):
        report = build_report([str(sweep_dir)])
        assert report.startswith("# Trace analytics report")
        # Both traces, the comparison table and per-trace metrics.
        assert "## Comparison" in report
        assert "## EASY" in report
        assert "## LOS-E" in report
        assert "utilization" in report
        assert "bounded_slowdown" in report
        assert "invariants: OK" in report

    def test_elastic_episodes_reported(self, sweep_dir):
        section = analyze_trace(str(sweep_dir / "run.LOS-E.jsonl"))
        report = build_report([str(sweep_dir / "run.LOS-E.jsonl")])
        if section.result.ecc_episodes:
            assert "ECC episodes" in report

    def test_comparison_table_one_row_per_trace(self, sweep_dir):
        sections = [analyze_trace(p) for p in collect_traces([str(sweep_dir)])]
        table = comparison_table(sections)
        assert len(table.splitlines()) == 2 + len(sections)


class TestHtml:
    def test_single_file_with_inline_svg(self, sweep_dir):
        html = build_report([str(sweep_dir)], html=True, title="My sweep")
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>My sweep</title>" in html
        assert "<svg" in html  # inline charts, no external assets
        assert "http://" not in html and "https://" not in html
        assert "LOS-E" in html


class TestCli:
    def test_writes_output_file(self, sweep_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert report_main([str(sweep_dir), "-o", str(out)]) == 0
        assert out.exists()
        assert "# Trace analytics report" in out.read_text(encoding="utf-8")
        assert "wrote" in capsys.readouterr().out

    def test_html_flag(self, sweep_dir, tmp_path):
        out = tmp_path / "report.html"
        assert report_main([str(sweep_dir), "--html", "-o", str(out)]) == 0
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_stdout_default(self, sweep_dir, capsys):
        assert report_main([str(sweep_dir)]) == 0
        assert "## Comparison" in capsys.readouterr().out

    def test_bad_input_exits_2(self, capsys):
        assert report_main(["/nonexistent/trace.jsonl"]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_umbrella_subcommand(self, sweep_dir, tmp_path):
        out = tmp_path / "via_umbrella.md"
        assert repro_main(["report", str(sweep_dir), "-o", str(out)]) == 0
        assert out.exists()


class TestSchedulerInitiatedEccs:
    def test_summary_attributes_runtime_resizes(self, tmp_path):
        from repro.workload.transform import make_malleable

        config = GeneratorConfig(n_jobs=60, p_extend=0.2, p_reduce=0.1)
        workload = make_malleable(
            CWFWorkloadGenerator(config).generate(np.random.default_rng(11)),
            0.6,
            seed=3,
        )
        execute_spec(
            RunSpec(
                workload=workload,
                algorithm="Malleable-Backfill",
                trace_out=str(tmp_path / "run.jsonl"),
            )
        )
        report = build_report([str(tmp_path)])
        assert "scheduler-initiated" in report
