"""Decision provenance: pass-over records, dedup, explain, durability."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as sim_main
from repro.core.base import DECISION_REASONS, REASON_FAULT_BACKOFF
from repro.core.registry import make_scheduler
from repro.durable.checkpoint import (
    CheckpointConfig,
    list_checkpoints,
    load_checkpoint,
)
from repro.experiments.runner import simulate
from repro.faults.model import FaultConfig, RetryPolicy
from repro.obs import explain
from repro.obs.trace_io import read_trace
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig


def generate(seed=11, n_jobs=60, p_extend=0.3, p_reduce=0.2):
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


def traced_run(tmp_path, algorithm, name, **kwargs):
    """Simulate with a trace attached; returns (metrics, trace path)."""
    path = tmp_path / f"{name}.jsonl"
    metrics = simulate(
        generate(), make_scheduler(algorithm), trace_out=str(path), **kwargs
    )
    return metrics, path


def decision_records(path):
    return [r for r in read_trace(path).records if r.kind == "decision"]


class TestDecisionRecords:
    @pytest.mark.parametrize("algorithm", ["EASY", "Delayed-LOS"])
    def test_congested_run_emits_known_reasons(self, tmp_path, algorithm):
        metrics, path = traced_run(tmp_path, algorithm, "run", decisions=True)
        decisions = decision_records(path)
        assert decisions, "a 60-job run must stall someone at least once"
        for record in decisions:
            assert record.data["reason"] in DECISION_REASONS
            assert record.data["job"] >= 0
            assert record.data["num"] > 0
        assert metrics.telemetry.counter("decisions_recorded") == len(decisions)

    def test_decisions_off_by_default(self, tmp_path):
        metrics, path = traced_run(tmp_path, "Delayed-LOS", "off")
        assert decision_records(path) == []
        assert metrics.telemetry.counter("decisions_recorded") == 0

    def test_consecutive_same_reason_deduplicated(self, tmp_path):
        _, path = traced_run(tmp_path, "Delayed-LOS", "dedup", decisions=True)
        last_reason = {}
        for record in decision_records(path):
            job, reason = record.data["job"], record.data["reason"]
            assert last_reason.get(job) != reason, (
                f"job {job} reported '{reason}' twice in a row"
            )
            last_reason[job] = reason

    def test_observe_only_trace_suffix(self, tmp_path):
        """Removing decision lines recovers the decisions-off trace."""
        baseline, off = traced_run(tmp_path, "Delayed-LOS", "off")
        recorded, on = traced_run(tmp_path, "Delayed-LOS", "on", decisions=True)
        assert recorded == baseline  # telemetry is compare=False
        kept = [
            line
            for line in on.read_text(encoding="utf-8").splitlines(keepends=True)
            if json.loads(line).get("kind") != "decision"
        ]
        assert "".join(kept) == off.read_text(encoding="utf-8")
        assert len(kept) < len(on.read_text(encoding="utf-8").splitlines())

    def test_fault_backoff_reason(self, tmp_path):
        path = tmp_path / "faulty.jsonl"
        simulate(
            generate(),
            make_scheduler("EASY"),
            trace_out=str(path),
            decisions=True,
            faults=FaultConfig(p_job_fail=0.3, seed=5),
            retry=RetryPolicy(max_retries=3, backoff=300.0),
        )
        reasons = {r.data["reason"] for r in decision_records(path)}
        assert REASON_FAULT_BACKOFF in reasons


class TestDurability:
    def test_checkpoint_resume_reproduces_decision_trace(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        ckpt = tmp_path / "ckpt.jsonl"
        baseline = simulate(
            generate(),
            make_scheduler("Delayed-LOS"),
            trace_out=str(plain),
            decisions=True,
        )
        ckdir = tmp_path / "ck"
        checkpointed = simulate(
            generate(),
            make_scheduler("Delayed-LOS"),
            trace_out=str(ckpt),
            decisions=True,
            checkpoint=CheckpointConfig(dir=ckdir, every_events=60, keep=0),
        )
        assert checkpointed == baseline
        expected = plain.read_bytes()
        assert ckpt.read_bytes() == expected
        assert decision_records(plain), "the oracle needs decision records"

        checkpoints = list_checkpoints(ckdir)
        assert checkpoints
        middle = checkpoints[len(checkpoints) // 2]
        resumed = load_checkpoint(middle).run()
        assert resumed == baseline
        assert ckpt.read_bytes() == expected


class TestExplainCli:
    def test_renders_pass_over_provenance(self, tmp_path, capsys):
        _, path = traced_run(tmp_path, "Delayed-LOS", "run", decisions=True)
        decisions = decision_records(path)
        job = decisions[0].data["job"]
        assert explain.main([str(path), "--job", str(job)]) == 0
        out = capsys.readouterr().out
        assert "passed over" in out
        assert f"job {job}" in out

    def test_unknown_job_errors(self, tmp_path, capsys):
        _, path = traced_run(tmp_path, "EASY", "run", decisions=True)
        assert explain.main([str(path), "--job", "999999"]) != 0
        assert "error" in capsys.readouterr().err

    def test_without_decisions_hints_at_flag(self, tmp_path, capsys):
        _, path = traced_run(tmp_path, "EASY", "plain")
        job = read_trace(path).records[0].data["job"]
        assert explain.main([str(path), "--job", str(job)]) == 0
        assert "--decisions" in capsys.readouterr().out

    def test_umbrella_subcommand(self, tmp_path, capsys):
        from repro.cli import repro_main

        _, path = traced_run(tmp_path, "EASY", "run", decisions=True)
        job = read_trace(path).records[0].data["job"]
        assert repro_main(["explain", str(path), "--job", str(job)]) == 0


class TestSimCli:
    def test_decisions_requires_trace_out(self, capsys):
        assert sim_main(["--jobs", "10", "--decisions"]) == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_decisions_with_trace_out(self, tmp_path):
        out = tmp_path / "run.jsonl"
        code = sim_main(
            [
                "--jobs", "30",
                "--algorithms", "Delayed-LOS",
                "--trace-out", str(out),
                "--decisions",
            ]
        )
        assert code == 0
        assert out.exists()
