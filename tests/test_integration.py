"""Cross-module integration and property tests.

These run every Table III algorithm end-to-end on randomized workloads
and assert the *simulation-level* invariants that must hold regardless
of policy:

- every job runs exactly once, between its arrival and the end,
- machine capacity and granularity are never violated (checked at
  event level via the trace),
- dedicated jobs never start before their rigid requested start,
- aggregate metrics are internally consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import SimulationRunner
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

BATCH_ALGORITHMS = [
    name
    for name, (_, _) in ALGORITHMS.items()
    if not make_scheduler(name).handles_dedicated
]
HETERO_ALGORITHMS = [
    name for name in ALGORITHMS if make_scheduler(name).handles_dedicated
]


def generate(seed, n_jobs=40, p_dedicated=0.0, p_extend=0.0, p_reduce=0.0, p_small=0.5):
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=p_small),
        p_dedicated=p_dedicated,
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


def assert_invariants(workload, runner, metrics):
    n = len(workload)
    assert metrics.n_jobs == n, "every job must finish"
    assert len({r.job_id for r in metrics.records}) == n, "each job exactly once"
    submits = {j.job_id: j.submit for j in workload.jobs}
    requested = {
        j.job_id: j.requested_start for j in workload.jobs if j.is_dedicated
    }
    for record in metrics.records:
        assert record.start >= submits[record.job_id], "start before arrival"
        assert record.finish >= record.start
        if record.job_id in requested:
            assert record.start >= requested[record.job_id], (
                "dedicated job started before its rigid start time"
            )
    # Event-level capacity audit.
    level = 0
    for event in runner.trace.of_kind("start", "finish"):
        level += event.data["num"] if event.kind == "start" else -event.data["num"]
        assert 0 <= level <= workload.machine_size
    assert 0.0 <= metrics.utilization <= 1.0
    assert metrics.mean_wait >= 0.0
    assert metrics.slowdown >= 1.0


@pytest.mark.parametrize("name", BATCH_ALGORITHMS)
def test_batch_algorithms_invariants(name):
    workload = generate(seed=101, n_jobs=60)
    runner = SimulationRunner(workload, make_scheduler(name), trace=True)
    metrics = runner.run()
    assert_invariants(workload, runner, metrics)


@pytest.mark.parametrize("name", HETERO_ALGORITHMS)
def test_hetero_algorithms_invariants(name):
    workload = generate(seed=202, n_jobs=60, p_dedicated=0.4)
    runner = SimulationRunner(workload, make_scheduler(name), trace=True)
    metrics = runner.run()
    assert_invariants(workload, runner, metrics)


@pytest.mark.parametrize("name", ["EASY-E", "LOS-E", "Delayed-LOS-E"])
def test_elastic_batch_invariants(name):
    workload = generate(seed=303, n_jobs=60, p_extend=0.3, p_reduce=0.2)
    runner = SimulationRunner(workload, make_scheduler(name), trace=True)
    metrics = runner.run()
    assert_invariants(workload, runner, metrics)
    assert sum(metrics.ecc_stats.values()) == len(workload.eccs)


@pytest.mark.parametrize("name", ["EASY-DE", "LOS-DE", "Hybrid-LOS-E"])
def test_elastic_hetero_invariants(name):
    workload = generate(
        seed=404, n_jobs=60, p_dedicated=0.4, p_extend=0.3, p_reduce=0.2
    )
    runner = SimulationRunner(workload, make_scheduler(name), trace=True)
    metrics = runner.run()
    assert_invariants(workload, runner, metrics)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    p_small=st.sampled_from([0.2, 0.5, 0.8]),
    p_dedicated=st.sampled_from([0.0, 0.5]),
    elastic=st.booleans(),
    algorithm_index=st.integers(0, 2),
)
def test_random_workloads_all_families(seed, p_small, p_dedicated, elastic, algorithm_index):
    """Fuzz: random workload knobs × the three policy families."""
    if p_dedicated > 0:
        name = ["EASY-D", "LOS-D", "Hybrid-LOS"][algorithm_index]
    else:
        name = ["EASY", "LOS", "Delayed-LOS"][algorithm_index]
    if elastic and not name.endswith("-D"):
        name = name + "-E"
    workload = generate(
        seed=seed,
        n_jobs=25,
        p_small=p_small,
        p_dedicated=p_dedicated,
        p_extend=0.3 if elastic else 0.0,
        p_reduce=0.2 if elastic else 0.0,
    )
    runner = SimulationRunner(workload, make_scheduler(name), trace=True)
    metrics = runner.run()
    assert_invariants(workload, runner, metrics)


class TestPairedComparisons:
    """Directional sanity on a common seeded workload."""

    def test_backfilling_beats_fcfs(self):
        workload = generate(seed=7, n_jobs=120)
        from repro.experiments.sweep import run_algorithms

        results = run_algorithms(workload, ("FCFS", "EASY"))
        assert results["EASY"].mean_wait <= results["FCFS"].mean_wait

    def test_identical_policies_identical_results(self):
        workload = generate(seed=8, n_jobs=80)
        from repro.experiments.sweep import run_algorithms

        a = run_algorithms(workload, ("Delayed-LOS",))["Delayed-LOS"]
        b = run_algorithms(workload, ("Delayed-LOS",))["Delayed-LOS"]
        assert [(r.job_id, r.start) for r in a.records] == [
            (r.job_id, r.start) for r in b.records
        ]

    def test_total_work_conserved_across_policies(self):
        """All non-elastic policies execute the same processor-seconds."""
        workload = generate(seed=9, n_jobs=80)
        from repro.experiments.sweep import run_algorithms

        results = run_algorithms(workload, ("FCFS", "EASY", "LOS", "Delayed-LOS"))
        works = {
            name: sum(r.num * r.runtime for r in m.records)
            for name, m in results.items()
        }
        reference = works.pop("FCFS")
        for name, work in works.items():
            assert work == pytest.approx(reference), name


class TestConservationLaws:
    """Exact accounting identities that must hold on every run."""

    def test_busy_area_equals_executed_work(self):
        """The utilization tracker's integral equals the sum of
        num x realized-runtime over all completed jobs."""
        import pytest as _pytest

        from repro.experiments.runner import SimulationRunner

        workload = generate(seed=77, n_jobs=80)
        runner = SimulationRunner(workload, make_scheduler("Delayed-LOS"))
        metrics = runner.run()
        executed = sum(r.num * r.runtime for r in metrics.records)
        last_finish = max(r.finish for r in metrics.records)
        assert runner.tracker.busy_area(until=last_finish) == _pytest.approx(executed)

    def test_utilization_identity(self):
        """mean utilization == executed work / (M x makespan)."""
        import pytest as _pytest

        from repro.experiments.runner import simulate as _simulate

        workload = generate(seed=88, n_jobs=80)
        metrics = _simulate(workload, make_scheduler("EASY"))
        executed = sum(r.num * r.runtime for r in metrics.records)
        expected = executed / (workload.machine_size * metrics.makespan)
        assert metrics.utilization == _pytest.approx(expected)

    def test_littles_law_consistency(self):
        """Mean queue length ~= arrival rate x mean wait (Little's law,
        exact for the time-average over the same window)."""
        import pytest as _pytest

        from repro.experiments.runner import simulate as _simulate

        workload = generate(seed=99, n_jobs=120)
        metrics = _simulate(workload, make_scheduler("EASY"))
        assert metrics.queue is not None
        # L = (total wait time integrated) / window = sum(wait_i)/window.
        window = metrics.makespan
        expected_L = sum(r.wait for r in metrics.records) / window
        assert metrics.queue.mean_queue_length == _pytest.approx(expected_L, rel=1e-6)
