"""Unit tests for the fault/retry value objects and the CLI spec."""

from __future__ import annotations

import pytest

from repro.faults.model import (
    FaultConfig,
    RetryPolicy,
    format_faults_spec,
    parse_faults_spec,
)


class TestFaultConfig:
    def test_defaults_disable_everything(self) -> None:
        config = FaultConfig()
        assert not config.node_faults_enabled
        assert not config.job_faults_enabled
        assert not config.enabled

    def test_mtbf_enables_node_faults(self) -> None:
        config = FaultConfig(mtbf=86400.0, mttr=3600.0)
        assert config.node_faults_enabled
        assert config.enabled

    def test_pfail_enables_job_faults(self) -> None:
        assert FaultConfig(p_job_fail=0.1).job_faults_enabled
        assert FaultConfig(poison_jobs=(3,)).job_faults_enabled

    def test_poison_jobs_normalized(self) -> None:
        config = FaultConfig(poison_jobs=(9, 3, 9, 3))
        assert config.poison_jobs == (3, 9)

    def test_equal_configs_hash_equally(self) -> None:
        a = FaultConfig(mtbf=100.0, poison_jobs=(2, 1))
        b = FaultConfig(mtbf=100.0, poison_jobs=(1, 2, 2))
        assert a == b
        assert hash(a) == hash(b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mtbf": -1.0},
            {"mtbf": 100.0, "mttr": 0.0},
            {"mtbf": 100.0, "mttr": -5.0},
            {"p_job_fail": -0.1},
            {"p_job_fail": 1.5},
            {"seed": -1},
        ],
    )
    def test_validation(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_mttr_ignored_without_node_faults(self) -> None:
        # mtbf=0 disables the repair process, so mttr is not validated.
        assert not FaultConfig(mtbf=0.0, mttr=0.0).enabled


class TestRetryPolicy:
    def test_defaults(self) -> None:
        policy = RetryPolicy()
        assert policy.max_retries == 3
        assert policy.backoff == 0.0
        assert not policy.checkpoint

    def test_delay_is_exponential(self) -> None:
        policy = RetryPolicy(backoff=60.0, backoff_factor=2.0)
        assert policy.delay(1) == 60.0
        assert policy.delay(2) == 120.0
        assert policy.delay(3) == 240.0

    def test_zero_backoff_requeues_immediately(self) -> None:
        assert RetryPolicy(backoff=0.0).delay(5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff": -1.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_rejects_bad_attempt(self) -> None:
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestFaultsSpec:
    def test_full_spec(self) -> None:
        config = parse_faults_spec("mtbf=86400,mttr=3600,seed=7,pfail=0.02,poison=3|9")
        assert config == FaultConfig(
            mtbf=86400.0, mttr=3600.0, seed=7, p_job_fail=0.02, poison_jobs=(3, 9)
        )

    def test_partial_spec_uses_defaults(self) -> None:
        config = parse_faults_spec("pfail=0.5")
        assert config.p_job_fail == 0.5
        assert not config.node_faults_enabled

    def test_whitespace_and_case_tolerated(self) -> None:
        config = parse_faults_spec(" MTBF = 100 , seed = 2 ")
        assert config.mtbf == 100.0
        assert config.seed == 2

    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("mtbf", "key=value"),
            ("mtbf=", "key=value"),
            ("bogus=1", "unknown key"),
            ("mtbf=1,mtbf=2", "duplicate key"),
            ("mtbf=abc", "bad value"),
            ("poison=1|x", "bad value"),
        ],
    )
    def test_malformed_specs(self, spec: str, fragment: str) -> None:
        with pytest.raises(ValueError, match=fragment):
            parse_faults_spec(spec)

    @pytest.mark.parametrize(
        "config",
        [
            FaultConfig(mtbf=86400.0, mttr=3600.0, seed=7),
            FaultConfig(p_job_fail=0.25, seed=1),
            FaultConfig(mtbf=50000.0, mttr=300.0, p_job_fail=0.1, poison_jobs=(4, 8)),
            FaultConfig(),
        ],
    )
    def test_format_parse_round_trip(self, config: FaultConfig) -> None:
        assert parse_faults_spec(format_faults_spec(config)) == config
