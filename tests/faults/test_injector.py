"""Fault injection and recovery: determinism, invariants, retry paths.

The fuzz test is the load-bearing one: ~100 random fault schedules per
scheduler, each run under :class:`AuditingScheduler` so queue/machine
invariants (including :meth:`Machine.check_invariants` in degraded
states) are re-checked on every cycle pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.audit import AuditingScheduler
from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.faults.model import FaultConfig, RetryPolicy
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.job import JobState
from repro.workload.twostage import TwoStageSizeConfig
from tests.conftest import batch_job, make_workload

FAULTS = FaultConfig(mtbf=30000.0, mttr=2000.0, seed=5, p_job_fail=0.05)


def generated_workload(
    n_jobs: int = 40, seed: int = 7, p_extend: float = 0.0, p_reduce: float = 0.0
) -> Workload:
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


class TestDeterminism:
    def test_two_runs_are_byte_identical(self) -> None:
        workload = generated_workload()
        rows = [
            simulate(workload, make_scheduler("EASY"), faults=FAULTS).as_row()
            for _ in range(2)
        ]
        assert rows[0] == rows[1]

    def test_different_fault_seed_changes_schedule(self) -> None:
        workload = generated_workload()
        a = simulate(
            workload, make_scheduler("EASY"),
            faults=FaultConfig(mtbf=20000.0, mttr=2000.0, seed=1, p_job_fail=0.1),
        )
        b = simulate(
            workload, make_scheduler("EASY"),
            faults=FaultConfig(mtbf=20000.0, mttr=2000.0, seed=2, p_job_fail=0.1),
        )
        assert a.as_row() != b.as_row()

    def test_disabled_config_matches_fault_free_run(self) -> None:
        workload = generated_workload()
        baseline = simulate(workload, make_scheduler("EASY"))
        runner = SimulationRunner(
            workload, make_scheduler("EASY"), faults=FaultConfig()
        )
        assert runner.faults is None
        assert runner.run().as_row() == baseline.as_row()


class TestRecovery:
    def test_poison_job_exhausts_retries(self) -> None:
        workload = make_workload(
            [batch_job(1, estimate=500.0), batch_job(2, submit=1.0, estimate=500.0)]
        )
        metrics = simulate(
            workload,
            make_scheduler("EASY"),
            faults=FaultConfig(poison_jobs=(1,), seed=0),
            retry=RetryPolicy(max_retries=2),
        )
        assert metrics.failed_jobs == 1
        record = metrics.failed_records[0]
        assert record.job_id == 1
        assert record.attempts == 3  # initial attempt + 2 retries
        assert record.reason == "crash"
        assert record.lost_work > 0
        assert metrics.requeue_count == 2
        assert metrics.lost_work == record.lost_work
        # the healthy job still completes normally
        assert [r.job_id for r in metrics.records] == [2]

    def test_zero_retries_fails_on_first_crash(self) -> None:
        workload = make_workload([batch_job(1, estimate=500.0)])
        metrics = simulate(
            workload,
            make_scheduler("EASY"),
            faults=FaultConfig(poison_jobs=(1,)),
            retry=RetryPolicy(max_retries=0),
        )
        assert metrics.failed_jobs == 1
        assert metrics.failed_records[0].attempts == 1
        assert metrics.requeue_count == 0

    def test_transient_crash_recovers(self) -> None:
        # pfail applies per attempt; with enough retries the job
        # eventually completes and the partial attempts are lost work.
        workload = make_workload([batch_job(1, estimate=400.0)])
        metrics = simulate(
            workload,
            make_scheduler("EASY"),
            faults=FaultConfig(p_job_fail=0.9, seed=3),
            retry=RetryPolicy(max_retries=50),
        )
        assert metrics.failed_jobs == 0
        assert len(metrics.records) == 1
        if metrics.requeue_count:
            assert metrics.lost_work > 0

    def test_backoff_delays_requeue(self) -> None:
        workload = make_workload([batch_job(1, estimate=500.0)])
        runner = SimulationRunner(
            workload,
            make_scheduler("EASY"),
            trace=True,
            faults=FaultConfig(poison_jobs=(1,)),
            retry=RetryPolicy(max_retries=2, backoff=100.0, backoff_factor=2.0),
        )
        runner.run()
        fails = runner.trace.of_kind("job-fail")
        requeues = runner.trace.of_kind("requeue")
        assert len(fails) == 3 and len(requeues) == 2
        assert requeues[0].time == pytest.approx(fails[0].time + 100.0)
        assert requeues[1].time == pytest.approx(fails[1].time + 200.0)

    def test_checkpoint_reduces_lost_work(self) -> None:
        workload = make_workload([batch_job(1, estimate=2000.0)])
        faults = FaultConfig(poison_jobs=(1,), seed=0)
        plain = simulate(
            workload, make_scheduler("EASY-E"), faults=faults,
            retry=RetryPolicy(max_retries=3, checkpoint=False),
        )
        ckpt = simulate(
            workload, make_scheduler("EASY-E"), faults=faults,
            retry=RetryPolicy(max_retries=3, checkpoint=True),
        )
        assert plain.failed_jobs == ckpt.failed_jobs == 1
        assert ckpt.lost_work < plain.lost_work

    def test_checkpoint_is_inert_for_non_elastic_policies(self) -> None:
        workload = make_workload([batch_job(1, estimate=2000.0)])
        faults = FaultConfig(poison_jobs=(1,), seed=0)
        rows = [
            simulate(
                workload, make_scheduler("EASY"), faults=faults,
                retry=RetryPolicy(max_retries=2, checkpoint=flag),
            ).as_row()
            for flag in (False, True)
        ]
        assert rows[0] == rows[1]


class TestNodeFaults:
    def test_eviction_requeues_and_counts_degraded_time(self) -> None:
        # One big job on a small machine: frequent failures guarantee
        # at least one eviction within the job's lifetime.
        workload = make_workload(
            [batch_job(1, num=128, estimate=5000.0)],
            machine_size=128,
            granularity=32,
        )
        metrics = simulate(
            workload,
            make_scheduler("EASY"),
            faults=FaultConfig(mtbf=1000.0, mttr=200.0, seed=0),
            retry=RetryPolicy(max_retries=1000),
        )
        assert metrics.node_failures > 0
        assert metrics.requeue_count > 0
        assert metrics.degraded_time > 0
        assert metrics.lost_work > 0
        assert len(metrics.records) == 1  # eventually completes

    def test_heap_drains_after_last_job(self) -> None:
        # The failure chain must stop once no work remains, so short
        # workloads under aggressive MTBF still terminate.
        workload = make_workload([batch_job(1, estimate=50.0)])
        metrics = simulate(
            workload,
            make_scheduler("EASY"),
            faults=FaultConfig(mtbf=10.0, mttr=5.0, seed=1),
            retry=RetryPolicy(max_retries=10000),
        )
        assert len(metrics.records) == 1


@pytest.mark.parametrize(
    "name,elastic",
    [("EASY", False), ("LOS", False), ("Hybrid-LOS-E", True)],
)
def test_fuzz_invariants_under_random_fault_schedules(name: str, elastic: bool) -> None:
    """~100 random fault schedules per scheduler, fully audited.

    Every cycle pass re-checks the structural invariants and
    ``Machine.check_invariants()`` — which must hold throughout
    degraded operation — and every run must account for every job.
    """
    workload = generated_workload(
        n_jobs=12,
        seed=11,
        p_extend=0.2 if elastic else 0.0,
        p_reduce=0.2 if elastic else 0.0,
    )
    rng = np.random.default_rng(99)
    for trial in range(100):
        mtbf = float(np.exp(rng.uniform(np.log(2e3), np.log(1e5))))
        mttr = float(np.exp(rng.uniform(np.log(1e2), np.log(5e3))))
        poison = (int(rng.integers(1, 13)),) if rng.random() < 0.3 else ()
        faults = FaultConfig(
            mtbf=mtbf,
            mttr=mttr,
            seed=trial,
            p_job_fail=float(rng.uniform(0.0, 0.3)),
            poison_jobs=poison,
        )
        retry = RetryPolicy(
            max_retries=int(rng.integers(0, 6)),
            backoff=float(rng.uniform(0.0, 300.0)),
            checkpoint=bool(rng.random() < 0.5),
        )
        runner = SimulationRunner(
            workload,
            AuditingScheduler(make_scheduler(name)),
            faults=faults,
            retry=retry,
        )
        metrics = runner.run()
        runner.machine.check_invariants()
        assert runner.machine.used == 0, (trial, faults)
        # conservation: every job either finished or failed permanently
        states = {job.job_id: job.state for job in runner.jobs}
        assert all(
            state in (JobState.FINISHED, JobState.FAILED)
            for state in states.values()
        ), (trial, faults, states)
        assert len(metrics.records) + metrics.failed_jobs == len(workload), (
            trial,
            faults,
        )
        assert metrics.lost_work >= 0
        assert metrics.degraded_time >= 0
