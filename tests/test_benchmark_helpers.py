"""Tests for the benchmark harness helpers (benchmarks/common.py)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import mean_metric, render_improvements, render_sweep
from repro.experiments.sweep import SweepResult
from repro.metrics.records import JobRecord, RunMetrics
from repro.workload.job import JobKind


def run(algorithm, wait, utilization):
    record = JobRecord(
        job_id=1, kind=JobKind.BATCH, num=32, submit=0.0, start=wait, finish=wait + 100.0
    )
    return RunMetrics(
        algorithm=algorithm,
        machine_size=320,
        records=[record],
        utilization=utilization,
        makespan=wait + 100.0,
    )


@pytest.fixture
def sweep():
    result = SweepResult(sweep_label="Load", sweep_values=[0.5, 0.9])
    result.series = {
        "EASY": [run("EASY", 100.0, 0.7), run("EASY", 300.0, 0.8)],
        "Delayed-LOS": [run("Delayed-LOS", 80.0, 0.72), run("Delayed-LOS", 250.0, 0.82)],
    }
    return result


class TestMeanMetric:
    def test_averages_over_sweep(self, sweep):
        assert mean_metric(sweep, "EASY", "mean_wait") == 200.0
        assert mean_metric(sweep, "Delayed-LOS", "utilization") == pytest.approx(0.77)


class TestRenderSweep:
    def test_contains_tables_and_plots(self, sweep):
        text = render_sweep(sweep, "My Figure")
        assert "My Figure" in text
        assert "metric: utilization" in text
        assert "metric: mean_wait" in text
        assert "metric: slowdown" in text
        assert "o = EASY" in text  # legend of the ASCII plot

    def test_metric_subset(self, sweep):
        text = render_sweep(sweep, "t", metrics=("mean_wait",))
        assert "metric: mean_wait" in text
        assert "metric: utilization" not in text


class TestRenderImprovements:
    def test_measured_and_paper_sections(self):
        measured = {"Utilization": {"LOS": 1.0}}
        paper = {"Utilization": {"LOS": 4.1}}
        text = render_improvements("Table X", measured, paper)
        assert "Table X — measured" in text
        assert "Table X — paper reported" in text
        assert "4.1" in text and "1" in text
