"""Performance regression guards.

The whole point of bounding the DP lookahead ([7]) is tractability;
these tests keep the implementation honest about it.  Budgets carry
~10x headroom over current measurements so they only trip on genuine
regressions (e.g. accidentally quadratic queue operations or a
per-cycle DP table blow-up), not on machine noise.

Current reference timings (this machine): a paper-scale 500-job run
completes in ~0.05-0.2 s per algorithm; a full figure sweep in ~1-2 s.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.sdsc import generate_sdsc_like
from repro.workload.twostage import TwoStageSizeConfig


def timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def paper_scale_workload():
    config = GeneratorConfig(n_jobs=500, size=TwoStageSizeConfig(p_small=0.5))
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(42))


class TestSimulationThroughput:
    @pytest.mark.parametrize("name", ["EASY", "LOS", "Delayed-LOS", "CONSERVATIVE"])
    def test_paper_scale_run_under_budget(self, paper_scale_workload, name):
        elapsed = timed(lambda: simulate(paper_scale_workload, make_scheduler(name)))
        assert elapsed < 5.0, f"{name} took {elapsed:.2f}s for 500 jobs"

    def test_fine_granularity_run_under_budget(self):
        """The SDSC-like machine (granularity 1, 128 procs) exercises
        the largest DP tables (128x128 per reservation cycle)."""
        workload = generate_sdsc_like(500, np.random.default_rng(7))
        elapsed = timed(lambda: simulate(workload, make_scheduler("Delayed-LOS")))
        assert elapsed < 10.0, f"{elapsed:.2f}s for the fine-granularity run"

    def test_large_workload_scales_roughly_linearly(self):
        """2000 jobs must not take quadratically longer than 500."""
        config = GeneratorConfig(n_jobs=2000, size=TwoStageSizeConfig(p_small=0.5))
        workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(3))
        elapsed = timed(lambda: simulate(workload, make_scheduler("Delayed-LOS")))
        assert elapsed < 20.0, f"{elapsed:.2f}s for 2000 jobs"


class TestStreamingScalingFlatness:
    """Per-event cost must not grow with total job count.

    The streaming tier's original cliff (117k events/s at 1k jobs
    down to 7k at 1M) came from per-cycle work linear in queue and
    history size.  This guard replays two synthetic streams 5x apart
    and bounds the per-event wall-time ratio: flat engines score ~1x;
    the pre-fix engine scored well over the bound at this spread.
    """

    @pytest.mark.perf
    def test_per_event_cost_flat_10k_vs_50k(self):
        from repro.workload.streaming import SyntheticWorkloadStream

        def per_event_seconds(n_jobs: int) -> float:
            config = GeneratorConfig(
                n_jobs=n_jobs, size=TwoStageSizeConfig(p_small=0.5)
            ).with_beta_arr(0.51)
            stream = SyntheticWorkloadStream(config, seed=17).stream()
            runner = SimulationRunner(
                stream, make_scheduler("EASY"), online=True, retain_records=False
            )
            started = time.perf_counter()
            metrics = runner.run()
            elapsed = time.perf_counter() - started
            assert metrics.events_processed > 0
            return elapsed / metrics.events_processed

        small = per_event_seconds(10_000)
        large = per_event_seconds(50_000)
        # Generous: allows 2x noise/cache effects, trips on the ~5x
        # growth a linear-in-queue scan reintroduces at this spread.
        assert large < 2.0 * small, (
            f"per-event cost grew {large / small:.2f}x from 10k to 50k jobs "
            f"({small * 1e6:.2f}us -> {large * 1e6:.2f}us)"
        )


class TestGenerationThroughput:
    def test_workload_generation_fast(self):
        config = GeneratorConfig(n_jobs=5000)
        elapsed = timed(
            lambda: CWFWorkloadGenerator(config).generate(np.random.default_rng(1))
        )
        assert elapsed < 10.0, f"{elapsed:.2f}s to generate 5000 jobs"
