"""Paper-narrative tests: statements made in the paper's text, checked
end-to-end against the implementation.

Each test cites the paper location it pins down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.experiments.sweep import run_algorithms
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig
from tests.conftest import batch_job, make_workload


class TestFigure2EndToEnd:
    """§III-A and Figure 2 with *staggered* arrivals.

    When the 7-proc job arrives alone it is the only DP candidate, so
    every scheduler — including Delayed-LOS — starts it immediately.
    The Figure 2 divergence only materializes when the queue holds all
    three jobs at decision time (see TestFigure2Simultaneous); this
    class pins the staggered behaviour so nobody "fixes" it into
    clairvoyance about future arrivals.
    """

    def _workload(self):
        return make_workload(
            [
                batch_job(1, submit=0.0, num=7, estimate=100.0),
                batch_job(2, submit=1.0, num=4, estimate=100.0),
                batch_job(3, submit=2.0, num=6, estimate=100.0),
            ],
            machine_size=10,
            granularity=1,
        )

    @pytest.mark.parametrize("name", ["LOS", "Delayed-LOS", "EASY"])
    def test_lone_head_starts_immediately(self, name):
        runner = SimulationRunner(self._workload(), make_scheduler(name), trace=True)
        runner.run()
        starts = {r.data["job"]: r.time for r in runner.trace.of_kind("start")}
        assert starts[1] == 0.0, "online schedulers cannot anticipate arrivals"
        # Only 3 processors remain: jobs 2 and 3 must wait for job 1.
        assert starts[2] >= 100.0 and starts[3] >= 100.0


class TestFigure2Simultaneous:
    """The exact Figure 2 situation: all three jobs present at once."""

    def _workload(self):
        return make_workload(
            [
                batch_job(1, submit=10.0, num=7, estimate=100.0),
                batch_job(2, submit=10.0, num=4, estimate=100.0),
                batch_job(3, submit=10.0, num=6, estimate=100.0),
            ],
            machine_size=10,
            granularity=1,
        )

    def test_utilizations_differ_as_described(self):
        los = simulate(self._workload(), make_scheduler("LOS"))
        delayed = simulate(self._workload(), make_scheduler("Delayed-LOS", max_skip_count=5))
        # "It would lead to utilization of only 7 instead of 10".
        los_starts = {r.job_id: r.start for r in los.records}
        delayed_starts = {r.job_id: r.start for r in delayed.records}
        assert los_starts[1] == 10.0
        assert delayed_starts[2] == 10.0 and delayed_starts[3] == 10.0
        assert delayed_starts[1] > 10.0


class TestLOSEquivalences:
    """DESIGN.md §4 unification, end-to-end on statistical workloads."""

    def test_los_equals_delayed_cs0(self, small_batch_workload):
        los = simulate(small_batch_workload, make_scheduler("LOS"))
        delayed0 = run_algorithms(
            small_batch_workload, ("Delayed-LOS",), max_skip_count=0
        )["Delayed-LOS"]
        assert [(r.job_id, r.start) for r in los.records] == [
            (r.job_id, r.start) for r in delayed0.records
        ]

    def test_los_d_equals_hybrid_cs0(self, small_hetero_workload):
        los_d = simulate(small_hetero_workload, make_scheduler("LOS-D"))
        hybrid0 = run_algorithms(
            small_hetero_workload, ("Hybrid-LOS",), max_skip_count=0
        )["Hybrid-LOS"]
        assert [(r.job_id, r.start) for r in los_d.records] == [
            (r.job_id, r.start) for r in hybrid0.records
        ]

    def test_hybrid_without_dedicated_equals_delayed(self, small_batch_workload):
        """Algorithm 2 line 4: empty W^d delegates to Algorithm 1."""
        hybrid = simulate(small_batch_workload, make_scheduler("Hybrid-LOS"))
        delayed = simulate(small_batch_workload, make_scheduler("Delayed-LOS"))
        assert [(r.job_id, r.start) for r in hybrid.records] == [
            (r.job_id, r.start) for r in delayed.records
        ]


class TestSlowdownDefinition:
    """§V: slowdown = (avg waiting time + avg runtime) / avg runtime."""

    def test_formula_on_real_run(self, small_batch_workload):
        metrics = simulate(small_batch_workload, make_scheduler("EASY"))
        expected = (metrics.mean_wait + metrics.mean_runtime) / metrics.mean_runtime
        assert metrics.slowdown == pytest.approx(expected)


class TestParameterTables:
    """§IV-D Tables I-II defaults are wired through the generator."""

    def test_runtime_parameters(self):
        config = GeneratorConfig()
        lub = config.lublin
        assert (lub.alpha1, lub.beta1) == (4.2, 0.94)
        assert (lub.alpha2, lub.beta2) == (312.0, 0.03)
        assert (lub.pa, lub.pb) == (-0.0054, 0.78)

    def test_arrival_parameters(self):
        lub = GeneratorConfig().lublin
        assert lub.alpha_arr == 13.2303
        assert lub.alpha_num == 15.1737
        assert lub.beta_num == 0.9631
        assert lub.arar == 1.0225

    def test_machine_is_bluegene_p(self):
        config = GeneratorConfig()
        assert config.machine_size == 320
        assert config.size.granularity == 32

    def test_paper_beta_arr_range_spans_paper_loads(self):
        """Table II: β_arr ∈ [0.4101, 0.6101].  With the paper's own
        size mixes, that range must bracket loads [0.5, 1]."""
        rng_low = CWFWorkloadGenerator(
            GeneratorConfig(n_jobs=300).with_beta_arr(0.4101)
        ).generate(np.random.default_rng(1))
        rng_high = CWFWorkloadGenerator(
            GeneratorConfig(n_jobs=300).with_beta_arr(0.6101)
        ).generate(np.random.default_rng(1))
        assert rng_low.offered_load() > 1.0 or rng_low.offered_load() > 0.9
        assert rng_high.offered_load() < 0.6


class TestECCBounds:
    """§III-C: 'A maximum count on number of ECCs can be imposed'."""

    def test_cap_respected_over_full_run(self, small_elastic_workload):
        runner = SimulationRunner(
            small_elastic_workload,
            make_scheduler("Delayed-LOS-E"),
            max_eccs_per_job=1,
        )
        metrics = runner.run()
        assert all(r.eccs_applied <= 1 for r in metrics.records)
