"""Tests for the repro-sim CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.jobs == 500
        assert args.load == 0.9
        assert args.algorithms == ["EASY", "LOS", "Delayed-LOS"]

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--algorithms", "Hybrid-LOS", "--jobs", "100", "--p-dedicated", "0.5"]
        )
        assert args.algorithms == ["Hybrid-LOS"]
        assert args.jobs == 100
        assert args.p_dedicated == 0.5


class TestMain:
    def test_list_algorithms(self, capsys):
        assert main(["--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "Delayed-LOS" in out and "EASY-DE" in out

    def test_small_comparison_run(self, capsys):
        code = main(
            ["--jobs", "40", "--load", "0.7", "--seed", "3",
             "--algorithms", "EASY", "Delayed-LOS"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: 40 jobs" in out
        assert "EASY" in out and "Delayed-LOS" in out
        assert "utilization" in out

    def test_save_and_reload_cwf(self, tmp_path, capsys):
        path = tmp_path / "generated.cwf"
        assert main(
            ["--jobs", "30", "--load", "0.6", "--save-cwf", str(path),
             "--algorithms", "EASY"]
        ) == 0
        assert path.exists()
        # Re-run from the saved file.
        assert main(["--cwf", str(path), "--algorithms", "EASY"]) == 0
        out = capsys.readouterr().out
        assert "loaded from" not in out  # description not printed, just works

    def test_heterogeneous_run(self, capsys):
        code = main(
            ["--jobs", "30", "--load", "0.7", "--p-dedicated", "0.5",
             "--algorithms", "Hybrid-LOS", "EASY-D"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dedicated" in out


class TestNewFlags:
    def test_stats_flag(self, capsys):
        assert main(["--jobs", "25", "--load", "0.6", "--algorithms", "EASY", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "size histogram:" in out

    def test_timeline_flag(self, capsys):
        assert main(["--jobs", "20", "--load", "0.6", "--algorithms", "EASY", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "--- timeline: EASY ---" in out
        assert "busy" in out

    def test_export_csv_and_json(self, tmp_path, capsys):
        csv_path = tmp_path / "runs.csv"
        json_path = tmp_path / "run.json"
        assert main(
            ["--jobs", "20", "--load", "0.6", "--algorithms", "EASY", "LOS",
             "--export-csv", str(csv_path), "--export-json", str(json_path)]
        ) == 0
        assert csv_path.read_text().startswith("algorithm,")
        assert csv_path.read_text().count("\n") == 3  # header + 2 runs
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert payload["algorithm"] == "EASY"
        assert payload["records"]

    def test_figure_flag_small(self, capsys):
        assert main(["--figure", "7", "--jobs", "30"]) == 0
        out = capsys.readouterr().out
        assert "figure 7" in out
        assert "mean_wait vs Load" in out

    def test_adaptive_in_cli(self, capsys):
        assert main(["--jobs", "25", "--load", "0.7", "--algorithms", "ADAPTIVE"]) == 0
        assert "ADAPTIVE" in capsys.readouterr().out

    def test_validate_clean_workload(self, capsys):
        assert main(["--jobs", "20", "--load", "0.6", "--validate"]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_validate_broken_cwf(self, tmp_path, capsys):
        # Craft a CWF whose job violates the 32-proc granularity.
        path = tmp_path / "broken.cwf"
        path.write_text("1 0 -1 100 33 -1 -1 33 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1\n")
        code = main(["--cwf", str(path), "--machine", "320", "--validate"])
        # Granularity for loaded CWF defaults to 1, so the 33-proc job
        # is legal there; instead check oversized detection.
        assert code == 0
        big = tmp_path / "big.cwf"
        big.write_text("1 0 -1 100 640 -1 -1 640 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1\n")
        assert main(["--cwf", str(big), "--machine", "320", "--validate"]) == 1
        assert "job-too-large" in capsys.readouterr().out
