"""Tests for the ASCII plotter."""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_contains_series_markers_and_legend(self):
        text = ascii_plot(
            [0.5, 0.7, 0.9],
            {"EASY": [10.0, 20.0, 40.0], "LOS": [12.0, 25.0, 50.0]},
            title="waiting time vs load",
        )
        assert "waiting time vs load" in text
        assert "o = EASY" in text
        assert "x = LOS" in text
        assert "o" in text and "x" in text

    def test_axis_labels_show_ranges(self):
        text = ascii_plot([1.0, 2.0], {"s": [5.0, 9.0]})
        assert "9" in text and "5" in text
        assert "1" in text and "2" in text

    def test_empty_data(self):
        assert "(no data)" in ascii_plot([], {})
        assert "(no data)" in ascii_plot([1.0], {})

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError, match="points"):
            ascii_plot([1.0, 2.0], {"s": [1.0]})

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([1.0, 2.0], {"s": [3.0, 3.0]})
        assert "s" in text

    def test_single_point(self):
        text = ascii_plot([1.0], {"s": [2.0]}, y_label="util")
        assert "util" in text
