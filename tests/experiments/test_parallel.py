"""The parallel execution layer: determinism, ordering, fallbacks."""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments.parallel as parallel_module
from repro.experiments.cache import RunCache
from repro.experiments.parallel import (
    ENV_JOBS,
    RunSpec,
    execute_runs,
    execute_spec,
    fork_available,
    parallel_map,
    resolve_jobs,
)
from repro.experiments.sweep import cs_sweep, load_sweep, run_algorithms
from repro.experiments.config import ExperimentConfig
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

ALGORITHMS = ("EASY", "LOS", "Delayed-LOS")

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs() >= 1

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()


class TestDeterminism:
    """The hard requirement: parallel == serial, bit for bit."""

    @needs_fork
    def test_parallel_metrics_identical_to_serial(self, small_batch_workload):
        serial = run_algorithms(small_batch_workload, ALGORITHMS, jobs=1)
        parallel = run_algorithms(small_batch_workload, ALGORITHMS, jobs=3)
        assert set(serial) == set(parallel)
        for name in ALGORITHMS:
            assert serial[name] == parallel[name], name

    @needs_fork
    def test_parallel_elastic_hetero_identical(self, small_hetero_workload):
        names = ("EASY-DE", "LOS-DE", "Hybrid-LOS-E")
        serial = run_algorithms(small_hetero_workload, names, jobs=1)
        parallel = run_algorithms(small_hetero_workload, names, jobs=2)
        for name in names:
            assert serial[name] == parallel[name], name

    @needs_fork
    def test_execute_runs_preserves_spec_order(self, small_batch_workload):
        specs = [
            RunSpec(small_batch_workload, name, max_skip_count=cs)
            for cs in (3, 7)
            for name in ALGORITHMS
        ]
        results = execute_runs(specs, jobs=4)
        assert [m.algorithm for m in results] == [s.algorithm for s in specs]
        for spec, metrics in zip(specs, results):
            assert metrics == execute_spec(spec)

    @needs_fork
    def test_load_sweep_parallel_identical(self):
        config = ExperimentConfig(
            generator=GeneratorConfig(n_jobs=40, size=TwoStageSizeConfig(p_small=0.5)),
            algorithms=("EASY", "LOS"),
            loads=(0.7, 0.9),
            seed=5,
        )
        serial = load_sweep(config, jobs=1)
        parallel = load_sweep(config, jobs=2)
        assert serial.sweep_values == parallel.sweep_values
        for name in serial.series:
            assert serial.series[name] == parallel.series[name]

    @needs_fork
    def test_cs_sweep_parallel_identical(self):
        config = ExperimentConfig(
            generator=GeneratorConfig(n_jobs=40, size=TwoStageSizeConfig(p_small=0.5)),
            algorithms=("EASY", "Delayed-LOS"),
            seed=9,
        )
        serial = cs_sweep(config, cs_values=(1, 5), target_load=0.9, jobs=1)
        parallel = cs_sweep(config, cs_values=(1, 5), target_load=0.9, jobs=2)
        assert serial.sweep_values == parallel.sweep_values
        for name in serial.series:
            assert serial.series[name] == parallel.series[name]


class TestFallbacks:
    def test_serial_path_for_jobs_one(self, small_batch_workload):
        results = run_algorithms(small_batch_workload, ALGORITHMS, jobs=1)
        assert set(results) == set(ALGORITHMS)
        for name, metrics in results.items():
            assert metrics.algorithm == name
            assert metrics.n_jobs > 0

    def test_implicit_jobs_small_batch_stays_serial(self, small_batch_workload,
                                                    monkeypatch):
        # 3 runs x 60 jobs is below the implicit-parallelism threshold;
        # this must run (serially) without touching any pool machinery.
        monkeypatch.delenv(ENV_JOBS, raising=False)
        results = run_algorithms(small_batch_workload, ALGORITHMS)
        assert len(results) == 3

    def test_unknown_algorithm_raises(self, small_batch_workload):
        with pytest.raises(KeyError, match="NOPE"):
            run_algorithms(small_batch_workload, ("EASY", "NOPE"), jobs=1)

    @needs_fork
    def test_unknown_algorithm_raises_in_parallel(self, small_batch_workload):
        with pytest.raises(KeyError, match="NOPE"):
            run_algorithms(
                small_batch_workload, ("EASY", "LOS", "NOPE"), jobs=2
            )

    def test_parallel_map_falls_back_on_closures(self):
        captured = []

        def unpicklable(x):
            captured.append(x)
            return x * 2

        assert parallel_map(unpicklable, [1, 2, 3], jobs=4) == [2, 4, 6]
        assert captured == [1, 2, 3]

    def test_parallel_map_empty(self):
        assert parallel_map(abs, [], jobs=4) == []


class TestEventsProcessed:
    def test_metrics_carry_event_count(self, small_batch_workload):
        metrics = execute_spec(RunSpec(small_batch_workload, "EASY"))
        # At minimum one arrival, one cycle and one finish per job.
        assert metrics.events_processed >= 2 * metrics.n_jobs


def _double(x: int) -> int:
    return x * 2


class TestParallelMapPoolPath:
    @needs_fork
    def test_module_level_function_goes_through_pool(self):
        assert parallel_map(_double, [1, 2, 3, 4], jobs=2) == [2, 4, 6, 8]


class TestWarmPool:
    """The persistent pool: reuse, invalidation, kill switch."""

    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        # Start from a cold pool (earlier tests may have warmed it)
        # and leave no forked workers behind for later ones.
        parallel_module.shutdown_warm_pool()
        yield
        parallel_module.shutdown_warm_pool()

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv(parallel_module.ENV_WARM_POOL, "0")
        assert not parallel_module.warm_pool_enabled()
        assert parallel_module.warm_pool(2) == 0.0
        assert parallel_module._warm_pool is None

    @needs_fork
    def test_pool_is_reused_across_batches(self):
        spinup = parallel_module.warm_pool(2)
        assert spinup >= 0.0
        first = parallel_module._warm_pool
        assert first is not None
        pool, owns = parallel_module._acquire_pool(2)
        assert pool is first
        assert not owns  # warm pool stays alive after the batch

    @needs_fork
    def test_already_warm_costs_nothing(self):
        parallel_module.warm_pool(2)
        assert parallel_module.warm_pool(2) == 0.0

    @needs_fork
    def test_env_change_invalidates(self, monkeypatch):
        parallel_module.warm_pool(2)
        first = parallel_module._warm_pool
        # Workers snapshot os.environ at fork; a changed environment
        # must recycle them or REPRO_NO_MEMO etc. would be stale.
        monkeypatch.setenv("REPRO_NO_MEMO", "1")
        pool, owns = parallel_module._acquire_pool(2)
        assert pool is not first
        assert not owns

    @needs_fork
    def test_worker_count_change_invalidates(self):
        parallel_module.warm_pool(2)
        first = parallel_module._warm_pool
        pool, _ = parallel_module._acquire_pool(1)
        assert pool is not first

    @needs_fork
    def test_shutdown_is_idempotent(self):
        parallel_module.warm_pool(2)
        parallel_module.shutdown_warm_pool()
        assert parallel_module._warm_pool is None
        parallel_module.shutdown_warm_pool()  # second call is a no-op

    @needs_fork
    def test_chunked_batch_preserves_order(self):
        # More items than workers triggers chunked submission; results
        # must still align with the input order.
        landed = []
        results = parallel_module._map_resilient(
            _double, list(range(20)), 2,
            lambda index, value, retried: landed.append((index, value)),
        )
        assert results == [x * 2 for x in range(20)]
        assert sorted(landed) == [(i, i * 2) for i in range(20)]


class TestCacheIntegration:
    def test_warm_run_skips_simulation(self, small_batch_workload, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        cold = run_algorithms(
            small_batch_workload, ALGORITHMS, jobs=1, cache=cache
        )
        assert cache.stats.stores == len(ALGORITHMS)
        warm = run_algorithms(
            small_batch_workload, ALGORITHMS, jobs=1, cache=cache
        )
        assert cache.stats.hits == len(ALGORITHMS)
        for name in ALGORITHMS:
            assert cold[name] == warm[name], name
