"""Regression tests for the runner's memoization hot paths.

Two behaviours are pinned here (docs/performance.md):

- *schedule-cycle elision*: a cycle whose fingerprint already produced
  an empty, mutation-free first pass at the same instant is skipped
  entirely (``cycles_elided``).  Same-start dedicated groups are the
  canonical trigger — each group member schedules its own start timer,
  so one instant sees several cycle invocations.
- *DP result caching*: on a high-load canned workload the number of
  actual DP solves (``dp_invocations``) strictly drops versus
  ``REPRO_NO_MEMO=1`` while every scheduling outcome stays identical.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest

from repro.core.registry import make_scheduler
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.runner import simulate
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig
from tests.conftest import batch_job, dedicated_job, make_workload


@contextmanager
def _memo_disabled():
    saved = os.environ.get("REPRO_NO_MEMO")
    os.environ["REPRO_NO_MEMO"] = "1"
    try:
        yield
    finally:
        if saved is None:
            del os.environ["REPRO_NO_MEMO"]
        else:
            os.environ["REPRO_NO_MEMO"] = saved


def _dedicated_group_workload():
    """Three dedicated jobs sharing one requested start, plus batch
    filler: the identical start timers all fire at t=100, producing
    repeat cycle invocations at one instant."""
    jobs = [
        dedicated_job(i, submit=0.0, num=32, estimate=50.0, requested_start=100.0)
        for i in (1, 2, 3)
    ]
    jobs += [batch_job(10 + i, submit=0.0, num=64, estimate=200.0) for i in range(4)]
    return make_workload(jobs)


def _high_load_workload():
    config = GeneratorConfig(n_jobs=120, size=TwoStageSizeConfig(p_small=0.5))
    return calibrate_beta_arr(config, 0.9, seed=7).workload


class TestCycleElision:
    def test_elides_repeat_cycles_at_same_instant(self):
        metrics = simulate(_dedicated_group_workload(), make_scheduler("Hybrid-LOS"))
        assert metrics.telemetry.counters["cycles_elided"] > 0

    def test_elision_changes_no_outcome(self):
        workload = _dedicated_group_workload()
        memo = simulate(workload, make_scheduler("Hybrid-LOS"))
        with _memo_disabled():
            plain = simulate(workload, make_scheduler("Hybrid-LOS"))
        assert "cycles_elided" not in plain.telemetry.counters
        assert memo.records == plain.records
        assert memo.utilization == plain.utilization
        assert memo.makespan == plain.makespan

    def test_elided_plus_run_cycles_cover_baseline(self):
        """Elision skips work, never events: elided + executed cycles
        must equal the unmemoized cycle count."""
        workload = _dedicated_group_workload()
        memo = simulate(workload, make_scheduler("Hybrid-LOS"))
        with _memo_disabled():
            plain = simulate(workload, make_scheduler("Hybrid-LOS"))
        executed = memo.telemetry.counters["schedule_cycles"]
        elided = memo.telemetry.counters["cycles_elided"]
        assert executed + elided == plain.telemetry.counters["schedule_cycles"]


class TestDPCacheRegression:
    def test_dp_invocations_strictly_drop_under_memo(self):
        workload = _high_load_workload()
        memo = simulate(workload, make_scheduler("Delayed-LOS"))
        with _memo_disabled():
            plain = simulate(workload, make_scheduler("Delayed-LOS"))

        assert memo.telemetry.counters["dp_cache_hits"] > 0
        assert (
            memo.telemetry.counters["dp_invocations"]
            < plain.telemetry.counters["dp_invocations"]
        )
        # Hits + misses account for every DP entry that reached the
        # cache layer; misses are exactly the solves.
        assert (
            memo.telemetry.counters["dp_cache_misses"]
            == memo.telemetry.counters["dp_invocations"]
        )
        assert memo.records == plain.records

    @pytest.mark.parametrize("algorithm", ["LOS", "Delayed-LOS", "Hybrid-LOS-E"])
    def test_memo_on_off_metrics_identical(self, algorithm):
        config = GeneratorConfig(
            n_jobs=80,
            size=TwoStageSizeConfig(p_small=0.5),
            p_dedicated=0.2 if algorithm == "Hybrid-LOS-E" else 0.0,
            p_extend=0.2 if algorithm.endswith("-E") else 0.0,
        )
        workload = calibrate_beta_arr(config, 0.9, seed=3).workload
        memo = simulate(workload, make_scheduler(algorithm))
        with _memo_disabled():
            plain = simulate(workload, make_scheduler(algorithm))
        assert memo.records == plain.records
        assert memo.utilization == plain.utilization
        assert memo.ecc_stats == plain.ecc_stats
