"""The content-addressed run cache: keys, round-trips, robustness."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.experiments.cache import (
    ENV_CACHE,
    ENV_CACHE_DIR,
    RunCache,
    run_key,
    workload_digest,
)
from repro.experiments.parallel import RunSpec, execute_spec
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.twostage import TwoStageSizeConfig


def _workload(seed: int = 7, n_jobs: int = 30) -> Workload:
    config = GeneratorConfig(n_jobs=n_jobs, size=TwoStageSizeConfig(p_small=0.5))
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


class TestDigests:
    def test_digest_stable_across_instances(self):
        assert workload_digest(_workload()) == workload_digest(_workload())

    def test_digest_ignores_description(self):
        a, b = _workload(), _workload()
        b.description = "renamed"
        assert workload_digest(a) == workload_digest(b)

    def test_digest_changes_with_content(self):
        a, b = _workload(seed=7), _workload(seed=8)
        assert workload_digest(a) != workload_digest(b)

    def test_key_changes_with_algorithm_and_knobs(self):
        workload = _workload()
        base = run_key(workload, "EASY")
        assert run_key(workload, "LOS") != base
        assert run_key(workload, "EASY", max_skip_count=3) != base
        assert run_key(workload, "EASY", lookahead=10) != base
        assert run_key(workload, "EASY", max_eccs_per_job=1) != base
        assert run_key(workload, "EASY", version="0.0.0") != base

    def test_key_stable_for_same_inputs(self):
        assert run_key(_workload(), "EASY") == run_key(_workload(), "EASY")


class TestRoundTrip:
    def test_cache_hit_equals_cold_run(self, tmp_path):
        cache = RunCache(root=tmp_path)
        workload = _workload()
        spec = RunSpec(workload, "Delayed-LOS")
        cold = execute_spec(spec)
        key = cache.key(workload, "Delayed-LOS")
        assert cache.get(key) is None  # genuinely cold
        cache.put(key, cold)
        warm = cache.get(key)
        assert warm == cold
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_len_and_clear(self, tmp_path):
        cache = RunCache(root=tmp_path)
        metrics = execute_spec(RunSpec(_workload(), "EASY"))
        cache.put(cache.key(_workload(), "EASY"), metrics)
        cache.put(cache.key(_workload(), "LOS"), metrics)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = RunCache(root=tmp_path, enabled=False)
        metrics = execute_spec(RunSpec(_workload(), "EASY"))
        key = run_key(_workload(), "EASY")
        cache.put(key, metrics)
        assert cache.get(key) is None
        assert len(cache) == 0


class TestRobustness:
    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05"],
        ids=["text", "bad-opcode", "empty", "truncated"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = RunCache(root=tmp_path)
        workload = _workload()
        key = cache.key(workload, "EASY")
        cache.put(key, execute_spec(RunSpec(workload, "EASY")))
        path = cache._path(key)
        path.write_bytes(garbage)
        assert cache.get(key) is None

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = RunCache(root=tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "metrics"}))
        assert cache.get(key) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = RunCache(root=tmp_path)
        assert cache.get("00" + "f" * 62) is None
        assert cache.stats.misses == 1


class TestFromEnv:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE, raising=False)
        assert RunCache.from_env().enabled is False

    def test_enabled_and_redirected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE, "1")
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "alt"))
        cache = RunCache.from_env()
        assert cache.enabled is True
        assert str(cache.root) == str(tmp_path / "alt")
