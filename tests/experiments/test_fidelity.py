"""Tests for reproduction-fidelity scoring."""

from __future__ import annotations

import pytest

from repro.experiments.fidelity import FidelityScore, score_fidelity
from repro.experiments.tables import PAPER_TABLE_IV


class TestScoreFidelity:
    def test_perfect_agreement(self):
        table = {"Utilization": {"LOS": 4.0, "EASY": 2.0}}
        score = score_fidelity(table, table)
        assert score.cells == 2
        assert score.sign_agreement == 1.0
        assert score.magnitude_ratio == pytest.approx(1.0)
        assert not score.disagreements

    def test_half_magnitude(self):
        measured = {"Wait": {"LOS": 10.0, "EASY": 5.0}}
        paper = {"Wait": {"LOS": 20.0, "EASY": 10.0}}
        score = score_fidelity(measured, paper)
        assert score.magnitude_ratio == pytest.approx(0.5)

    def test_sign_disagreement_detected(self):
        measured = {"Utilization": {"LOS": -1.0, "EASY": 2.0}}
        paper = {"Utilization": {"LOS": 4.0, "EASY": 2.0}}
        score = score_fidelity(measured, paper)
        assert score.sign_matches == 1
        assert score.sign_agreement == 0.5
        assert score.disagreements == ("Utilization vs LOS",)

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError, match="no comparable cells"):
            score_fidelity({"A": {"X": 1.0}}, {"B": {"Y": 1.0}})

    def test_missing_cells_ignored(self):
        measured = {"Utilization": {"LOS": 4.0}}
        paper = {"Utilization": {"LOS": 4.0, "EASY": 2.0}, "Wait": {"LOS": 10.0}}
        score = score_fidelity(measured, paper)
        assert score.cells == 1

    def test_ratio_clamped(self):
        measured = {"Wait": {"LOS": 1000.0}}
        paper = {"Wait": {"LOS": 0.001}}
        score = score_fidelity(measured, paper)
        assert score.magnitude_ratio == pytest.approx(100.0)

    def test_geometric_mean_over_cells(self):
        measured = {"Wait": {"LOS": 40.0, "EASY": 10.0}}
        paper = {"Wait": {"LOS": 20.0, "EASY": 20.0}}  # ratios 2.0 and 0.5
        score = score_fidelity(measured, paper)
        assert score.magnitude_ratio == pytest.approx(1.0)

    def test_summary_text(self):
        measured = {"Utilization": {"LOS": -1.0, "EASY": 2.0}}
        paper = {"Utilization": {"LOS": 4.0, "EASY": 2.0}}
        text = score_fidelity(measured, paper).summary()
        assert "1/2 cells" in text
        assert "Utilization vs LOS" in text

    def test_against_real_paper_table(self):
        """Our recorded Table IV measurement agrees in sign everywhere."""
        measured = {
            "Utilization": {"LOS": 0.64, "EASY": 0.94},
            "Job waiting time": {"LOS": 20.8, "EASY": 24.28},
            "Slowdown": {"LOS": 18.84, "EASY": 22.39},
        }
        score = score_fidelity(measured, PAPER_TABLE_IV)
        assert score.cells == 6
        assert score.sign_agreement == 1.0
        assert 0.1 < score.magnitude_ratio < 10.0
