"""Same-instant event semantics of the runner.

The EventPriority ordering (FINISH < ECC < ARRIVAL < TIMER < SCHEDULE)
encodes observable scheduling behaviour; these tests pin each pairwise
interaction at a shared timestamp.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.workload.ecc import ECC, ECCKind
from tests.conftest import batch_job, dedicated_job, make_workload


class TestFinishBeforeArrival:
    def test_capacity_released_is_visible_to_same_instant_arrival(self):
        """Job 1 finishes at exactly t=100 when job 2 arrives: job 2
        must start immediately (FINISH fires before ARRIVAL/SCHEDULE)."""
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),
                batch_job(2, submit=100.0, num=320, estimate=50.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("EASY"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[2] == 100.0


class TestECCBeforeSchedule:
    def test_same_instant_reduction_visible_to_scheduler(self):
        """An RT landing exactly when the scheduler would run shortens
        the running job before any decision is made."""
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),
                batch_job(2, submit=50.0, num=320, estimate=10.0),
            ],
            eccs=[ECC(job_id=1, issue_time=50.0, kind=ECCKind.REDUCE_TIME, amount=99.0)],
        )
        metrics = simulate(workload, make_scheduler("EASY-E"))
        finishes = {r.job_id: r.finish for r in metrics.records}
        starts = {r.job_id: r.start for r in metrics.records}
        # The RT clamps job 1 to terminate at t=50; job 2 (arriving at
        # the same instant) starts right away.
        assert finishes[1] == 50.0
        assert starts[2] == 50.0


class TestTimerBeforeSchedule:
    def test_dedicated_start_exactly_at_arrival_instant(self):
        """A dedicated job whose requested start equals another job's
        arrival time is promoted in the same scheduling cycle."""
        workload = make_workload(
            [
                dedicated_job(1, submit=0.0, num=320, estimate=50.0, requested_start=100.0),
                batch_job(2, submit=100.0, num=320, estimate=10.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("Hybrid-LOS"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[1] == 100.0  # rigid start honoured exactly
        assert starts[2] == 150.0


class TestCycleDeduplication:
    def test_many_same_instant_arrivals_one_cycle(self):
        """N arrivals at one instant trigger one scheduling cycle, not
        N (scount must advance once per instant)."""
        jobs = [batch_job(i, submit=0.0, num=224, estimate=100.0) for i in range(1, 6)]
        workload = make_workload(jobs)
        runner = SimulationRunner(workload, make_scheduler("Delayed-LOS"), trace=True)
        runner.run()
        # Exactly one job fits at t=0 (224 <= 320 but 2x224 > 320).
        t0_starts = [r for r in runner.trace.of_kind("start") if r.time == 0.0]
        assert len(t0_starts) == 1
        # Head-of-queue scount advanced at most once at t=0: with C_s=7
        # the head cannot have been force-started before 7 cycles.
        starts = sorted(r.time for r in runner.trace.of_kind("start"))
        assert starts == [0.0, 100.0, 200.0, 300.0, 400.0]

    def test_finish_and_arrival_share_one_cycle(self):
        """FINISH at t releases capacity, ARRIVAL at t adds a job; both
        are served by a single cycle at t."""
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=160, estimate=100.0),
                batch_job(2, submit=100.0, num=160, estimate=10.0),
                batch_job(3, submit=100.0, num=160, estimate=10.0),
            ]
        )
        runner = SimulationRunner(workload, make_scheduler("EASY"), trace=True)
        runner.run()
        starts = {r.data["job"]: r.time for r in runner.trace.of_kind("start")}
        # At t=100: job 1's 160 procs release; jobs 2 and 3 both fit.
        assert starts[2] == 100.0 and starts[3] == 100.0


class TestUtilizationWindow:
    def test_window_spans_first_submit_to_last_finish(self):
        workload = make_workload(
            [batch_job(1, submit=50.0, num=160, estimate=100.0)]
        )
        metrics = simulate(workload, make_scheduler("EASY"))
        # Busy 160/320 over [50, 150] -> utilization 0.5 over makespan.
        assert metrics.makespan == 100.0
        assert metrics.utilization == pytest.approx(0.5)
