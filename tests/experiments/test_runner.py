"""Integration tests for the simulation runner."""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.sim.engine import SimulationError
from repro.workload.ecc import ECC, ECCKind
from tests.conftest import batch_job, dedicated_job, make_workload


class TestBasicRuns:
    def test_single_job(self):
        workload = make_workload([batch_job(1, submit=0.0, num=64, estimate=100.0)])
        metrics = simulate(workload, make_scheduler("EASY"))
        assert metrics.n_jobs == 1
        record = metrics.records[0]
        assert record.start == 0.0 and record.finish == 100.0
        assert metrics.mean_wait == 0.0
        assert metrics.makespan == 100.0
        # 64 procs for 100s on 320 procs over 100s.
        assert metrics.utilization == pytest.approx(64 / 320)

    def test_sequential_contention(self):
        # Two full-machine jobs: the second waits for the first.
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),
                batch_job(2, submit=0.0, num=320, estimate=100.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("EASY"))
        waits = {r.job_id: r.wait for r in metrics.records}
        assert waits == {1: 0.0, 2: 100.0}
        assert metrics.utilization == pytest.approx(1.0)

    def test_workload_not_mutated_across_runs(self, small_batch_workload):
        before = [(j.job_id, j.state, j.start_time) for j in small_batch_workload.jobs]
        simulate(small_batch_workload, make_scheduler("EASY"))
        after = [(j.job_id, j.state, j.start_time) for j in small_batch_workload.jobs]
        assert before == after

    def test_all_jobs_finish(self, small_batch_workload):
        for name in ("FCFS", "EASY", "LOS", "Delayed-LOS", "CONSERVATIVE"):
            metrics = simulate(small_batch_workload, make_scheduler(name))
            assert metrics.n_jobs == len(small_batch_workload)

    def test_determinism(self, small_batch_workload):
        a = simulate(small_batch_workload, make_scheduler("Delayed-LOS"))
        b = simulate(small_batch_workload, make_scheduler("Delayed-LOS"))
        assert [(r.job_id, r.start, r.finish) for r in a.records] == [
            (r.job_id, r.start, r.finish) for r in b.records
        ]


class TestKillBySemantics:
    def test_overrunning_job_killed_at_estimate(self):
        job = batch_job(1, submit=0.0, num=32, estimate=100.0, actual=500.0)
        metrics = simulate(make_workload([job]), make_scheduler("EASY"))
        record = metrics.records[0]
        assert record.finish == 100.0
        assert record.killed

    def test_early_termination_frees_capacity(self):
        # Job 1 claims 100s but actually ends at 10s; job 2 (320 procs)
        # must start at t=10, not t=100.
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0, actual=10.0),
                batch_job(2, submit=0.0, num=320, estimate=50.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("EASY"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[2] == 10.0


class TestDedicatedHandling:
    def test_batch_scheduler_rejects_dedicated(self):
        workload = make_workload([dedicated_job(1, requested_start=100.0)])
        with pytest.raises(ValueError, match="-D variant"):
            SimulationRunner(workload, make_scheduler("EASY"))

    def test_dedicated_starts_at_requested_time(self):
        workload = make_workload(
            [dedicated_job(1, submit=0.0, num=64, estimate=100.0, requested_start=500.0)]
        )
        for name in ("Hybrid-LOS", "EASY-D", "LOS-D"):
            metrics = simulate(workload, make_scheduler(name))
            record = metrics.records[0]
            assert record.start == 500.0, name
            assert record.dedicated_delay == 0.0

    def test_batch_packs_before_dedicated_start(self):
        workload = make_workload(
            [
                dedicated_job(1, submit=0.0, num=320, estimate=100.0, requested_start=1000.0),
                batch_job(2, submit=0.0, num=320, estimate=900.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("Hybrid-LOS"))
        starts = {r.job_id: r.start for r in metrics.records}
        # The batch job ends at 900 < 1000: it may run first.
        assert starts[2] == 0.0
        assert starts[1] == 1000.0

    def test_batch_overrunning_dedicated_start_is_held(self):
        workload = make_workload(
            [
                dedicated_job(1, submit=0.0, num=320, estimate=100.0, requested_start=500.0),
                batch_job(2, submit=0.0, num=320, estimate=900.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("Hybrid-LOS"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[1] == 500.0  # dedicated honoured on time
        assert starts[2] == 600.0  # batch waits for it to finish

    def test_batch_held_to_protect_future_dedicated_start(self):
        """A batch job that would overrun the dedicated reservation is
        held even though the machine is idle."""
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=300.0),
                dedicated_job(2, submit=0.0, num=320, estimate=50.0, requested_start=100.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("Hybrid-LOS"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[2] == 100.0  # dedicated exactly on time
        assert starts[1] == 150.0  # batch job deferred behind it

    def test_dedicated_delayed_when_capacity_insufficient(self):
        """The batch job is already running when the dedicated job
        arrives: its delay is unavoidable (§III-B)."""
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=300.0),
                dedicated_job(2, submit=50.0, num=320, estimate=50.0, requested_start=100.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("Hybrid-LOS"))
        record = next(r for r in metrics.records if r.job_id == 2)
        assert record.start == 300.0  # unavoidable delay
        assert record.dedicated_delay == 200.0


class TestElasticHandling:
    def _workload_with_ecc(self, kind, amount, issue):
        job = batch_job(1, submit=0.0, num=320, estimate=100.0)
        follower = batch_job(2, submit=0.0, num=320, estimate=50.0)
        ecc = ECC(job_id=1, issue_time=issue, kind=kind, amount=amount)
        return make_workload([job, follower], eccs=[ecc])

    def test_et_extends_running_job(self):
        workload = self._workload_with_ecc(ECCKind.EXTEND_TIME, 50.0, issue=20.0)
        metrics = simulate(workload, make_scheduler("EASY-E"))
        finishes = {r.job_id: r.finish for r in metrics.records}
        assert finishes[1] == 150.0
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[2] == 150.0  # follower displaced by the extension

    def test_rt_shrinks_running_job(self):
        workload = self._workload_with_ecc(ECCKind.REDUCE_TIME, 50.0, issue=20.0)
        metrics = simulate(workload, make_scheduler("EASY-E"))
        finishes = {r.job_id: r.finish for r in metrics.records}
        assert finishes[1] == 50.0
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[2] == 50.0  # follower benefits immediately

    def test_rt_below_elapsed_terminates_now(self):
        workload = self._workload_with_ecc(ECCKind.REDUCE_TIME, 99.0, issue=60.0)
        metrics = simulate(workload, make_scheduler("EASY-E"))
        finishes = {r.job_id: r.finish for r in metrics.records}
        assert finishes[1] == 60.0

    def test_non_elastic_scheduler_drops_eccs(self):
        workload = self._workload_with_ecc(ECCKind.EXTEND_TIME, 50.0, issue=20.0)
        metrics = simulate(workload, make_scheduler("EASY"))
        finishes = {r.job_id: r.finish for r in metrics.records}
        assert finishes[1] == 100.0  # unchanged
        assert metrics.ecc_stats == {"dropped-not-elastic": 1}

    def test_ecc_on_queued_job(self):
        # Extend the queued follower before it starts.
        job = batch_job(1, submit=0.0, num=320, estimate=100.0)
        follower = batch_job(2, submit=0.0, num=320, estimate=50.0)
        ecc = ECC(job_id=2, issue_time=30.0, kind=ECCKind.EXTEND_TIME, amount=25.0)
        workload = make_workload([job, follower], eccs=[ecc])
        metrics = simulate(workload, make_scheduler("EASY-E"))
        record = next(r for r in metrics.records if r.job_id == 2)
        assert record.runtime == 75.0

    def test_max_eccs_per_job_cap(self):
        job = batch_job(1, submit=0.0, num=320, estimate=100.0)
        eccs = [
            ECC(job_id=1, issue_time=10.0, kind=ECCKind.EXTEND_TIME, amount=20.0),
            ECC(job_id=1, issue_time=20.0, kind=ECCKind.EXTEND_TIME, amount=20.0),
        ]
        workload = make_workload([job], eccs=eccs)
        metrics = simulate(workload, make_scheduler("EASY-E"), max_eccs_per_job=1)
        assert metrics.records[0].finish == 120.0  # only one applied
        assert metrics.ecc_stats.get("rejected-cap") == 1


class TestTraceInvariants:
    def test_trace_records_full_lifecycle(self, small_batch_workload):
        runner = SimulationRunner(small_batch_workload, make_scheduler("Delayed-LOS"), trace=True)
        runner.run()
        trace = runner.trace
        assert trace.is_time_ordered()
        n = len(small_batch_workload)
        assert len(trace.of_kind("arrive")) == n
        assert len(trace.of_kind("start")) == n
        assert len(trace.of_kind("finish")) == n

    def test_no_start_before_arrival(self, small_batch_workload):
        runner = SimulationRunner(small_batch_workload, make_scheduler("LOS"), trace=True)
        runner.run()
        arrivals = {r.data["job"]: r.time for r in runner.trace.of_kind("arrive")}
        for start in runner.trace.of_kind("start"):
            assert start.time >= arrivals[start.data["job"]]

    def test_capacity_never_exceeded(self, small_batch_workload):
        runner = SimulationRunner(small_batch_workload, make_scheduler("Delayed-LOS"), trace=True)
        runner.run()
        level = 0
        for record in runner.trace.of_kind("start", "finish"):
            level += record.data["num"] if record.kind == "start" else -record.data["num"]
            assert 0 <= level <= small_batch_workload.machine_size


class TestErrorPaths:
    def test_duplicate_ids_rejected(self):
        workload = make_workload([batch_job(1), ])
        workload.jobs.append(batch_job(1, submit=10.0))
        with pytest.raises(ValueError, match="duplicate"):
            SimulationRunner(workload, make_scheduler("EASY"))

    def test_oversized_job_rejected_at_init(self):
        workload = make_workload([batch_job(1, num=640)], machine_size=320)
        with pytest.raises(Exception, match="exceeds machine size"):
            SimulationRunner(workload, make_scheduler("EASY"))

    def test_run_until_leaves_pending_without_error(self, small_batch_workload):
        runner = SimulationRunner(small_batch_workload, make_scheduler("EASY"))
        metrics = runner.run(until=1.0)
        assert metrics.n_jobs <= len(small_batch_workload)


class TestECCValidation:
    def test_ecc_before_submission_rejected(self):
        job = batch_job(1, submit=100.0, num=320, estimate=50.0)
        ecc = ECC(job_id=1, issue_time=10.0, kind=ECCKind.EXTEND_TIME, amount=5.0)
        workload = make_workload([job], eccs=[ecc])
        with pytest.raises(ValueError, match="before the job's submission"):
            SimulationRunner(workload, make_scheduler("EASY-E"))

    def test_ecc_for_unknown_job_rejected(self):
        job = batch_job(1, submit=0.0, num=320, estimate=50.0)
        ecc = ECC(job_id=99, issue_time=10.0, kind=ECCKind.EXTEND_TIME, amount=5.0)
        workload = make_workload([job], eccs=[ecc])
        with pytest.raises(ValueError, match="unknown job 99"):
            SimulationRunner(workload, make_scheduler("EASY-E"))
