"""Tests for the Tables IV-VII improvement derivation."""

from __future__ import annotations

import pytest

from repro.experiments.sweep import SweepResult
from repro.experiments.tables import (
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    PAPER_TABLE_VII,
    TABLE_METRICS,
    improvement_table,
)
from repro.metrics.records import RunMetrics


def run(algorithm, utilization, wait, runtime=100.0):
    """Synthetic RunMetrics with pinned aggregates."""
    from repro.metrics.records import JobRecord
    from repro.workload.job import JobKind

    record = JobRecord(
        job_id=1, kind=JobKind.BATCH, num=32, submit=0.0, start=wait, finish=wait + runtime
    )
    return RunMetrics(
        algorithm=algorithm,
        machine_size=320,
        records=[record],
        utilization=utilization,
        makespan=wait + runtime,
    )


@pytest.fixture
def sweep():
    result = SweepResult(sweep_label="Load", sweep_values=[0.5, 0.9])
    result.series = {
        "Delayed-LOS": [run("Delayed-LOS", 0.80, 100.0), run("Delayed-LOS", 0.90, 200.0)],
        "LOS": [run("LOS", 0.78, 150.0), run("LOS", 0.86, 280.0)],
        "EASY": [run("EASY", 0.80, 120.0), run("EASY", 0.88, 240.0)],
    }
    return result


class TestImprovementTable:
    def test_layout_matches_paper_tables(self, sweep):
        table = improvement_table(sweep, "Delayed-LOS", ["LOS", "EASY"])
        assert set(table) == {"Utilization", "Job waiting time", "Slowdown"}
        assert set(table["Utilization"]) == {"LOS", "EASY"}

    def test_max_over_load_points(self, sweep):
        table = improvement_table(sweep, "Delayed-LOS", ["LOS"])
        # Utilization: max(0.80/0.78-1, 0.90/0.86-1) = 4.65%.
        assert table["Utilization"]["LOS"] == pytest.approx(4.65, abs=0.01)
        # Waiting time: max((150-100)/150, (280-200)/280) = 33.33%.
        assert table["Job waiting time"]["LOS"] == pytest.approx(33.33, abs=0.01)

    def test_slowdown_uses_paper_definition(self, sweep):
        table = improvement_table(sweep, "Delayed-LOS", ["EASY"])
        # slowdowns: ours (100+100)/100=2, (200+100)/100=3;
        # EASY: 2.2 and 3.4 -> improvements 9.09% and 11.76%.
        assert table["Slowdown"]["EASY"] == pytest.approx(11.76, abs=0.01)

    def test_metric_direction_flags(self):
        assert TABLE_METRICS["utilization"][1] is True
        assert TABLE_METRICS["mean_wait"][1] is False


class TestPaperConstants:
    @pytest.mark.parametrize(
        "table,baselines",
        [
            (PAPER_TABLE_IV, {"LOS", "EASY"}),
            (PAPER_TABLE_V, {"LOS-D", "EASY-D"}),
            (PAPER_TABLE_VI, {"LOS-E", "EASY-E"}),
            (PAPER_TABLE_VII, {"LOS-DE", "EASY-DE"}),
        ],
    )
    def test_paper_tables_complete(self, table, baselines):
        assert set(table) == {"Utilization", "Job waiting time", "Slowdown"}
        for row in table.values():
            assert set(row) == baselines
            assert all(isinstance(v, float) for v in row.values())

    def test_headline_numbers(self):
        """The abstract's headline improvements."""
        assert PAPER_TABLE_IV["Utilization"]["LOS"] == 4.1
        assert PAPER_TABLE_IV["Job waiting time"]["LOS"] == 31.88
        assert PAPER_TABLE_V["Utilization"]["LOS-D"] == 4.55
        assert PAPER_TABLE_V["Job waiting time"]["LOS-D"] == 25.31
