"""Smoke tests for the figure experiment definitions (reduced scale).

The full paper-scale runs live in ``benchmarks/``; here we verify the
experiment *wiring* — correct algorithms, workload knobs and result
shapes — at a scale CI can afford.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures


class TestTunedCs:
    def test_rule_matches_figures_5_and_6(self):
        assert figures.tuned_cs(0.5) == 7  # Figure 5 knee
        assert figures.tuned_cs(0.2) == 7
        assert figures.tuned_cs(0.8) == 3  # Figure 6: insensitive above 3


class TestFigure1:
    def test_compares_easy_and_los_on_sdsc(self):
        result = figures.figure1(n_jobs=40, scale_factors=(1.5, 1.0), seed=1)
        assert set(result.series) == {"EASY", "LOS"}
        assert len(result.sweep_values) == 2
        # Load varied via arrival scaling: increasing factor order here
        # gives increasing load.
        assert result.sweep_values[0] < result.sweep_values[1]


class TestCsFigures:
    def test_figure5_shape(self):
        result = figures.figure5(n_jobs=40, cs_values=(1, 4), load=0.9, seed=5)
        assert set(result.series) == set(figures.BATCH_ALGORITHMS)
        assert result.sweep_values == [1.0, 4.0]

    def test_figure6_uses_small_job_mix(self):
        result = figures.figure6(n_jobs=40, cs_values=(1,), load=0.9, seed=6)
        assert set(result.series) == set(figures.BATCH_ALGORITHMS)


class TestLoadFigures:
    def test_figure7_batch_algorithms(self):
        result = figures.figure7(n_jobs=40, loads=(0.7,), seed=7)
        assert set(result.series) == {"EASY", "LOS", "Delayed-LOS"}

    def test_figure8_two_mixes(self):
        results = figures.figure8(n_jobs=40, loads=(0.7,), seed=8)
        assert set(results) == {"P_S=0.5", "P_S=0.8"}

    def test_figure9_heterogeneous(self):
        result = figures.figure9(n_jobs=40, loads=(0.7,), seed=9)
        assert set(result.series) == {"EASY-D", "LOS-D", "Hybrid-LOS"}
        # Heterogeneous workloads actually contain dedicated jobs.
        run = result.series["Hybrid-LOS"][0]
        assert run.dedicated_records()

    def test_figure10_mostly_dedicated(self):
        result = figures.figure10(n_jobs=40, loads=(0.7,), seed=10)
        run = result.series["Hybrid-LOS"][0]
        dedicated_fraction = len(run.dedicated_records()) / run.n_jobs
        assert dedicated_fraction > 0.6  # P_D = 0.9

    def test_figure11_elastic_variants(self):
        results = figures.figure11(n_jobs=40, loads=(0.7,), seed=11)
        assert set(results) == {"batch", "heterogeneous"}
        assert set(results["batch"].series) == set(figures.ELASTIC_BATCH_ALGORITHMS)
        assert set(results["heterogeneous"].series) == set(
            figures.ELASTIC_HETERO_ALGORITHMS
        )
        # ECCs were actually processed.
        run = results["batch"].series["Delayed-LOS-E"][0]
        assert sum(run.ecc_stats.values()) > 0
