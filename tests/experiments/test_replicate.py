"""Tests for multi-seed replication."""

from __future__ import annotations

import pytest

from repro.experiments.replicate import (
    AggregatedPoint,
    format_replicated,
    replicate_sweep,
)
from repro.experiments.sweep import SweepResult
from repro.metrics.records import JobRecord, RunMetrics
from repro.workload.job import JobKind


def fake_run(algorithm, wait, utilization=0.8):
    record = JobRecord(
        job_id=1, kind=JobKind.BATCH, num=32, submit=0.0, start=wait, finish=wait + 100.0
    )
    return RunMetrics(
        algorithm=algorithm,
        machine_size=320,
        records=[record],
        utilization=utilization,
        makespan=wait + 100.0,
    )


def fake_sweep(seed):
    """Deterministic sweep whose waits depend on the seed."""
    sweep = SweepResult(sweep_label="Load", sweep_values=[0.5, 0.9])
    sweep.series = {
        "A": [fake_run("A", 100.0 + seed), fake_run("A", 200.0 + seed)],
        "B": [fake_run("B", 150.0 + seed), fake_run("B", 260.0 + seed)],
    }
    return sweep


class TestReplicateSweep:
    def test_aggregation_mean_and_ci(self):
        replicated = replicate_sweep(fake_sweep, seeds=[0, 10, 20])
        points = replicated.aggregate("A", "mean_wait")
        assert [p.mean for p in points] == [110.0, 210.0]
        assert all(p.n == 3 for p in points)
        assert all(p.half_width > 0 for p in points)
        assert points[0].low < 110.0 < points[0].high

    def test_single_seed_zero_width(self):
        replicated = replicate_sweep(fake_sweep, seeds=[5])
        point = replicated.aggregate("A", "mean_wait")[0]
        assert point.half_width == 0.0 and point.n == 1

    def test_sweep_values_averaged(self):
        replicated = replicate_sweep(fake_sweep, seeds=[1, 2])
        assert replicated.sweep_values == [0.5, 0.9]

    def test_algorithms_intersection(self):
        replicated = replicate_sweep(fake_sweep, seeds=[0, 1])
        assert replicated.algorithms() == ["A", "B"]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            replicate_sweep(fake_sweep, seeds=[])

    def test_mismatched_shapes_rejected(self):
        def bad(seed):
            sweep = fake_sweep(seed)
            if seed:
                sweep.sweep_values = [0.5]
                sweep.series = {k: v[:1] for k, v in sweep.series.items()}
            return sweep

        with pytest.raises(ValueError, match="mismatched"):
            replicate_sweep(bad, seeds=[0, 1])

    def test_invalid_confidence_rejected(self):
        replicated = replicate_sweep(fake_sweep, seeds=[0])
        with pytest.raises(ValueError, match="confidence"):
            replicated.aggregate("A", "mean_wait", confidence=0.42)


class TestSignificance:
    def test_significant_gap_detected(self):
        # A is always 50-60s faster than B with tiny spread -> significant.
        replicated = replicate_sweep(fake_sweep, seeds=[0, 1, 2, 3])
        assert replicated.significant_gap("A", "B", "mean_wait")
        assert not replicated.significant_gap("B", "A", "mean_wait")


class TestFormatting:
    def test_table_contains_ci_markers(self):
        replicated = replicate_sweep(fake_sweep, seeds=[0, 10])
        text = format_replicated(replicated, "mean_wait")
        assert "±" in text
        assert "95% CI over 2 seeds" in text
        assert "A" in text and "B" in text


class TestRealSweepIntegration:
    def test_replicated_real_experiment(self):
        """End-to-end: replicate a tiny real load sweep over 2 seeds."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.sweep import load_sweep
        from repro.workload.generator import GeneratorConfig

        def run_one(seed):
            config = ExperimentConfig(
                generator=GeneratorConfig(n_jobs=40),
                algorithms=("EASY", "Delayed-LOS"),
                loads=(0.7,),
                seed=seed,
            )
            return load_sweep(config)

        replicated = replicate_sweep(run_one, seeds=[1, 2])
        points = replicated.aggregate("EASY", "mean_wait")
        assert len(points) == 1
        assert points[0].n == 2
        assert points[0].mean >= 0.0
