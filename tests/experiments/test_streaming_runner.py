"""Streaming simulation == eager simulation, metric for metric.

The streaming arrival feed changes *when jobs enter the event heap*,
never what the scheduler sees: with the same ``(config, seed)`` a
streamed run must produce a :class:`RunMetrics` equal to the eager
run's — records, ECC stats, queue summary, offered load, everything
dataclass equality covers.  ``retain_records=False`` drops the
per-job list but must leave every O(1) aggregate (online summary,
utilization, makespan, offered load) untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import simulate
from repro.faults.model import FaultConfig
from repro.metrics.online import cross_validate_online
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.streaming import SyntheticWorkloadStream

BASE = GeneratorConfig(
    n_jobs=150, p_extend=0.25, p_reduce=0.15, p_cancel=0.05
)
HETERO = GeneratorConfig(
    n_jobs=150, p_dedicated=0.2, p_extend=0.25, p_reduce=0.15, p_cancel=0.05
)
SEED = 42


def _config_for(algorithm: str) -> GeneratorConfig:
    return HETERO if make_scheduler(algorithm).handles_dedicated else BASE


@pytest.mark.parametrize(
    "algorithm", ["EASY", "LOS", "Delayed-LOS", "LOS-E", "Hybrid-LOS-E"]
)
def test_streaming_equals_eager(algorithm):
    config = _config_for(algorithm)
    eager_workload = CWFWorkloadGenerator(config).generate(
        np.random.default_rng(SEED)
    )
    eager = simulate(eager_workload, make_scheduler(algorithm))

    stream = SyntheticWorkloadStream(config, seed=SEED).stream()
    streamed = simulate(stream, make_scheduler(algorithm), online=True)

    assert streamed == eager  # records, ecc_stats, queue, offered_load, ...
    assert not cross_validate_online(streamed.online, streamed)


def test_retain_records_false_keeps_aggregates():
    config = _config_for("EASY")
    eager = simulate(
        CWFWorkloadGenerator(config).generate(np.random.default_rng(SEED)),
        make_scheduler("EASY"),
    )
    with_records = simulate(
        SyntheticWorkloadStream(config, seed=SEED).stream(),
        make_scheduler("EASY"),
        online=True,
    )
    dropped = simulate(
        SyntheticWorkloadStream(config, seed=SEED).stream(),
        make_scheduler("EASY"),
        online=True,
        retain_records=False,
    )
    assert dropped.records == []
    assert dropped.online == with_records.online
    assert dropped.utilization == eager.utilization
    assert dropped.makespan == eager.makespan
    assert dropped.offered_load == eager.offered_load


def test_retain_records_false_requires_online():
    stream = SyntheticWorkloadStream(BASE, seed=SEED).stream()
    with pytest.raises(ValueError):
        simulate(stream, make_scheduler("EASY"), retain_records=False)


def test_streaming_run_with_faults_completes_and_cross_validates():
    """Fault injection works against a streaming feed.

    Streamed arrivals may interleave differently with same-instant
    fault requeues than eager ones (documented runner caveat), so this
    does not assert equality with an eager run — it asserts the run
    completes, accounts every job, and the online aggregate still
    matches the exact per-record statistics to 1e-9.
    """
    faults = FaultConfig(mtbf=40000.0, mttr=2000.0, seed=5)
    stream = SyntheticWorkloadStream(BASE, seed=SEED).stream()
    metrics = simulate(
        stream, make_scheduler("EASY"), faults=faults, online=True
    )
    accounted = (
        metrics.n_jobs + metrics.n_cancelled + metrics.failed_jobs
    )
    assert accounted == BASE.n_jobs
    assert not cross_validate_online(metrics.online, metrics)


def test_job_stream_is_single_use():
    stream = SyntheticWorkloadStream(BASE, seed=SEED).stream()
    simulate(stream, make_scheduler("EASY"), online=True)
    # A drained stream admits nothing; the runner rejects it rather
    # than silently simulating zero jobs.
    with pytest.raises(Exception):
        simulate(stream, make_scheduler("EASY"), online=True)
