"""Tests for job cancellation (SWF status-5 semantics)."""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.workload.job import Job, JobKind, JobState
from repro.workload.swf import SWFRecord
from tests.conftest import batch_job, make_workload


def cancellable(job_id, submit=0.0, num=320, estimate=100.0, cancel_at=None, **kwargs):
    return Job(
        job_id=job_id, submit=submit, num=num, estimate=estimate,
        cancel_at=cancel_at, **kwargs,
    )


class TestQueuedCancellation:
    def test_queued_job_withdrawn(self):
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),  # blocks machine
                cancellable(2, submit=0.0, cancel_at=30.0, estimate=50.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("EASY"))
        assert metrics.n_jobs == 1
        assert metrics.n_cancelled == 1
        record = metrics.cancelled_records[0]
        assert record.job_id == 2
        assert record.cancelled_at == 30.0
        assert record.queued_for == 30.0

    def test_cancellation_frees_queue_for_later_jobs(self):
        """A cancelled 320-proc job must not block jobs behind it."""
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),
                cancellable(2, submit=10.0, num=320, estimate=1000.0, cancel_at=50.0),
                batch_job(3, submit=20.0, num=320, estimate=10.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("FCFS"))
        starts = {r.job_id: r.start for r in metrics.records}
        # FCFS: without the cancellation, job 3 would wait for job 2's
        # 1000s run; with it, job 3 starts right after job 1.
        assert starts[3] == 100.0

    def test_dedicated_job_cancellation(self):
        job = Job(
            job_id=1, submit=0.0, num=64, estimate=100.0,
            kind=JobKind.DEDICATED, requested_start=500.0, cancel_at=200.0,
        )
        metrics = simulate(make_workload([job]), make_scheduler("Hybrid-LOS"))
        assert metrics.n_jobs == 0
        assert metrics.n_cancelled == 1

    def test_trace_records_cancellation(self):
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),
                cancellable(2, submit=0.0, cancel_at=30.0),
            ]
        )
        runner = SimulationRunner(workload, make_scheduler("EASY"), trace=True)
        runner.run()
        cancels = runner.trace.of_kind("cancel")
        assert len(cancels) == 1 and cancels[0].data["was"] == "queued"


class TestRunningCancellation:
    def test_running_job_terminated_at_cancel_instant(self):
        workload = make_workload([cancellable(1, cancel_at=40.0, estimate=100.0)])
        metrics = simulate(workload, make_scheduler("EASY"))
        record = metrics.records[0]
        assert record.finish == 40.0
        assert record.cancelled
        assert metrics.n_cancelled == 0  # it ran; not a queue withdrawal

    def test_capacity_released_immediately(self):
        workload = make_workload(
            [
                cancellable(1, cancel_at=40.0, estimate=1000.0),
                batch_job(2, submit=0.0, num=320, estimate=10.0),
            ]
        )
        metrics = simulate(workload, make_scheduler("EASY"))
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[2] == 40.0

    def test_cancel_after_natural_finish_is_noop(self):
        workload = make_workload([cancellable(1, cancel_at=500.0, estimate=100.0)])
        metrics = simulate(workload, make_scheduler("EASY"))
        record = metrics.records[0]
        assert record.finish == 100.0
        assert not record.cancelled


class TestValidationAndState:
    def test_cancel_before_submit_rejected(self):
        with pytest.raises(ValueError, match="precedes submit"):
            Job(job_id=1, submit=100.0, num=32, estimate=10.0, cancel_at=50.0)

    def test_copy_preserves_cancel_at(self):
        job = cancellable(1, cancel_at=77.0)
        assert job.copy_for_run().cancel_at == 77.0

    def test_cancelled_state_reached(self):
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=320, estimate=100.0),
                cancellable(2, submit=0.0, cancel_at=30.0),
            ]
        )
        runner = SimulationRunner(workload, make_scheduler("EASY"))
        runner.run()
        cancelled = next(j for j in runner.jobs if j.job_id == 2)
        assert cancelled.state is JobState.CANCELLED


class TestSWFStatus5:
    def test_cancelled_in_queue_maps_to_cancel_at(self):
        # status 5, never ran: wait 300s then withdrawn.
        record = SWFRecord(
            job_id=9, submit=1000.0, wait=300.0, run_time=-1,
            requested_procs=64, requested_time=600.0, status=5,
        )
        job = record.to_job()
        assert job.cancel_at == 1300.0
        assert job.estimate == 600.0

    def test_cancelled_without_estimate_gets_placeholder(self):
        record = SWFRecord(
            job_id=9, submit=0.0, wait=50.0, run_time=-1, requested_procs=8, status=5
        )
        job = record.to_job()
        assert job.cancel_at == 50.0
        assert job.estimate == 1.0

    def test_cancelled_while_running_keeps_runtime(self):
        # status 5 but it ran 200s: simulate as a normal 200s job.
        record = SWFRecord(
            job_id=9, submit=0.0, wait=10.0, run_time=200.0,
            requested_procs=8, requested_time=600.0, status=5,
        )
        job = record.to_job()
        assert job.cancel_at is None
        assert job.actual == 200.0

    def test_completed_job_unaffected(self):
        record = SWFRecord(
            job_id=1, submit=0.0, run_time=100.0, requested_procs=8,
            requested_time=120.0, status=1,
        )
        assert record.to_job().cancel_at is None

    def test_status5_trace_simulates_end_to_end(self):
        lines = [
            "1 0 0 100 320 -1 -1 320 100 -1 1",
            "2 10 40 -1 320 -1 -1 320 500 -1 5",  # cancelled at t=50
            "3 20 -1 30 320 -1 -1 320 30 -1 1",
        ]
        jobs = [SWFRecord.parse(line).to_job() for line in lines]
        metrics = simulate(make_workload(jobs), make_scheduler("EASY"))
        assert metrics.n_jobs == 2
        assert metrics.n_cancelled == 1
        starts = {r.job_id: r.start for r in metrics.records}
        assert starts[3] == 100.0  # not blocked by the cancelled job


class TestECCOnDedicatedQueue:
    """ECCs apply to dedicated jobs waiting in W^d too (§III-C: 'ECCs
    can be issued for both batch and dedicated jobs')."""

    def test_et_on_queued_dedicated_job(self):
        from repro.workload.ecc import ECC, ECCKind

        job = Job(
            job_id=1, submit=0.0, num=320, estimate=100.0,
            kind=JobKind.DEDICATED, requested_start=500.0,
        )
        ecc = ECC(job_id=1, issue_time=100.0, kind=ECCKind.EXTEND_TIME, amount=50.0)
        workload = make_workload([job], eccs=[ecc])
        metrics = simulate(workload, make_scheduler("Hybrid-LOS-E"))
        record = metrics.records[0]
        assert record.start == 500.0
        assert record.runtime == 150.0  # extended while queued in W^d

    def test_rt_on_running_dedicated_job(self):
        from repro.workload.ecc import ECC, ECCKind

        job = Job(
            job_id=1, submit=0.0, num=320, estimate=100.0,
            kind=JobKind.DEDICATED, requested_start=50.0,
        )
        ecc = ECC(job_id=1, issue_time=80.0, kind=ECCKind.REDUCE_TIME, amount=60.0)
        workload = make_workload([job], eccs=[ecc])
        metrics = simulate(workload, make_scheduler("Hybrid-LOS-E"))
        record = metrics.records[0]
        assert record.start == 50.0
        assert record.finish == 90.0  # 50+100-60
