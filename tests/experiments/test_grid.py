"""Tests for parameter-grid studies."""

from __future__ import annotations

import csv
import io

import pytest

from repro.experiments.grid import GridResult, GridSpec, run_grid


@pytest.fixture(scope="module")
def tiny_grid():
    spec = GridSpec(
        p_small=(0.2, 0.8),
        p_dedicated=(0.0,),
        loads=(0.7,),
        cs_values=(7,),
        algorithms=("EASY", "Delayed-LOS"),
        n_jobs=40,
        seed=77,
    )
    return spec, run_grid(spec)


class TestGridSpec:
    def test_cells_cartesian_product(self):
        spec = GridSpec(p_small=(0.2, 0.5), p_dedicated=(0.0, 0.5), loads=(0.7,), cs_values=(3, 7))
        assert len(spec.cells()) == 2 * 2 * 1 * 2


class TestRunGrid:
    def test_row_count_and_fields(self, tiny_grid):
        spec, result = tiny_grid
        assert len(result.rows) == len(spec.cells()) * len(spec.algorithms)
        for row in result.rows:
            assert set(row) == set(GridResult.FIELDS)
            assert row["n_jobs"] == spec.n_jobs
            assert 0.0 <= row["utilization"] <= 1.0

    def test_achieved_load_close_to_target(self, tiny_grid):
        _, result = tiny_grid
        for row in result.rows:
            assert row["achieved_load"] == pytest.approx(row["target_load"], abs=0.05)

    def test_best_algorithm_lookup(self, tiny_grid):
        _, result = tiny_grid
        best = result.best_algorithm(0.2, 0.0, 0.7)
        assert best in ("EASY", "Delayed-LOS")

    def test_best_algorithm_missing_cell(self, tiny_grid):
        _, result = tiny_grid
        with pytest.raises(KeyError, match="no grid cell"):
            result.best_algorithm(0.99, 0.0, 0.7)

    def test_determinism(self):
        spec = GridSpec(
            p_small=(0.5,), loads=(0.7,), algorithms=("EASY",), n_jobs=30, seed=5
        )
        a = run_grid(spec)
        b = run_grid(spec)
        assert a.rows == b.rows


class TestCSV:
    def test_csv_roundtrip(self, tiny_grid):
        _, result = tiny_grid
        buffer = io.StringIO()
        result.to_csv(buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == len(result.rows)
        assert set(rows[0]) == set(GridResult.FIELDS)

    def test_csv_to_file(self, tiny_grid, tmp_path):
        _, result = tiny_grid
        path = tmp_path / "grid.csv"
        result.to_csv(path)
        assert path.read_text().startswith("p_small,")
