"""Hardened parallel execution: worker crashes, timeouts, stale cache.

The crash/timeout helpers are module-level (picklable) and misbehave
only in *forked children* — the pid differs from the parent's — so the
serial retry in the parent succeeds deterministically.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.experiments.cache import RunCache, run_key
from repro.experiments.parallel import (
    ENV_RUN_TIMEOUT,
    fork_available,
    parallel_map,
    run_timeout,
)
from repro.metrics.records import RunMetrics

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

_PARENT_PID = os.getpid()


def _crash_in_child(x: int) -> int:
    if os.getpid() != _PARENT_PID and x == 2:
        os._exit(1)  # simulates an OOM-killed / segfaulted worker
    return x * 10


def _hang_in_child(x: int) -> int:
    if os.getpid() != _PARENT_PID:
        time.sleep(2.0)
    return x + 1


@needs_fork
class TestWorkerCrash:
    def test_crashed_worker_retries_serially(self) -> None:
        with pytest.warns(RuntimeWarning, match="retrying"):
            results = parallel_map(
                _crash_in_child, [1, 2, 3], jobs=2, work_hint=10**6
            )
        assert results == [10, 20, 30]

    def test_timeout_retries_serially(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        monkeypatch.setenv(ENV_RUN_TIMEOUT, "0.2")
        with pytest.warns(RuntimeWarning, match="retrying"):
            results = parallel_map(_hang_in_child, [1, 2], jobs=2, work_hint=10**6)
        assert results == [2, 3]

    def test_fn_exceptions_still_propagate(self) -> None:
        # A deterministic failure would fail the serial retry too, so
        # it must propagate instead of warn-and-retry.
        with pytest.raises(ZeroDivisionError):
            parallel_map(_div, [1, 0], jobs=2, work_hint=10**6)


def _div(x: int) -> float:
    return 1 / x


class TestRunTimeoutEnv:
    def test_unset_means_no_bound(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.delenv(ENV_RUN_TIMEOUT, raising=False)
        assert run_timeout() is None

    def test_non_positive_means_no_bound(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        monkeypatch.setenv(ENV_RUN_TIMEOUT, "0")
        assert run_timeout() is None

    def test_invalid_value_raises(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv(ENV_RUN_TIMEOUT, "soon")
        with pytest.raises(ValueError, match=ENV_RUN_TIMEOUT):
            run_timeout()


class TestCacheSchemaValidation:
    def _metrics(self) -> RunMetrics:
        return RunMetrics(
            algorithm="EASY",
            machine_size=320,
            records=[],
            utilization=0.5,
            makespan=100.0,
            offered_load=0.9,
        )

    def test_entry_missing_new_fields_is_a_miss(self, tmp_path) -> None:
        cache = RunCache(root=tmp_path)
        key = "ab" + "0" * 62
        metrics = self._metrics()
        cache.put(key, metrics)
        assert cache.get(key) is not None

        # Rewrite the entry as an older-schema pickle: same class, but
        # the instance dict lacks a field added since.
        stale = RunMetrics.__new__(RunMetrics)
        stale.__dict__.update(metrics.__dict__)
        del stale.__dict__["lost_work"]
        with open(cache._path(key), "wb") as fh:
            pickle.dump(stale, fh)
        misses = cache.stats.misses
        assert cache.get(key) is None
        assert cache.stats.misses == misses + 1

    def test_non_metrics_entry_is_a_miss(self, tmp_path) -> None:
        cache = RunCache(root=tmp_path)
        key = "cd" + "0" * 62
        cache._path(key).parent.mkdir(parents=True)
        with open(cache._path(key), "wb") as fh:
            pickle.dump({"not": "metrics"}, fh)
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path) -> None:
        cache = RunCache(root=tmp_path)
        key = "ef" + "0" * 62
        cache._path(key).parent.mkdir(parents=True)
        cache._path(key).write_bytes(b"\x80garbage")
        assert cache.get(key) is None

    def test_fault_config_distinguishes_keys(self, small_batch_workload) -> None:
        from repro.faults.model import FaultConfig, RetryPolicy

        base = run_key(small_batch_workload, "EASY")
        faulty = run_key(
            small_batch_workload,
            "EASY",
            faults=FaultConfig(mtbf=1000.0, mttr=100.0),
        )
        retried = run_key(
            small_batch_workload,
            "EASY",
            faults=FaultConfig(mtbf=1000.0, mttr=100.0),
            retry=RetryPolicy(max_retries=1),
        )
        assert len({base, faulty, retried}) == 3
