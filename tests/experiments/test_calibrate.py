"""Tests for load calibration."""

from __future__ import annotations

import pytest

from repro.experiments.calibrate import calibrate_beta_arr
from repro.workload.generator import GeneratorConfig


@pytest.fixture(scope="module")
def config():
    return GeneratorConfig(n_jobs=120)


class TestCalibration:
    @pytest.mark.parametrize("target", [0.6, 0.9])
    def test_hits_target_within_tolerance(self, config, target):
        result = calibrate_beta_arr(config, target, seed=3, tolerance=0.02)
        assert result.achieved_load == pytest.approx(target, abs=0.025)
        assert result.workload.offered_load() == pytest.approx(result.achieved_load)

    def test_deterministic(self, config):
        a = calibrate_beta_arr(config, 0.8, seed=5)
        b = calibrate_beta_arr(config, 0.8, seed=5)
        assert a.beta_arr == b.beta_arr
        assert a.achieved_load == b.achieved_load

    def test_monotone_beta_vs_load(self, config):
        low = calibrate_beta_arr(config, 0.5, seed=7)
        high = calibrate_beta_arr(config, 0.95, seed=7)
        # Higher load needs faster arrivals (smaller beta_arr).
        assert high.beta_arr < low.beta_arr

    def test_unreachable_high_target_rejected(self, config):
        with pytest.raises(ValueError, match="achievable maximum"):
            calibrate_beta_arr(config, 50.0, seed=1, low=0.5, high=0.9)

    def test_unreachable_low_target_rejected(self, config):
        with pytest.raises(ValueError, match="achievable minimum"):
            calibrate_beta_arr(config, 0.001, seed=1, low=0.4, high=0.6)

    def test_nonpositive_target_rejected(self, config):
        with pytest.raises(ValueError, match="positive"):
            calibrate_beta_arr(config, 0.0, seed=1)

    def test_paper_beta_range_brackets_paper_loads(self):
        """Table II: β_arr in [0.4101, 0.6101] should span loads well
        around the paper's [0.5, 1] interval for the paper's workload
        (N=500, P_S mixes)."""
        config = GeneratorConfig(n_jobs=300)
        result_low = calibrate_beta_arr(config, 0.5, seed=11)
        result_high = calibrate_beta_arr(config, 1.0, seed=11)
        # The calibrated knobs land in a plausible neighbourhood of the
        # paper's range (we don't pin exact values — different draws).
        assert 0.3 <= result_high.beta_arr < result_low.beta_arr <= 1.0
