"""Tests for parameter sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import (
    arrival_scale_sweep,
    cs_sweep,
    load_sweep,
    run_algorithms,
)
from repro.workload.generator import GeneratorConfig
from repro.workload.sdsc import generate_sdsc_like


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        generator=GeneratorConfig(n_jobs=50),
        algorithms=("EASY", "LOS", "Delayed-LOS"),
        loads=(0.6, 0.9),
        seed=1,
    )


class TestRunAlgorithms:
    def test_paired_comparison(self, small_batch_workload):
        results = run_algorithms(small_batch_workload, ("EASY", "LOS"))
        assert set(results) == {"EASY", "LOS"}
        for metrics in results.values():
            assert metrics.n_jobs == len(small_batch_workload)
            assert metrics.offered_load == pytest.approx(
                small_batch_workload.offered_load()
            )

    def test_cs_knob_reaches_delayed_los(self, small_batch_workload):
        a = run_algorithms(small_batch_workload, ("Delayed-LOS",), max_skip_count=0)
        b = run_algorithms(small_batch_workload, ("Delayed-LOS",), max_skip_count=50)
        # C_s=0 is LOS-aggressive; C_s=50 never force-starts the head.
        # They need not differ on every workload, but the runs must be
        # independent and valid.
        assert a["Delayed-LOS"].n_jobs == b["Delayed-LOS"].n_jobs


class TestLoadSweep:
    def test_series_aligned_with_loads(self, tiny_config):
        result = load_sweep(tiny_config)
        assert result.sweep_label == "Load"
        assert len(result.sweep_values) == 2
        for name in tiny_config.algorithms:
            assert len(result.series[name]) == 2
        # Achieved loads approximate the targets.
        for achieved, target in zip(result.sweep_values, tiny_config.loads):
            assert achieved == pytest.approx(target, abs=0.04)

    def test_metric_series_extraction(self, tiny_config):
        result = load_sweep(tiny_config)
        waits = result.metric_series("EASY", "mean_wait")
        assert len(waits) == 2 and all(w >= 0 for w in waits)
        rows = result.rows()
        assert set(rows) == set(tiny_config.algorithms)
        assert "utilization" in rows["EASY"][0]

    def test_higher_load_means_more_waiting(self):
        """Sanity: wait time grows with load (coarse, seeded)."""
        config = ExperimentConfig(
            generator=GeneratorConfig(n_jobs=150),
            algorithms=("EASY",),
            loads=(0.5, 1.0),
            seed=42,
        )
        result = load_sweep(config)
        waits = result.metric_series("EASY", "mean_wait")
        assert waits[1] > waits[0]


class TestCsSweep:
    def test_one_workload_reused(self, tiny_config):
        result = cs_sweep(tiny_config, cs_values=(1, 5), target_load=0.9)
        assert result.sweep_label == "C_s"
        assert result.sweep_values == [1.0, 5.0]
        # EASY ignores C_s: its two runs must be identical.
        easy = result.series["EASY"]
        assert easy[0].mean_wait == easy[1].mean_wait
        assert easy[0].utilization == easy[1].utilization
        # LOS ignores C_s as well (pinned to 0 internally).
        los = result.series["LOS"]
        assert los[0].mean_wait == los[1].mean_wait


class TestArrivalScaleSweep:
    def test_load_decreases_with_scale(self):
        base = generate_sdsc_like(60, np.random.default_rng(2))
        result = arrival_scale_sweep(base, ("EASY",), scale_factors=(1.0, 2.0))
        assert result.sweep_values[0] > result.sweep_values[1]
        assert len(result.series["EASY"]) == 2
