"""Tests for the active (running) list A, sorted by residual."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.queues.active_list import ActiveList
from repro.workload.job import JobState
from tests.conftest import batch_job


def running_job(job_id: int, start: float, estimate: float, num: int = 32):
    job = batch_job(job_id, submit=0.0, num=num, estimate=estimate)
    job.start_time = start
    return job


class TestOrdering:
    def test_sorted_by_kill_by(self):
        active = ActiveList()
        long = running_job(1, start=0.0, estimate=500.0)
        short = running_job(2, start=0.0, estimate=100.0)
        mid = running_job(3, start=50.0, estimate=200.0)  # kill-by 250
        for job in (long, short, mid):
            active.add(job)
        assert [j.job_id for j in active.jobs()] == [2, 3, 1]
        assert active.last() is long
        active.check_invariants(now=60.0)

    def test_residuals_nondecreasing(self):
        active = ActiveList()
        for job_id, est in ((1, 300.0), (2, 100.0), (3, 200.0)):
            active.add(running_job(job_id, start=0.0, estimate=est))
        residuals = active.residuals(now=50.0)
        assert residuals == sorted(residuals)
        assert residuals == [50.0, 150.0, 250.0]

    def test_add_requires_started(self):
        with pytest.raises(ValueError, match="no start time"):
            ActiveList().add(batch_job(1))

    def test_add_sets_running_state(self):
        active = ActiveList()
        job = running_job(1, 0.0, 100.0)
        active.add(job)
        assert job.state is JobState.RUNNING

    def test_indexing_and_iteration(self):
        active = ActiveList()
        a = running_job(1, 0.0, 100.0)
        active.add(a)
        assert active[0] is a
        assert list(active) == [a]

    @given(params=st.lists(st.tuples(st.integers(0, 500), st.integers(1, 500)), min_size=1, max_size=25))
    def test_invariant_under_random_insertion(self, params):
        active = ActiveList()
        for index, (start, est) in enumerate(params):
            active.add(running_job(index, float(start), float(est)))
        active.check_invariants()


class TestMutation:
    def test_total_used(self):
        active = ActiveList()
        active.add(running_job(1, 0.0, 100.0, num=64))
        active.add(running_job(2, 0.0, 50.0, num=96))
        assert active.total_used == 160

    def test_remove(self):
        active = ActiveList()
        a = running_job(1, 0.0, 100.0)
        b = running_job(2, 0.0, 200.0)
        active.add(a)
        active.add(b)
        active.remove(a)
        assert active.jobs() == [b]
        with pytest.raises(ValueError, match="not active"):
            active.remove(a)

    def test_resort_after_ecc_changes_kill_by(self):
        """An ET on the shortest job can reorder the list (the ECC
        processor calls resort after every applied command)."""
        active = ActiveList()
        a = running_job(1, 0.0, 100.0)
        b = running_job(2, 0.0, 200.0)
        active.add(a)
        active.add(b)
        a.estimate = 500.0  # ET pushed kill-by past b's
        active.resort()
        assert [j.job_id for j in active.jobs()] == [2, 1]
        active.check_invariants()

    def test_empty_list(self):
        active = ActiveList()
        assert active.last() is None
        assert active.total_used == 0
        assert not active
