"""Tests for the FIFO batch queue (W^b)."""

from __future__ import annotations

import pickle

import pytest

from repro.queues.batch_queue import BatchQueue
from repro.workload.job import JobState
from tests.conftest import batch_job, dedicated_job


class TestFIFO:
    def test_push_and_head(self):
        queue = BatchQueue()
        a, b = batch_job(1, submit=10.0), batch_job(2, submit=20.0)
        queue.push(a)
        queue.push(b)
        assert queue.head is a
        assert queue.jobs() == [a, b]
        assert queue.tail() == [b]
        assert len(queue) == 2 and bool(queue)

    def test_push_resets_scount_and_queues(self):
        queue = BatchQueue()
        job = batch_job(1)
        job.scount = 5
        queue.push(job)
        assert job.scount == 0
        assert job.state is JobState.QUEUED

    def test_out_of_order_arrival_rejected(self):
        queue = BatchQueue()
        queue.push(batch_job(1, submit=100.0))
        with pytest.raises(ValueError, match="arrives before"):
            queue.push(batch_job(2, submit=50.0))

    def test_pop_head(self):
        queue = BatchQueue()
        a, b = batch_job(1, submit=1.0), batch_job(2, submit=2.0)
        queue.push(a)
        queue.push(b)
        assert queue.pop_head() is a
        assert queue.head is b

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BatchQueue().pop_head()

    def test_empty_head_is_none(self):
        queue = BatchQueue()
        assert queue.head is None
        assert not queue


class TestPromotion:
    def test_push_head_jumps_the_queue(self):
        queue = BatchQueue()
        queue.push(batch_job(1, submit=10.0))
        promoted = dedicated_job(99, submit=5.0, requested_start=500.0)
        promoted.scount = 7  # Algorithm 3 sets scount = C_s
        queue.push_head(promoted)
        assert queue.head is promoted
        assert promoted.scount == 7  # push_head must NOT reset it
        queue.check_invariants(allow_promoted_head=True)

    def test_promoted_jobs_form_a_prefix(self):
        """Several promotions accumulate at the front (Algorithm 3
        applied repeatedly); the batch suffix stays FIFO."""
        queue = BatchQueue()
        queue.push(batch_job(1, submit=10.0))
        queue.push(batch_job(2, submit=20.0))
        queue.push_head(dedicated_job(90, submit=0.0, requested_start=100.0))
        queue.push_head(dedicated_job(91, submit=0.0, requested_start=200.0))
        queue.check_invariants()
        assert [j.job_id for j in queue.jobs()] == [91, 90, 1, 2]

    def test_invariant_check_catches_deep_violation(self):
        queue = BatchQueue()
        queue.push(batch_job(1, submit=10.0))
        queue.push(batch_job(2, submit=20.0))
        queue.push_head(dedicated_job(3, submit=1.0, requested_start=30.0))
        # Head promotion is fine...
        queue.check_invariants()
        # ...but a mid-queue FIFO violation is not.
        queue.jobs()[2].submit = 5.0
        with pytest.raises(AssertionError):
            queue.check_invariants()

    def test_dedicated_outside_prefix_detected(self):
        queue = BatchQueue()
        queue.push(batch_job(1, submit=10.0))
        # A dedicated job appended at the tail is not a legal
        # Algorithm 3 state (push itself does not police job kinds).
        queue.push(dedicated_job(2, submit=20.0, requested_start=50.0))
        with pytest.raises(AssertionError, match="prefix"):
            queue.check_invariants()


class TestRemoval:
    def test_remove_mid_queue(self):
        queue = BatchQueue()
        jobs = [batch_job(i, submit=float(i)) for i in range(1, 5)]
        for job in jobs:
            queue.push(job)
        queue.remove(jobs[2])
        assert [j.job_id for j in queue.jobs()] == [1, 2, 4]

    def test_remove_all_selected_set(self):
        queue = BatchQueue()
        jobs = [batch_job(i, submit=float(i)) for i in range(1, 6)]
        for job in jobs:
            queue.push(job)
        queue.remove_all([jobs[4], jobs[0]])  # order-independent
        assert [j.job_id for j in queue.jobs()] == [2, 3, 4]

    def test_remove_absent_rejected(self):
        queue = BatchQueue()
        queue.push(batch_job(1))
        with pytest.raises(ValueError, match="not in the batch queue"):
            queue.remove(batch_job(2))

    def test_contains_by_id(self):
        queue = BatchQueue()
        job = batch_job(7)
        queue.push(job)
        assert job in queue
        assert batch_job(8) not in queue


class TestSizeIndex:
    """The per-size token index behind ``iter_fitting``."""

    def _filled(self):
        queue = BatchQueue()
        jobs = [
            batch_job(1, submit=1.0, num=64),
            batch_job(2, submit=2.0, num=8),
            batch_job(3, submit=3.0, num=16),
            batch_job(4, submit=4.0, num=8),
            batch_job(5, submit=5.0, num=128),
        ]
        for job in jobs:
            queue.push(job)
        return queue, jobs

    def test_iter_fitting_is_queue_order_filtered(self):
        queue, _ = self._filled()
        assert [j.job_id for j in queue.iter_fitting(16)] == [2, 3, 4]
        assert [j.job_id for j in queue.iter_fitting(8)] == [2, 4]
        assert [j.job_id for j in queue.iter_fitting(200)] == [1, 2, 3, 4, 5]
        assert list(queue.iter_fitting(4)) == []
        queue.check_invariants()

    def test_iter_fitting_after_removal(self):
        queue, jobs = self._filled()
        queue.remove(jobs[1])  # job 2 (num=8)
        queue.pop_head()       # job 1 (num=64)
        assert [j.job_id for j in queue.iter_fitting(16)] == [3, 4]
        queue.check_invariants()

    def test_iter_fitting_sees_head_promotions(self):
        queue, _ = self._filled()
        promoted = dedicated_job(99, submit=0.0, num=8, requested_start=9.0)
        queue.push_head(promoted)
        assert [j.job_id for j in queue.iter_fitting(8)] == [99, 2, 4]
        queue.check_invariants(allow_promoted_head=True)

    def test_note_resize_moves_size_buckets(self):
        queue, jobs = self._filled()
        jobs[2].num = 8  # an RP shrank queued job 3 in place
        assert queue.note_resize(jobs[2])
        assert [j.job_id for j in queue.iter_fitting(8)] == [2, 3, 4]
        assert [j.job_id for j in queue.iter_fitting(15)] == [2, 3, 4]
        queue.check_invariants()

    def test_note_resize_absent_job_is_noop(self):
        queue, _ = self._filled()
        assert not queue.note_resize(batch_job(42, num=8))
        queue.check_invariants()

    def test_invariants_catch_missed_resize(self):
        queue, jobs = self._filled()
        jobs[2].num = 8  # mutated without note_resize: index is stale
        with pytest.raises(AssertionError, match="note_resize"):
            queue.check_invariants()

    def test_pickle_round_trip(self):
        queue, jobs = self._filled()
        queue.remove(jobs[3])
        clone = pickle.loads(pickle.dumps(queue))
        assert [j.job_id for j in clone.jobs()] == [j.job_id for j in queue.jobs()]
        assert clone.version == queue.version
        assert [j.job_id for j in clone.iter_fitting(16)] == [
            j.job_id for j in queue.iter_fitting(16)
        ]
        clone.check_invariants()

    def test_version_bumps_on_membership_change_only(self):
        queue = BatchQueue()
        job = batch_job(1, num=8)
        before = queue.version
        queue.push(job)
        assert queue.version != before
        # A resize does not bump the queue version: the scheduler's
        # cycle-elision fingerprint covers queued-num changes through
        # the jobs version, and membership did not change here.
        resized = queue.version
        job.num = 4
        queue.note_resize(job)
        assert queue.version == resized
