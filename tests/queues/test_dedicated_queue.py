"""Tests for the dedicated queue (W^d, sorted by requested start)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.queues.dedicated_queue import DedicatedQueue
from tests.conftest import batch_job, dedicated_job


class TestOrdering:
    def test_sorted_by_start_time(self):
        queue = DedicatedQueue()
        late = dedicated_job(1, requested_start=300.0)
        early = dedicated_job(2, requested_start=100.0)
        mid = dedicated_job(3, requested_start=200.0)
        for job in (late, early, mid):
            queue.push(job)
        assert [j.job_id for j in queue.jobs()] == [2, 3, 1]
        assert queue.head is early
        queue.check_invariants()

    def test_ties_broken_by_submit_then_id(self):
        queue = DedicatedQueue()
        b = dedicated_job(2, submit=10.0, requested_start=100.0)
        a = dedicated_job(1, submit=5.0, requested_start=100.0)
        queue.push(b)
        queue.push(a)
        assert [j.job_id for j in queue.jobs()] == [1, 2]

    def test_batch_job_rejected(self):
        with pytest.raises(ValueError, match="not dedicated"):
            DedicatedQueue().push(batch_job(1))

    @given(starts=st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    def test_invariant_under_random_insertion(self, starts):
        queue = DedicatedQueue()
        for index, start in enumerate(starts):
            queue.push(dedicated_job(index, submit=0.0, requested_start=float(start)))
        queue.check_invariants()
        ordered = [j.requested_start for j in queue.jobs()]
        assert ordered == sorted(ordered)


class TestAccess:
    def test_pop_head(self):
        queue = DedicatedQueue()
        job = dedicated_job(1, requested_start=50.0)
        queue.push(job)
        assert queue.pop_head() is job
        assert not queue and queue.head is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            DedicatedQueue().pop_head()

    def test_remove(self):
        queue = DedicatedQueue()
        a = dedicated_job(1, requested_start=50.0)
        b = dedicated_job(2, requested_start=60.0)
        queue.push(a)
        queue.push(b)
        queue.remove(a)
        assert queue.jobs() == [b]
        with pytest.raises(ValueError, match="not in the dedicated queue"):
            queue.remove(a)

    def test_due_jobs(self):
        queue = DedicatedQueue()
        queue.push(dedicated_job(1, requested_start=50.0))
        queue.push(dedicated_job(2, requested_start=150.0))
        assert [j.job_id for j in queue.due(100.0)] == [1]
        assert queue.due(10.0) == []
        assert len(queue.due(200.0)) == 2

    def test_cohead_group_identical_starts(self):
        """Algorithm 2's tot_start_num sums jobs sharing the head start."""
        queue = DedicatedQueue()
        queue.push(dedicated_job(1, requested_start=100.0, num=32))
        queue.push(dedicated_job(2, requested_start=100.0, num=64))
        queue.push(dedicated_job(3, requested_start=200.0, num=96))
        group = queue.cohead_group()
        assert {j.job_id for j in group} == {1, 2}
        assert sum(j.num for j in group) == 96

    def test_cohead_group_empty_queue(self):
        assert DedicatedQueue().cohead_group() == []
