"""Unit and property tests for exact utilization integration."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.accounting import UtilizationTracker


class TestObservation:
    def test_simple_rectangle(self):
        tracker = UtilizationTracker(start_time=0.0)
        tracker.observe(0.0, 10)
        tracker.observe(5.0, 0)
        assert tracker.busy_area() == 50.0
        assert tracker.mean_utilization(10, until=10.0) == pytest.approx(0.5)

    def test_step_function(self):
        tracker = UtilizationTracker()
        tracker.observe(0.0, 4)
        tracker.observe(2.0, 8)  # 4*2 = 8
        tracker.observe(5.0, 2)  # 8*3 = 24
        tracker.observe(10.0, 0)  # 2*5 = 10
        assert tracker.busy_area() == 8 + 24 + 10

    def test_same_instant_updates_collapse(self):
        # Several alloc/release at one instant: only the final level
        # occupies time.
        tracker = UtilizationTracker()
        tracker.observe(0.0, 10)
        tracker.observe(1.0, 20)
        tracker.observe(1.0, 5)
        tracker.observe(2.0, 0)
        assert tracker.busy_area() == 10 + 5

    def test_time_going_backwards_raises(self):
        tracker = UtilizationTracker()
        tracker.observe(5.0, 1)
        with pytest.raises(ValueError, match="time-ordered"):
            tracker.observe(4.0, 2)

    def test_horizon_extension_assumes_current_level(self):
        tracker = UtilizationTracker()
        tracker.observe(0.0, 10)
        assert tracker.busy_area(until=4.0) == 40.0

    def test_prefix_integration(self):
        tracker = UtilizationTracker()
        tracker.observe(0.0, 10)
        tracker.observe(5.0, 2)
        tracker.observe(10.0, 0)
        # Horizon before the last observation re-integrates the prefix.
        assert tracker.busy_area(until=7.0) == 10 * 5 + 2 * 2

    def test_zero_span_utilization_is_zero(self):
        tracker = UtilizationTracker(start_time=3.0)
        assert tracker.mean_utilization(100, until=3.0) == 0.0

    def test_peak_level(self):
        tracker = UtilizationTracker()
        tracker.observe(1.0, 4)
        tracker.observe(2.0, 9)
        tracker.observe(3.0, 1)
        assert tracker.peak_level() == 9

    def test_samples_snapshot(self):
        tracker = UtilizationTracker()
        tracker.observe(1.0, 5)
        samples = tracker.samples()
        assert [(s.time, s.level) for s in samples] == [(0.0, 0), (1.0, 5)]


@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=320),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_integral_matches_manual_sum(steps):
    """Property: incremental integration equals the closed-form sum."""
    tracker = UtilizationTracker(start_time=0.0)
    now = 0.0
    expected = 0.0
    level = 0
    for delta, new_level in steps:
        expected += level * delta
        now += delta
        tracker.observe(now, new_level)
        level = new_level
    assert tracker.busy_area(until=now) == pytest.approx(expected, rel=1e-9, abs=1e-9)
    mean = tracker.mean_utilization(320, until=now)
    assert 0.0 <= mean <= 1.0
