"""Tests for the contiguous partition allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.machine import AllocationError
from repro.cluster.partition import FragmentationError, PartitionedMachine


def machine(units=10, granularity=32):
    return PartitionedMachine(total=units * granularity, granularity=granularity)


class TestAllocation:
    def test_first_fit_placement(self):
        m = machine()
        assert m.allocate("a", 96) == 0  # 3 units at the left edge
        assert m.allocate("b", 64) == 3
        assert m.span_of("a") == (0, 3)
        assert m.span_of("b") == (3, 2)
        assert m.used == 160

    def test_release_reopens_run(self):
        m = machine()
        m.allocate("a", 96)
        m.allocate("b", 64)
        assert m.release("a") == 96
        assert m.allocate("c", 96) == 0  # reuses the hole
        m.check_invariants()

    def test_fragmentation_error_distinct_from_capacity(self):
        m = machine(units=4)
        m.allocate("a", 32)  # unit 0
        m.allocate("b", 32)  # unit 1
        m.allocate("c", 32)  # unit 2
        m.release("b")  # free: units 1 and 3, not adjacent
        assert m.free == 64
        assert not m.fits_contiguously(64)
        with pytest.raises(FragmentationError, match="contiguous"):
            m.allocate("d", 64)
        with pytest.raises(AllocationError, match="free"):
            m.allocate("e", 128)  # beyond total free -> plain capacity error

    def test_invalid_requests(self):
        m = machine()
        with pytest.raises(AllocationError):
            m.allocate("a", 0)
        with pytest.raises(AllocationError):
            m.allocate("a", 33)  # granularity violation
        with pytest.raises(AllocationError):
            m.allocate("a", 10 * 32 + 32)  # oversized
        m.allocate("a", 32)
        with pytest.raises(AllocationError, match="already live"):
            m.allocate("a", 32)
        with pytest.raises(AllocationError, match="not live"):
            m.release("ghost")

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PartitionedMachine(total=100, granularity=32)


class TestFragmentationMetrics:
    def test_no_fragmentation_when_contiguous(self):
        m = machine()
        m.allocate("a", 96)
        assert m.fragmentation() == 0.0
        assert m.largest_free_run() == 7

    def test_checkerboard_fragmentation(self):
        m = machine(units=6)
        for index in range(6):
            m.allocate(index, 32)
        for index in (1, 3, 5):
            m.release(index)
        # 3 free units in runs of 1 -> fragmentation 1 - 1/3.
        assert m.fragmentation() == pytest.approx(2 / 3)
        assert m.free_runs() == [(1, 1), (3, 1), (5, 1)]

    def test_full_and_empty_machines(self):
        m = machine(units=2)
        assert m.fragmentation() == 0.0  # empty: one big run
        m.allocate("a", 64)
        assert m.fragmentation() == 0.0  # full: defined as 0


class TestCompaction:
    def test_compact_coalesces_free_space(self):
        m = machine(units=6)
        for index in range(6):
            m.allocate(index, 32)
        for index in (0, 2, 4):
            m.release(index)
        assert not m.fits_contiguously(96)
        moved = m.compact()
        assert moved > 0
        assert m.fits_contiguously(96)
        assert m.fragmentation() == 0.0
        m.check_invariants()

    def test_compact_preserves_relative_order(self):
        m = machine(units=6)
        m.allocate("a", 32)
        m.allocate("b", 32)
        m.allocate("c", 32)
        m.release("b")
        m.compact()
        a_start, _ = m.span_of("a")
        c_start, _ = m.span_of("c")
        assert a_start < c_start

    def test_compact_noop_when_already_packed(self):
        m = machine()
        m.allocate("a", 96)
        assert m.compact() == 0


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["alloc", "free", "compact"]), st.integers(1, 5)),
        max_size=50,
    )
)
def test_invariants_under_random_operations(operations):
    m = machine(units=12)
    live = []
    next_id = 0
    for op, units in operations:
        if op == "alloc":
            num = units * 32
            try:
                m.allocate(next_id, num)
                live.append(next_id)
                next_id += 1
            except AllocationError:
                pass  # fragmentation or capacity: legal outcomes
        elif op == "free" and live:
            m.release(live.pop(0))
        elif op == "compact":
            m.compact()
        m.check_invariants()
        assert 0 <= m.free <= m.total
        assert m.used + m.free == m.total
