"""Pset failure/repair mechanics of the placement-tracking machine."""

from __future__ import annotations

import pytest

from repro.cluster.machine import AllocationError, Machine
from repro.cluster.partition import PartitionedMachine


@pytest.fixture
def machine() -> Machine:
    return Machine(total=128, granularity=32, track_placement=True)


class TestFailRepair:
    def test_fail_free_unit_shrinks_capacity(self, machine: Machine) -> None:
        assert machine.fail_unit(0) is None
        assert machine.offline == 32
        assert machine.available == 96
        assert machine.free == 96
        assert machine.degraded
        machine.check_invariants()

    def test_fail_owned_unit_evicts_in_full(self, machine: Machine) -> None:
        machine.allocate("job", 64)
        index = machine._unit_of["job"][0]
        assert machine.fail_unit(index) == "job"
        # the whole allocation is gone, not just the failed pset
        assert not machine.holds("job")
        assert machine.used == 0
        assert machine.free == 96
        machine.check_invariants()

    def test_allocation_avoids_offline_psets(self, machine: Machine) -> None:
        machine.fail_unit(0)
        machine.allocate("a", 96)
        assert 0 not in machine._unit_of["a"]
        with pytest.raises(AllocationError):
            machine.allocate("b", 32)
        machine.check_invariants()

    def test_repair_restores_capacity(self, machine: Machine) -> None:
        machine.fail_unit(2)
        machine.repair_unit(2)
        assert machine.offline == 0
        assert machine.free == 128
        assert not machine.degraded
        machine.allocate("a", 128)
        machine.check_invariants()

    def test_fail_errors(self, machine: Machine) -> None:
        with pytest.raises(AllocationError):
            machine.fail_unit(99)
        machine.fail_unit(1)
        with pytest.raises(AllocationError):
            machine.fail_unit(1)
        with pytest.raises(AllocationError):
            machine.repair_unit(0)

    def test_faults_require_placement_tracking(self) -> None:
        plain = Machine(total=128, granularity=32)
        with pytest.raises(AllocationError, match="track_placement"):
            plain.fail_unit(0)
        with pytest.raises(AllocationError):
            plain.online_units()

    def test_online_units(self, machine: Machine) -> None:
        assert machine.online_units() == [0, 1, 2, 3]
        machine.fail_unit(1)
        assert machine.online_units() == [0, 2, 3]


class TestDegradedTime:
    def test_integral_over_overlapping_outages(self, machine: Machine) -> None:
        machine.fail_unit(0, time=10.0)
        machine.fail_unit(1, time=20.0)
        machine.repair_unit(0, time=30.0)
        # still degraded: pset 1 remains offline
        assert machine.degraded_time(until=40.0) == pytest.approx(30.0)
        machine.repair_unit(1, time=50.0)
        assert machine.degraded_time(until=100.0) == pytest.approx(40.0)

    def test_healthy_machine_has_zero_degraded_time(self, machine: Machine) -> None:
        assert machine.degraded_time(until=1000.0) == 0.0


class TestPartitionedFaults:
    def test_fail_evicts_and_breaks_runs(self) -> None:
        part = PartitionedMachine(total=128, granularity=32)
        part.allocate("a", 64)
        assert part.fail_unit(0) == "a"
        assert part.span_of("a") is None
        # the offline pset splits the free space
        assert part.free_runs() == [(1, 3)]
        assert part.free == 96
        part.check_invariants()

    def test_compact_degraded_avoids_offline_psets(self) -> None:
        part = PartitionedMachine(total=160, granularity=32)
        part.allocate("a", 32)  # unit 0
        part.allocate("b", 32)  # unit 1
        part.release("a")
        part.fail_unit(0)
        moved = part.compact()
        assert moved >= 0
        part.check_invariants()
        span = part.span_of("b")
        assert span is not None and span[0] != 0

    def test_repair_restores_run(self) -> None:
        part = PartitionedMachine(total=128, granularity=32)
        part.fail_unit(2)
        assert not part.fits_contiguously(128)
        part.repair_unit(2)
        assert part.fits_contiguously(128)
        part.check_invariants()
