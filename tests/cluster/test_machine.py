"""Unit and property tests for the machine model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.accounting import UtilizationTracker
from repro.cluster.machine import AllocationError, Machine


class TestConstruction:
    def test_basic_properties(self):
        machine = Machine(total=320, granularity=32)
        assert machine.total == 320
        assert machine.free == 320
        assert machine.used == 0
        assert machine.units == 10
        assert machine.free_units() == 10

    @pytest.mark.parametrize("total", [0, -1])
    def test_nonpositive_size_rejected(self, total):
        with pytest.raises(ValueError, match="positive"):
            Machine(total=total)

    def test_nonpositive_granularity_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            Machine(total=320, granularity=0)

    def test_size_must_be_multiple_of_granularity(self):
        with pytest.raises(ValueError, match="not a multiple"):
            Machine(total=100, granularity=32)


class TestAllocation:
    def test_allocate_and_release_roundtrip(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("job1", 64)
        assert machine.used == 64
        assert machine.free == 256
        assert machine.holds("job1")
        assert machine.allocation_of("job1") == 64
        released = machine.release("job1")
        assert released == 64
        assert machine.free == 320
        assert not machine.holds("job1")

    def test_overallocation_rejected(self):
        machine = Machine(total=64, granularity=32)
        machine.allocate("a", 64)
        with pytest.raises(AllocationError, match="only 0 free"):
            machine.allocate("b", 32)

    def test_duplicate_id_rejected(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 32)
        with pytest.raises(AllocationError, match="already live"):
            machine.allocate("a", 32)

    def test_release_unknown_id_rejected(self):
        machine = Machine(total=320)
        with pytest.raises(AllocationError, match="not live"):
            machine.release("ghost")

    @pytest.mark.parametrize("num", [0, -32])
    def test_nonpositive_request_rejected(self, num):
        machine = Machine(total=320, granularity=32)
        with pytest.raises(AllocationError, match="positive"):
            machine.allocate("a", num)

    def test_granularity_violation_rejected(self):
        machine = Machine(total=320, granularity=32)
        with pytest.raises(AllocationError, match="granularity"):
            machine.allocate("a", 33)

    def test_oversized_request_rejected(self):
        machine = Machine(total=320, granularity=32)
        with pytest.raises(AllocationError, match="exceeds machine size"):
            machine.allocate("a", 352)

    def test_fits_and_validate(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 288)
        assert machine.fits(32)
        assert not machine.fits(64)
        assert not machine.fits(0)
        machine.validate_request(64)  # well-formed even if not free now

    def test_live_allocations_snapshot(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 32)
        machine.allocate("b", 64)
        snapshot = machine.live_allocations()
        assert snapshot == {"a": 32, "b": 64}
        snapshot["c"] = 1  # mutating the snapshot must not leak
        assert not machine.holds("c")


class TestTrackerIntegration:
    def test_allocations_feed_the_tracker(self):
        tracker = UtilizationTracker(start_time=0.0)
        machine = Machine(total=100, granularity=1, tracker=tracker)
        machine.allocate("a", 50, time=0.0)
        machine.release("a", time=10.0)
        # 50 procs busy for 10s on a 100-proc machine over [0, 20].
        assert tracker.mean_utilization(100, until=20.0) == pytest.approx(0.25)


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 10)),
        max_size=60,
    )
)
def test_invariants_hold_under_random_operations(operations):
    """Property: no operation sequence can corrupt the books."""
    machine = Machine(total=320, granularity=32)
    live: dict[int, int] = {}
    next_id = 0
    for op, units in operations:
        if op == "alloc":
            num = units * 32
            if num <= machine.free and num <= machine.total:
                machine.allocate(next_id, num)
                live[next_id] = num
                next_id += 1
        elif live:
            victim = next(iter(live))
            released = machine.release(victim)
            assert released == live.pop(victim)
        machine.check_invariants()
        assert machine.used == sum(live.values())
        assert machine.free == 320 - sum(live.values())


class TestResize:
    """In-place reallocation — the malleability primitive."""

    def test_shrink_frees_capacity(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 128)
        assert machine.resize("a", 64) == 128
        assert machine.used == 64 and machine.free == 256

    def test_grow_claims_free_capacity(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 64)
        assert machine.resize("a", 192) == 64
        assert machine.used == 192

    def test_grow_beyond_free_rejected(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 128)
        machine.allocate("b", 128)
        with pytest.raises(AllocationError, match="cannot grow"):
            machine.resize("a", 320)
        assert machine.used == 256  # unchanged

    def test_unknown_allocation_rejected(self):
        machine = Machine(total=320, granularity=32)
        with pytest.raises(AllocationError, match="not live"):
            machine.resize("ghost", 64)

    def test_same_size_is_a_noop(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 128)
        assert machine.resize("a", 128) == 128
        assert machine.used == 128

    def test_granularity_enforced(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 128)
        with pytest.raises(AllocationError):
            machine.resize("a", 100)

    def test_release_after_resize_frees_new_size(self):
        machine = Machine(total=320, granularity=32)
        machine.allocate("a", 128)
        machine.resize("a", 64)
        assert machine.release("a") == 64
        assert machine.used == 0 and machine.free == 320

    def test_placement_tracking_survives_resizes(self):
        machine = Machine(total=8, granularity=1, track_placement=True)
        machine.allocate("a", 4)
        machine.allocate("b", 4)
        machine.release("b")
        machine.resize("a", 6)
        machine.check_invariants()
        machine.resize("a", 2)
        machine.check_invariants()
        machine.allocate("c", 6)  # reuses everything a gave back
        machine.check_invariants()
        assert machine.free == 0
