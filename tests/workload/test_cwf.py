"""Tests for the Cloud Workload Format (Figure 4 extension)."""

from __future__ import annotations

import io

import pytest

from repro.workload.cwf import (
    CWFParseError,
    CWFRecord,
    parse_cwf_workload,
    read_cwf,
    write_cwf,
)
from repro.workload.ecc import ECC, ECCKind
from repro.workload.job import JobKind
from tests.conftest import batch_job, dedicated_job

SUBMIT_LINE = "1 100 -1 3600 64 -1 -1 64 4000 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1"
DEDICATED_LINE = "2 100 -1 3600 64 -1 -1 64 4000 -1 1 -1 -1 -1 -1 -1 -1 -1 500 S -1"
ECC_LINE = "1 900 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET 600"


class TestParsing:
    def test_parse_submission(self):
        record = CWFRecord.parse(SUBMIT_LINE)
        assert record.is_submission
        assert record.requested_start == -1
        assert record.request_type is ECCKind.SUBMIT

    def test_parse_dedicated_submission(self):
        record = CWFRecord.parse(DEDICATED_LINE)
        job = record.to_job()
        assert job.kind is JobKind.DEDICATED
        assert job.requested_start == 500.0

    def test_parse_ecc_line(self):
        record = CWFRecord.parse(ECC_LINE)
        assert not record.is_submission
        ecc = record.to_ecc()
        assert ecc.job_id == 1
        assert ecc.issue_time == 900.0
        assert ecc.kind is ECCKind.EXTEND_TIME
        assert ecc.amount == 600.0

    def test_case_insensitive_request_type(self):
        record = CWFRecord.parse(ECC_LINE.replace(" ET ", " et "))
        assert record.request_type is ECCKind.EXTEND_TIME

    def test_unknown_request_type_rejected(self):
        with pytest.raises(CWFParseError, match="unknown code"):
            CWFRecord.parse(ECC_LINE.replace(" ET ", " XX "))

    def test_plain_swf_line_parses_as_submission(self):
        # CWF is a superset: bare 18-field SWF lines are submissions.
        record = CWFRecord.parse("1 100 -1 3600 64 -1 -1 64 4000")
        assert record.is_submission

    def test_too_many_fields_rejected(self):
        # 21 CWF fields plus the optional 3-column malleability range
        # (fields 22-24) is the ceiling.
        with pytest.raises(CWFParseError, match="at most 24"):
            CWFRecord.parse(" ".join(["1"] * 25))


class TestConversionErrors:
    def test_to_job_on_ecc_rejected(self):
        with pytest.raises(CWFParseError, match="not a submission"):
            CWFRecord.parse(ECC_LINE).to_job()

    def test_to_ecc_on_submission_rejected(self):
        with pytest.raises(CWFParseError, match="not an ECC"):
            CWFRecord.parse(SUBMIT_LINE).to_ecc()

    def test_to_ecc_without_amount_rejected(self):
        line = ECC_LINE.rsplit(" ", 1)[0] + " -1"
        with pytest.raises(CWFParseError, match="non-positive amount"):
            CWFRecord.parse(line).to_ecc()


class TestRoundTrip:
    def test_line_roundtrip(self):
        for line in (SUBMIT_LINE, DEDICATED_LINE, ECC_LINE):
            record = CWFRecord.parse(line)
            assert CWFRecord.parse(record.to_line()) == record

    def test_from_job_and_back(self):
        job = dedicated_job(5, submit=10.0, num=96, estimate=500.0, requested_start=80.0)
        record = CWFRecord.from_job(job)
        again = record.to_job()
        assert again.is_dedicated
        assert again.requested_start == 80.0
        assert again.num == 96

    def test_from_ecc_and_back(self):
        ecc = ECC(job_id=9, issue_time=33.0, kind=ECCKind.REDUCE_TIME, amount=120.0)
        record = CWFRecord.from_ecc(ecc)
        assert record.to_ecc() == ecc

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.cwf"
        records = [CWFRecord.parse(line) for line in (SUBMIT_LINE, DEDICATED_LINE, ECC_LINE)]
        write_cwf(records, path, header=["CWF test"])
        assert read_cwf(path) == records


class TestWorkloadSplit:
    def test_split_jobs_and_eccs(self):
        text = "\n".join([SUBMIT_LINE, DEDICATED_LINE, ECC_LINE]) + "\n"
        jobs, eccs = parse_cwf_workload(io.StringIO(text))
        assert [j.job_id for j in jobs] == [1, 2]
        assert jobs[1].is_dedicated
        assert len(eccs) == 1 and eccs[0].job_id == 1

    def test_dangling_ecc_rejected(self):
        with pytest.raises(CWFParseError, match="unknown job"):
            parse_cwf_workload(io.StringIO(ECC_LINE + "\n"))

    def test_duplicate_submission_rejected(self):
        text = SUBMIT_LINE + "\n" + SUBMIT_LINE + "\n"
        with pytest.raises(CWFParseError, match="duplicate"):
            parse_cwf_workload(io.StringIO(text))

    def test_workload_to_cwf_roundtrip(self, tmp_path):
        from tests.conftest import make_workload

        workload = make_workload(
            [batch_job(1, submit=0.0, num=64), dedicated_job(2, submit=5.0, requested_start=50.0)],
            eccs=[ECC(job_id=1, issue_time=10.0, kind=ECCKind.EXTEND_TIME, amount=60.0)],
        )
        path = tmp_path / "wl.cwf"
        workload.to_cwf(path)
        jobs, eccs = parse_cwf_workload(path)
        assert len(jobs) == 2 and len(eccs) == 1
        assert jobs[1].is_dedicated and jobs[1].requested_start == 50.0
        assert eccs[0].kind is ECCKind.EXTEND_TIME


class TestGzipSupport:
    def test_gz_roundtrip(self, tmp_path):
        path = tmp_path / "trace.cwf.gz"
        records = [CWFRecord.parse(line) for line in (SUBMIT_LINE, ECC_LINE)]
        write_cwf(records, path)
        assert read_cwf(path) == records


class TestMalleableColumns:
    """Optional fields 22-24: the min/pref/max processor range."""

    RANGED_SUBMIT = SUBMIT_LINE + " 32 64 128"

    def test_parse_and_convert(self):
        record = CWFRecord.parse(self.RANGED_SUBMIT)
        assert (record.min_procs, record.pref_procs, record.max_procs) == (32, 64, 128)
        job = record.to_job()
        assert job.is_malleable and not job.is_dedicated

    def test_ranged_line_roundtrips(self):
        record = CWFRecord.parse(self.RANGED_SUBMIT)
        assert len(record.to_line().split()) == 24
        assert CWFRecord.parse(record.to_line()) == record

    def test_rigid_line_stays_21_fields(self):
        record = CWFRecord.parse(SUBMIT_LINE)
        assert len(record.to_line().split()) == 21

    def test_dedicated_submission_carries_the_range(self):
        record = CWFRecord.parse(DEDICATED_LINE + " 32 64 128")
        job = record.to_job()
        assert job.is_dedicated and job.is_malleable
        assert (job.min_procs, job.pref_procs, job.max_procs) == (32, 64, 128)

    def test_from_job_round_trip(self):
        job = CWFRecord.parse(self.RANGED_SUBMIT).to_job()
        again = CWFRecord.from_job(job).to_job()
        assert (again.min_procs, again.pref_procs, again.max_procs) == (32, 64, 128)

    def test_ecc_lines_never_grow_columns(self):
        record = CWFRecord.parse(ECC_LINE)
        assert len(record.to_line().split()) == 21
        assert record.to_ecc().kind is ECCKind.EXTEND_TIME
