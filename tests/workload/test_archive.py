"""Tests for archive-log loading."""

from __future__ import annotations

import gzip

import pytest

from repro.workload.archive import load_swf_workload, read_header_max_procs

LOG = """\
; SDSC-like excerpt
; MaxProcs: 128
; Note: fabricated for tests
1 100 10 3600 64 -1 -1 64 4000 -1 1
2 200 -1 1800 33 -1 -1 33 2000 -1 1
3 300 -1 -1 -1 -1 -1 -1 -1 -1 0
4 400 -1 600 256 -1 -1 256 700 -1 1
5 500 50 -1 16 -1 -1 16 900 -1 5
6 600 -1 60 8 -1 -1 8 100 -1 1
"""


@pytest.fixture
def log_path(tmp_path):
    path = tmp_path / "excerpt.swf"
    path.write_text(LOG)
    return path


class TestHeader:
    def test_max_procs_parsed(self, log_path):
        assert read_header_max_procs(log_path) == 128

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bare.swf"
        path.write_text("1 0 -1 100 8 -1 -1 8 100 -1 1\n")
        assert read_header_max_procs(path) is None


class TestLoad:
    def test_basic_load_and_report(self, log_path):
        workload, report = load_swf_workload(log_path, granularity=32)
        assert workload.machine_size == 128  # from the header
        assert report.total_records == 6
        # Record 3 has no runtime/processors; record 4 exceeds 128.
        assert report.skipped_unusable == 1
        assert report.skipped_oversized == 1
        assert report.kept == 4
        # Records 2 (33p), 5 (16p) and 6 (8p) snapped up to 32-proc psets.
        assert report.snapped_to_granularity == 3
        sizes = sorted(j.num for j in workload.jobs)
        assert sizes == [32, 32, 64, 64]

    def test_rebase_to_zero(self, log_path):
        workload, report = load_swf_workload(log_path, granularity=32)
        assert min(j.submit for j in workload.jobs) == 0.0
        assert any("rebased" in note for note in report.notes)

    def test_no_rebase(self, log_path):
        workload, _ = load_swf_workload(log_path, granularity=32, rebase_time=False)
        assert min(j.submit for j in workload.jobs) == 100.0

    def test_max_jobs_excerpt(self, log_path):
        workload, report = load_swf_workload(log_path, granularity=1, max_jobs=2)
        assert len(workload) == 2
        assert report.kept == 2

    def test_status5_cancellation_carried(self, log_path):
        workload, _ = load_swf_workload(log_path, granularity=1, rebase_time=False)
        cancelled = [j for j in workload.jobs if j.cancel_at is not None]
        assert [j.job_id for j in cancelled] == [5]
        assert cancelled[0].cancel_at == 550.0  # submit 500 + wait 50

    def test_machine_size_override(self, log_path):
        workload, _ = load_swf_workload(log_path, machine_size=512, granularity=32)
        assert workload.machine_size == 512
        assert len(workload) == 5  # the 256-proc job now fits

    def test_missing_machine_size_rejected(self, tmp_path):
        path = tmp_path / "bare.swf"
        path.write_text("1 0 -1 100 8 -1 -1 8 100 -1 1\n")
        with pytest.raises(ValueError, match="MaxProcs"):
            load_swf_workload(path)

    def test_bad_granularity_rejected(self, log_path):
        with pytest.raises(ValueError, match="not a multiple"):
            load_swf_workload(log_path, machine_size=100, granularity=32)

    def test_empty_log_rejected(self, tmp_path):
        path = tmp_path / "empty.swf"
        path.write_text("; MaxProcs: 64\n")
        with pytest.raises(ValueError, match="no usable"):
            load_swf_workload(path)

    def test_gzip_log(self, tmp_path):
        path = tmp_path / "excerpt.swf.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(LOG)
        workload, report = load_swf_workload(path, granularity=32)
        assert report.kept == 4

    def test_loaded_log_simulates(self, log_path):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        workload, _ = load_swf_workload(log_path, granularity=32)
        metrics = simulate(workload, make_scheduler("Delayed-LOS"))
        # Job 5 may cancel in queue or run; everything is accounted for.
        assert metrics.n_jobs + metrics.n_cancelled == len(workload)
