"""Malformed trace files: typed errors with context, lenient skipping."""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.workload.archive import load_swf_workload
from repro.workload.cwf import CWFParseError, CWFRecord, parse_cwf_workload, read_cwf
from repro.workload.ecc import ECC, ECCKind
from repro.workload.errors import WorkloadFormatError
from repro.workload.job import Job
from repro.workload.swf import SWFParseError, SWFRecord, read_swf

GOOD_SWF = "1 0 -1 100 32 -1 -1 32 120 -1 1"
GOOD_SWF2 = "2 10 -1 50 32 -1 -1 32 60 -1 1"


def _submission(job_id: int, submit: float = 0.0) -> str:
    job = Job(job_id=job_id, submit=submit, num=32, estimate=100.0)
    return CWFRecord.from_job(job).to_line()


def _ecc_line(job_id: int, issue: float = 50.0, amount: float = 30.0) -> str:
    return CWFRecord.from_ecc(
        ECC(job_id=job_id, issue_time=issue, kind=ECCKind.EXTEND_TIME, amount=amount)
    ).to_line()


class TestSWF:
    def test_strict_raises_with_file_and_line(self, tmp_path: Path) -> None:
        path = tmp_path / "trace.swf"
        path.write_text(f"; header\n{GOOD_SWF}\n1 oops\n")
        with pytest.raises(SWFParseError) as info:
            read_swf(path)
        assert info.value.line == 3
        assert info.value.source == str(path)
        assert f"{path}:3:" in str(info.value)
        assert "non-numeric" in str(info.value)

    def test_lenient_skips_with_warning(self) -> None:
        stream = io.StringIO(f"{GOOD_SWF}\nbad line here\n{GOOD_SWF2}\n")
        with pytest.warns(RuntimeWarning, match="skipping malformed record"):
            records = read_swf(stream, strict=False)
        assert [r.job_id for r in records] == [1, 2]

    def test_too_many_fields(self) -> None:
        # 18 standard + 3 optional malleability columns is the ceiling.
        line = " ".join(["1"] * 22)
        with pytest.raises(SWFParseError, match="at most 21 fields"):
            SWFRecord.parse(line)

    def test_error_types_are_compatible(self) -> None:
        # typed, but still a ValueError for pre-existing call sites
        with pytest.raises(ValueError):
            read_swf(io.StringIO("x y\n"))
        with pytest.raises(WorkloadFormatError):
            read_swf(io.StringIO("x y\n"))

    def test_comments_and_blanks_are_not_errors(self) -> None:
        stream = io.StringIO(f"; comment\n\n  \n{GOOD_SWF}\n")
        assert len(read_swf(stream)) == 1

    def test_archive_loader_passes_strict_through(self, tmp_path: Path) -> None:
        path = tmp_path / "dirty.swf"
        path.write_text(f"; MaxProcs: 320\n{GOOD_SWF}\ngarbage\n{GOOD_SWF2}\n")
        with pytest.raises(SWFParseError):
            load_swf_workload(path)
        with pytest.warns(RuntimeWarning):
            workload, report = load_swf_workload(path, strict=False)
        assert report.kept == 2


class TestCWF:
    def test_unknown_request_type(self) -> None:
        bad = _ecc_line(1).rsplit(" ", 2)[0] + " XX 30"
        stream = io.StringIO(f"{_submission(1)}\n{bad}\n")
        with pytest.raises(CWFParseError) as info:
            read_cwf(stream)
        assert info.value.line == 2
        assert "unknown code" in str(info.value)

    def test_duplicate_submission(self) -> None:
        stream = io.StringIO(f"{_submission(1)}\n{_submission(1)}\n")
        with pytest.raises(CWFParseError, match="duplicate submission") as info:
            parse_cwf_workload(stream)
        assert info.value.line == 2

    def test_dangling_ecc(self) -> None:
        stream = io.StringIO(f"{_submission(1)}\n{_ecc_line(99)}\n")
        with pytest.raises(CWFParseError, match="unknown job 99"):
            parse_cwf_workload(stream)

    def test_job_constructor_errors_are_wrapped(self) -> None:
        # a dedicated job whose requested start precedes its submission
        base = SWFRecord(job_id=1, submit=100.0, run_time=50.0, requested_procs=32)
        line = f"{base.to_line()} 5"
        with pytest.raises(CWFParseError) as info:
            parse_cwf_workload(io.StringIO(line + "\n"))
        assert info.value.line == 1

    def test_non_positive_ecc_amount(self) -> None:
        bad = _ecc_line(1).rsplit(" ", 1)[0] + " -1"
        stream = io.StringIO(f"{_submission(1)}\n{bad}\n")
        with pytest.raises(CWFParseError, match="non-positive amount"):
            parse_cwf_workload(stream)

    def test_lenient_mode_keeps_good_records(self) -> None:
        stream = io.StringIO(
            f"{_submission(1)}\nnot a record at all x\n"
            f"{_submission(1)}\n{_ecc_line(1)}\n{_ecc_line(42)}\n"
        )
        with pytest.warns(RuntimeWarning):
            jobs, eccs = parse_cwf_workload(stream, strict=False)
        assert [job.job_id for job in jobs] == [1]
        assert [ecc.job_id for ecc in eccs] == [1]

    def test_strict_from_file_names_the_file(self, tmp_path: Path) -> None:
        path = tmp_path / "work.cwf"
        path.write_text(f"{_submission(1)}\nbroken !\n")
        with pytest.raises(CWFParseError) as info:
            parse_cwf_workload(path)
        assert info.value.source == str(path)
        assert info.value.line == 2
