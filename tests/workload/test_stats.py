"""Tests for workload characterization."""

from __future__ import annotations

import pytest

from repro.workload.ecc import ECC, ECCKind
from repro.workload.stats import characterize
from tests.conftest import batch_job, dedicated_job, make_workload


class TestCharacterize:
    def test_counts_and_classes(self):
        workload = make_workload(
            [
                batch_job(1, submit=0.0, num=32, estimate=100.0),
                batch_job(2, submit=10.0, num=320, estimate=200.0),
                dedicated_job(3, submit=20.0, num=64, requested_start=100.0),
            ],
            eccs=[ECC(job_id=1, issue_time=5.0, kind=ECCKind.EXTEND_TIME, amount=10.0)],
        )
        stats = characterize(workload)
        assert stats.n_jobs == 3
        assert stats.n_batch == 2
        assert stats.n_dedicated == 1
        assert stats.n_eccs == 1
        assert stats.ecc_kinds == {"ET": 1}
        assert stats.machine_size == 320 and stats.granularity == 32

    def test_small_share_uses_paper_boundary(self):
        workload = make_workload(
            [
                batch_job(1, num=96),  # small (<= 96)
                batch_job(2, submit=1.0, num=128),  # large
            ]
        )
        stats = characterize(workload)
        assert stats.p_small_empirical == 0.5

    def test_size_histogram(self):
        workload = make_workload(
            [batch_job(1, num=32), batch_job(2, submit=1.0, num=32), batch_job(3, submit=2.0, num=64)]
        )
        stats = characterize(workload)
        assert stats.size_histogram == {32: 2, 64: 1}

    def test_means_match_load_helpers(self):
        workload = make_workload(
            [batch_job(1, num=32, estimate=100.0), batch_job(2, submit=1.0, num=96, estimate=300.0)]
        )
        stats = characterize(workload)
        assert stats.mean_size == 64.0
        assert stats.mean_runtime == 200.0
        assert stats.offered_load == pytest.approx(workload.offered_load())

    def test_interarrival_stats(self):
        workload = make_workload(
            [batch_job(i, submit=10.0 * i, num=32) for i in range(1, 6)]
        )
        stats = characterize(workload)
        assert stats.interarrival_mean == pytest.approx(10.0)
        assert stats.interarrival_cv == pytest.approx(0.0)

    def test_render_contains_key_lines(self, small_hetero_workload):
        text = characterize(small_hetero_workload).render()
        assert "jobs:" in text
        assert "offered load:" in text
        assert "size histogram:" in text

    def test_empty_workload(self):
        stats = characterize(make_workload([]))
        assert stats.n_jobs == 0
        assert stats.mean_size == 0.0
        assert stats.p_small_empirical == 0.0
