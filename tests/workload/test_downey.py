"""Tests for the Downey workload model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.downey import DowneyConfig, DowneyModel, calibrate_downey


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"machine_size": 0},
            {"machine_size": 100, "granularity": 32},
            {"lifetime_lo": 10.0, "lifetime_hi": 5.0},
            {"mean_interarrival": 0.0},
            {"max_parallelism_fraction": 0.0},
            {"max_parallelism_fraction": 1.5},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DowneyConfig(**kwargs)

    def test_load_knob_copy(self):
        config = DowneyConfig().with_mean_interarrival(60.0)
        assert config.mean_interarrival == 60.0


class TestSampling:
    def test_parallelism_bounds_and_granularity(self, rng):
        model = DowneyModel(DowneyConfig())
        for _ in range(500):
            num = model.sample_parallelism(rng)
            assert 32 <= num <= 320
            assert num % 32 == 0

    def test_parallelism_skews_small(self, rng):
        """Log-uniform: small requests dominate."""
        model = DowneyModel(DowneyConfig())
        sizes = [model.sample_parallelism(rng) for _ in range(3000)]
        small = sum(1 for s in sizes if s <= 96) / len(sizes)
        assert small > 0.5

    def test_lifetime_log_uniform_bounds(self, rng):
        config = DowneyConfig(lifetime_lo=100.0, lifetime_hi=1.0e5)
        model = DowneyModel(config)
        samples = [model.sample_lifetime(rng) for _ in range(2000)]
        assert all(100.0 <= s <= 1.0e5 for s in samples)
        # Log-space median near the geometric mean of the bounds.
        assert np.median(samples) == pytest.approx(np.sqrt(100.0 * 1.0e5), rel=0.4)

    def test_parallelism_cap(self, rng):
        model = DowneyModel(DowneyConfig(max_parallelism_fraction=0.5))
        assert all(model.sample_parallelism(rng) <= 160 for _ in range(300))


class TestGeneration:
    def test_complete_workload(self, rng):
        workload = DowneyModel().generate(100, rng)
        assert len(workload) == 100
        assert workload.granularity == 32
        submits = [j.submit for j in workload.jobs]
        assert submits == sorted(submits)
        for job in workload.jobs:
            assert job.estimate >= 1.0

    def test_runtime_is_lifetime_over_parallelism(self, rng):
        """Bigger partitions of the same work finish faster — check the
        aggregate correlation sign."""
        workload = DowneyModel().generate(2000, rng)
        small = [j.estimate for j in workload.jobs if j.num <= 64]
        large = [j.estimate for j in workload.jobs if j.num >= 256]
        assert np.median(small) > np.median(large)

    def test_determinism(self):
        a = DowneyModel().generate(50, np.random.default_rng(4))
        b = DowneyModel().generate(50, np.random.default_rng(4))
        assert [(j.submit, j.num, j.estimate) for j in a.jobs] == [
            (j.submit, j.num, j.estimate) for j in b.jobs
        ]

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            DowneyModel().generate(-1, rng)


class TestCalibration:
    def test_hits_target_load(self):
        workload = calibrate_downey(0.8, n_jobs=150, seed=3)
        assert workload.offered_load() == pytest.approx(0.8, abs=0.06)

    def test_simulatable_under_all_batch_families(self):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        workload = calibrate_downey(0.9, n_jobs=80, seed=5)
        for name in ("EASY", "LOS", "Delayed-LOS"):
            metrics = simulate(workload, make_scheduler(name))
            assert metrics.n_jobs == 80

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            calibrate_downey(0.0, n_jobs=10, seed=1)
