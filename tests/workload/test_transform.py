"""Tests for workload transformations (slice/merge/filter/head)."""

from __future__ import annotations

import pytest

from repro.workload.ecc import ECC, ECCKind
from repro.workload.transform import (
    filter_jobs,
    head,
    make_malleable,
    merge,
    time_slice,
)
from tests.conftest import batch_job, dedicated_job, make_workload


def et(job_id, issue):
    return ECC(job_id=job_id, issue_time=issue, kind=ECCKind.EXTEND_TIME, amount=10.0)


@pytest.fixture
def workload():
    return make_workload(
        [
            batch_job(1, submit=100.0, num=32),
            batch_job(2, submit=200.0, num=64),
            dedicated_job(3, submit=300.0, num=96, requested_start=400.0),
            batch_job(4, submit=500.0, num=128),
        ],
        eccs=[et(1, 150.0), et(4, 600.0)],
    )


class TestTimeSlice:
    def test_window_and_rebase(self, workload):
        sliced = time_slice(workload, 200.0, 500.0)
        assert [j.job_id for j in sliced.jobs] == [2, 3]
        assert [j.submit for j in sliced.jobs] == [0.0, 100.0]
        # Dedicated offsets preserved relative to submission.
        assert sliced.jobs[1].requested_start == 200.0
        # ECCs of excluded jobs dropped.
        assert sliced.eccs == []

    def test_no_rebase(self, workload):
        sliced = time_slice(workload, 200.0, 500.0, rebase=False)
        assert [j.submit for j in sliced.jobs] == [200.0, 300.0]

    def test_keeps_eccs_of_kept_jobs(self, workload):
        sliced = time_slice(workload, 0.0, 200.0)
        assert [j.job_id for j in sliced.jobs] == [1]
        assert len(sliced.eccs) == 1
        assert sliced.eccs[0].issue_time == 150.0  # shifted by -0

    def test_empty_window_rejected(self, workload):
        with pytest.raises(ValueError, match="empty window"):
            time_slice(workload, 500.0, 500.0)

    def test_simulatable(self, workload):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        sliced = time_slice(workload, 100.0, 400.0)
        metrics = simulate(sliced, make_scheduler("Hybrid-LOS"))
        assert metrics.n_jobs == len(sliced)


class TestFilterAndHead:
    def test_filter_by_size(self, workload):
        small = filter_jobs(workload, lambda j: j.num <= 64)
        assert [j.job_id for j in small.jobs] == [1, 2]
        assert len(small.eccs) == 1  # job 4's ECC dropped

    def test_head(self, workload):
        first_two = head(workload, 2)
        assert [j.job_id for j in first_two.jobs] == [1, 2]
        assert head(workload, 0).jobs == []

    def test_head_negative_rejected(self, workload):
        with pytest.raises(ValueError, match="non-negative"):
            head(workload, -1)

    def test_sources_not_mutated(self, workload):
        filter_jobs(workload, lambda j: False)
        assert len(workload.jobs) == 4


class TestMerge:
    def test_disjoint_ids_kept(self):
        a = make_workload([batch_job(1, submit=0.0)])
        b = make_workload([batch_job(2, submit=10.0)])
        merged = merge([a, b])
        assert sorted(j.job_id for j in merged.jobs) == [1, 2]

    def test_colliding_ids_remapped_with_eccs(self):
        a = make_workload([batch_job(1, submit=0.0)], eccs=[et(1, 5.0)])
        b = make_workload([batch_job(1, submit=10.0)], eccs=[et(1, 15.0)])
        merged = merge([a, b])
        ids = sorted(j.job_id for j in merged.jobs)
        assert len(set(ids)) == 2
        # Each ECC still targets its own (possibly remapped) job.
        ecc_targets = sorted(e.job_id for e in merged.eccs)
        assert ecc_targets == ids

    def test_geometry_defaults_to_maxima(self):
        a = make_workload([batch_job(1, num=32)], machine_size=320, granularity=32)
        b = make_workload([batch_job(2, num=64)], machine_size=640, granularity=32)
        merged = merge([a, b])
        assert merged.machine_size == 640
        assert merged.granularity == 32

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge([])

    def test_merged_simulatable(self, workload):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        merged = merge([workload, workload])
        assert len(merged) == 8
        metrics = simulate(merged, make_scheduler("Hybrid-LOS"))
        assert metrics.n_jobs == 8


class TestCancellationPreserved:
    def test_slice_shifts_cancel_at(self):
        from repro.workload.job import Job

        job = Job(job_id=1, submit=100.0, num=32, estimate=50.0, cancel_at=180.0)
        workload = make_workload([job])
        sliced = time_slice(workload, 100.0, 200.0)
        assert sliced.jobs[0].cancel_at == 80.0

    def test_scale_arrivals_preserves_patience(self):
        from repro.workload.job import Job

        job = Job(job_id=1, submit=100.0, num=32, estimate=50.0, cancel_at=180.0)
        workload = make_workload([job])
        scaled = workload.scale_arrivals(2.0)
        # Submission moves to 200; patience (80s) is preserved.
        assert scaled.jobs[0].cancel_at == 280.0


class TestMakeMalleable:
    def test_full_fraction_covers_every_batch_job(self, workload):
        out = make_malleable(workload, 1.0)
        for job in out.jobs:
            if job.is_dedicated:
                assert not job.is_malleable
            else:
                assert job.is_malleable
                assert job.min_procs <= job.num <= job.max_procs
                assert job.min_procs <= job.pref_procs <= job.max_procs
                assert job.max_procs <= workload.machine_size

    def test_zero_fraction_is_identity(self, workload):
        out = make_malleable(workload, 0.0)
        assert all(not job.is_malleable for job in out.jobs)
        assert [j.job_id for j in out.jobs] == [j.job_id for j in workload.jobs]

    def test_deterministic_per_seed(self, workload):
        a = make_malleable(workload, 0.5, seed=7)
        b = make_malleable(workload, 0.5, seed=7)
        ranges = lambda w: [(j.min_procs, j.pref_procs, j.max_procs) for j in w.jobs]
        assert ranges(a) == ranges(b)

    def test_source_is_not_mutated(self, workload):
        make_malleable(workload, 1.0)
        assert all(not job.is_malleable for job in workload.jobs)

    def test_eccs_are_preserved(self, workload):
        assert make_malleable(workload, 1.0).eccs == workload.eccs

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": 1.5},
            {"fraction": -0.1},
            {"min_factor": 0.0},
            {"min_factor": 1.5},
            {"max_factor": 0.5},
        ],
    )
    def test_validation(self, workload, kwargs):
        with pytest.raises(ValueError):
            make_malleable(workload, **{"fraction": 1.0, **kwargs})
