"""Tests for the CWF workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.ecc import ECCKind
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.job import JobKind
from repro.workload.twostage import TwoStageSizeConfig
from tests.conftest import batch_job


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_jobs": -1},
            {"p_dedicated": 1.5},
            {"p_extend": -0.2},
            {"p_reduce": 2.0},
            {"estimate_factor": 0.5},
            {"dedicated_start_mean": 0.0},
            {"ecc_amount_mean": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_machine_must_fit_largest_job(self):
        with pytest.raises(ValueError, match="cannot fit"):
            GeneratorConfig(machine_size=256)  # largest two-stage job is 320

    def test_knob_copies(self):
        config = GeneratorConfig()
        assert config.with_beta_arr(0.42).lublin.beta_arr == 0.42
        assert config.with_p_small(0.8).size.p_small == 0.8
        # originals untouched (frozen dataclasses)
        assert config.lublin.beta_arr != 0.42 or config.size.p_small != 0.8


class TestGeneration:
    def test_batch_only_by_default(self, rng):
        workload = CWFWorkloadGenerator(GeneratorConfig(n_jobs=80)).generate(rng)
        assert len(workload) == 80
        assert not workload.dedicated_jobs
        assert not workload.eccs
        assert workload.machine_size == 320
        assert workload.granularity == 32

    def test_jobs_sorted_and_ids_unique(self, rng):
        workload = CWFWorkloadGenerator(GeneratorConfig(n_jobs=100)).generate(rng)
        submits = [j.submit for j in workload.jobs]
        assert submits == sorted(submits)
        assert len({j.job_id for j in workload.jobs}) == 100

    def test_sizes_and_times_valid(self, rng):
        workload = CWFWorkloadGenerator(GeneratorConfig(n_jobs=120)).generate(rng)
        for job in workload.jobs:
            assert job.num % 32 == 0 and 32 <= job.num <= 320
            assert job.estimate >= 1 and float(job.estimate).is_integer()
            assert job.submit >= 0 and float(job.submit).is_integer()

    def test_dedicated_fraction(self, rng):
        config = GeneratorConfig(n_jobs=600, p_dedicated=0.5)
        workload = CWFWorkloadGenerator(config).generate(rng)
        fraction = len(workload.dedicated_jobs) / len(workload)
        assert fraction == pytest.approx(0.5, abs=0.07)
        for job in workload.dedicated_jobs:
            assert job.requested_start is not None
            assert job.requested_start > job.submit

    def test_ecc_injection_rates(self, rng):
        config = GeneratorConfig(n_jobs=800, p_extend=0.2, p_reduce=0.1)
        workload = CWFWorkloadGenerator(config).generate(rng)
        ets = [e for e in workload.eccs if e.kind is ECCKind.EXTEND_TIME]
        rts = [e for e in workload.eccs if e.kind is ECCKind.REDUCE_TIME]
        assert len(ets) / 800 == pytest.approx(0.2, abs=0.05)
        assert len(rts) / 800 == pytest.approx(0.1, abs=0.04)
        job_ids = {j.job_id for j in workload.jobs}
        for ecc in workload.eccs:
            assert ecc.job_id in job_ids
            assert ecc.amount > 0

    def test_ecc_issue_after_submit(self, rng):
        config = GeneratorConfig(n_jobs=300, p_extend=0.5)
        workload = CWFWorkloadGenerator(config).generate(rng)
        by_id = {j.job_id: j for j in workload.jobs}
        assert workload.eccs
        for ecc in workload.eccs:
            assert ecc.issue_time >= by_id[ecc.job_id].submit

    def test_estimate_factor_separates_estimate_from_actual(self, rng):
        config = GeneratorConfig(n_jobs=50, estimate_factor=2.0)
        workload = CWFWorkloadGenerator(config).generate(rng)
        for job in workload.jobs:
            assert job.estimate == pytest.approx(2.0 * job.actual, abs=1.0)

    def test_determinism(self):
        config = GeneratorConfig(n_jobs=60, p_dedicated=0.3, p_extend=0.2)
        a = CWFWorkloadGenerator(config).generate(np.random.default_rng(5))
        b = CWFWorkloadGenerator(config).generate(np.random.default_rng(5))
        assert [(j.job_id, j.submit, j.num, j.estimate) for j in a.jobs] == [
            (j.job_id, j.submit, j.num, j.estimate) for j in b.jobs
        ]
        assert a.eccs == b.eccs


class TestWorkloadOperations:
    def test_fresh_jobs_are_independent_copies(self, small_batch_workload):
        first = small_batch_workload.fresh_jobs()
        first[0].start_time = 123.0
        second = small_batch_workload.fresh_jobs()
        assert second[0].start_time is None

    def test_scale_arrivals_changes_load_not_packing(self, small_batch_workload):
        stretched = small_batch_workload.scale_arrivals(2.0)
        assert stretched.offered_load() < small_batch_workload.offered_load()
        assert [j.num for j in stretched.jobs] == [j.num for j in small_batch_workload.jobs]
        assert [j.estimate for j in stretched.jobs] == [
            j.estimate for j in small_batch_workload.jobs
        ]
        assert [j.submit for j in stretched.jobs] == [
            j.submit * 2.0 for j in small_batch_workload.jobs
        ]

    def test_scale_arrivals_preserves_dedicated_offsets(self, rng):
        config = GeneratorConfig(n_jobs=60, p_dedicated=0.5)
        workload = CWFWorkloadGenerator(config).generate(rng)
        scaled = workload.scale_arrivals(3.0)
        for before, after in zip(workload.dedicated_jobs, scaled.dedicated_jobs):
            assert after.requested_start - after.submit == pytest.approx(
                before.requested_start - before.submit
            )

    def test_scale_arrivals_rejects_nonpositive(self, small_batch_workload):
        with pytest.raises(ValueError, match="positive"):
            small_batch_workload.scale_arrivals(0.0)

    def test_batch_and_dedicated_partitions(self, small_hetero_workload):
        batch = small_hetero_workload.batch_jobs
        dedicated = small_hetero_workload.dedicated_jobs
        assert len(batch) + len(dedicated) == len(small_hetero_workload)
        assert all(not j.is_dedicated for j in batch)
        assert all(j.is_dedicated for j in dedicated)

    def test_workload_sorts_inputs(self):
        workload = Workload(
            jobs=[batch_job(2, submit=50.0), batch_job(1, submit=10.0)],
            machine_size=320,
            granularity=32,
        )
        assert [j.job_id for j in workload.jobs] == [1, 2]


class TestCancellationKnob:
    def test_p_cancel_marks_jobs(self, rng):
        config = GeneratorConfig(n_jobs=600, p_cancel=0.3)
        workload = CWFWorkloadGenerator(config).generate(rng)
        marked = [j for j in workload.jobs if j.cancel_at is not None]
        assert len(marked) / 600 == pytest.approx(0.3, abs=0.06)
        for job in marked:
            assert job.cancel_at > job.submit

    def test_p_cancel_zero_marks_none(self, rng):
        workload = CWFWorkloadGenerator(GeneratorConfig(n_jobs=100)).generate(rng)
        assert all(j.cancel_at is None for j in workload.jobs)

    def test_invalid_p_cancel_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(p_cancel=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(cancel_mean_fraction=0.0)

    def test_cancelled_workload_simulates(self, rng):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        config = GeneratorConfig(n_jobs=100, p_cancel=0.3, cancel_mean_fraction=0.1)
        workload = CWFWorkloadGenerator(config).generate(rng)
        metrics = simulate(workload, make_scheduler("Delayed-LOS"))
        assert metrics.n_jobs + metrics.n_cancelled == 100
