"""Tests for workload validation."""

from __future__ import annotations

from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import Workload
from repro.workload.validate import (
    Severity,
    format_issues,
    has_errors,
    validate_workload,
)
from tests.conftest import batch_job, make_workload


def codes(issues):
    return {issue.code for issue in issues}


class TestCleanWorkloads:
    def test_generated_workload_is_clean(self, small_batch_workload):
        issues = validate_workload(small_batch_workload)
        assert not has_errors(issues)
        assert not codes(issues) & {"job-too-large", "granularity", "duplicate-id"}

    def test_format_clean(self):
        assert "no issues" in format_issues([])


class TestErrors:
    def test_oversized_job(self):
        workload = Workload(jobs=[batch_job(1, num=640)], machine_size=320, granularity=32)
        issues = validate_workload(workload)
        assert "job-too-large" in codes(issues)
        assert has_errors(issues)

    def test_granularity_violation(self):
        workload = Workload(jobs=[batch_job(1, num=33)], machine_size=320, granularity=32)
        assert "granularity" in codes(validate_workload(workload))

    def test_duplicate_ids(self):
        workload = make_workload([batch_job(1)])
        workload.jobs.append(batch_job(1, submit=10.0))
        assert "duplicate-id" in codes(validate_workload(workload))

    def test_dangling_ecc(self):
        workload = make_workload(
            [batch_job(1)],
            eccs=[ECC(job_id=9, issue_time=5.0, kind=ECCKind.EXTEND_TIME, amount=10.0)],
        )
        assert "dangling-ecc" in codes(validate_workload(workload))

    def test_ecc_before_submission(self):
        workload = make_workload(
            [batch_job(1, submit=100.0)],
            eccs=[ECC(job_id=1, issue_time=5.0, kind=ECCKind.EXTEND_TIME, amount=10.0)],
        )
        issues = validate_workload(workload)
        assert "ecc-before-submit" in codes(issues)
        assert has_errors(issues)


class TestWarnings:
    def test_under_estimate(self):
        workload = make_workload([batch_job(1, estimate=100.0, actual=200.0)])
        issues = validate_workload(workload)
        assert "under-estimate" in codes(issues)
        assert not has_errors(issues)  # warnings only

    def test_huge_runtime(self):
        workload = make_workload([batch_job(1, estimate=10 * 86400.0)])
        assert "huge-runtime" in codes(validate_workload(workload))

    def test_huge_ecc_amount(self):
        workload = make_workload(
            [batch_job(1, estimate=10.0)],
            eccs=[ECC(job_id=1, issue_time=1.0, kind=ECCKind.EXTEND_TIME, amount=5000.0)],
        )
        assert "ecc-huge-amount" in codes(validate_workload(workload))

    def test_extreme_load(self):
        jobs = [
            batch_job(i, submit=0.0, num=320, estimate=1000.0) for i in range(1, 6)
        ]
        workload = make_workload(jobs)
        assert "extreme-load" in codes(validate_workload(workload))

    def test_format_lists_all(self):
        workload = make_workload([batch_job(1, estimate=100.0, actual=200.0)])
        text = format_issues(validate_workload(workload))
        assert "1 issue(s)" in text
        assert "under-estimate" in text
