"""Statistical tests for the distribution building blocks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workload.distributions import (
    HyperGamma,
    exponential,
    gamma,
    log2_gamma_mean,
    two_stage_uniform,
)


class TestTwoStageUniform:
    def test_bounds(self, rng):
        samples = [two_stage_uniform(1.0, 3.0, 10.0, 0.5, rng) for _ in range(2000)]
        assert all(1.0 <= s <= 10.0 for s in samples)

    def test_mixing_probability(self, rng):
        samples = [two_stage_uniform(0.0, 1.0, 2.0, 0.8, rng) for _ in range(8000)]
        low_fraction = sum(1 for s in samples if s <= 1.0) / len(samples)
        assert low_fraction == pytest.approx(0.8, abs=0.03)

    def test_prob_extremes(self, rng):
        assert all(
            two_stage_uniform(0.0, 1.0, 2.0, 1.0, rng) <= 1.0 for _ in range(200)
        )
        assert all(
            two_stage_uniform(0.0, 1.0, 2.0, 0.0, rng) >= 1.0 for _ in range(200)
        )

    def test_invalid_ordering_rejected(self, rng):
        with pytest.raises(ValueError, match="low <= med <= high"):
            two_stage_uniform(3.0, 1.0, 5.0, 0.5, rng)

    def test_invalid_prob_rejected(self, rng):
        with pytest.raises(ValueError, match="prob"):
            two_stage_uniform(0.0, 1.0, 2.0, 1.5, rng)


class TestGamma:
    def test_mean_matches_shape_times_scale(self, rng):
        samples = [gamma(4.2, 0.94, rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(4.2 * 0.94, rel=0.05)

    def test_positive(self, rng):
        assert all(gamma(2.0, 1.0, rng) > 0 for _ in range(100))

    @pytest.mark.parametrize("shape,scale", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_invalid_params_rejected(self, rng, shape, scale):
        with pytest.raises(ValueError):
            gamma(shape, scale, rng)


class TestHyperGamma:
    def test_mixture_mean(self, rng):
        hg = HyperGamma(4.2, 0.94, 312.0, 0.03)
        samples = [hg.sample(0.5, rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(hg.mean(0.5), rel=0.05)

    def test_p_extremes_select_components(self, rng):
        hg = HyperGamma(100.0, 0.01, 400.0, 0.1)  # means 1 and 40
        only_first = [hg.sample(1.0, rng) for _ in range(500)]
        only_second = [hg.sample(0.0, rng) for _ in range(500)]
        assert np.mean(only_first) == pytest.approx(1.0, rel=0.2)
        assert np.mean(only_second) == pytest.approx(40.0, rel=0.2)

    def test_p_clipped_outside_unit_interval(self, rng):
        hg = HyperGamma(100.0, 0.01, 400.0, 0.1)
        # p = -3 behaves as p = 0 (second component only).
        assert np.mean([hg.sample(-3.0, rng) for _ in range(300)]) > 20
        assert hg.mean(-3.0) == hg.mean(0.0)
        assert hg.mean(7.0) == hg.mean(1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            HyperGamma(0.0, 1.0, 1.0, 1.0)


class TestLog2GammaMean:
    def test_matches_empirical_mean(self, rng):
        shape, scale = 13.2303, 0.45
        theory = log2_gamma_mean(shape, scale)
        samples = [2.0 ** gamma(shape, scale, rng) for _ in range(40000)]
        assert np.mean(samples) == pytest.approx(theory, rel=0.1)

    def test_divergence_boundary(self):
        # MGF at ln2 diverges when scale >= 1/ln2.
        assert log2_gamma_mean(1.0, 1.0 / math.log(2.0)) == math.inf
        assert math.isfinite(log2_gamma_mean(1.0, 1.0))


class TestExponential:
    def test_mean(self, rng):
        samples = [exponential(600.0, rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(600.0, rel=0.05)

    def test_invalid_mean_rejected(self, rng):
        with pytest.raises(ValueError, match="positive"):
            exponential(0.0, rng)
