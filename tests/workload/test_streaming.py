"""Streaming ingestion vs. eager loading: the byte-identity contract.

The streaming readers (:mod:`repro.workload.streaming`) exist purely
for memory; they must never change *what* is simulated.  These tests
pin that: lazily read jobs equal the eager readers' byte for byte,
the synthetic stream replicates the eager generator's RNG draws
exactly, and malformed input behaves identically under strict/skip.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.workload.archive import load_swf_workload
from repro.workload.cwf import CWFParseError, CWFRecord, parse_cwf_workload, write_cwf
from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.job import Job
from repro.workload.lublin import LublinConfig
from repro.workload.streaming import (
    StreamOrderError,
    SyntheticWorkloadStream,
    iter_jobs,
    stream_cwf_workload,
    stream_swf_workload,
)
from repro.workload.swf import SWFRecord, write_swf


def _swf_record(job_id, submit, procs=4, runtime=100.0, status=1):
    return SWFRecord(
        job_id=job_id,
        submit=submit,
        run_time=runtime,
        requested_time=runtime,
        requested_procs=procs,
        status=status,
    )


def _job_key(job: Job):
    return (
        job.job_id,
        job.submit,
        job.num,
        job.original_estimate,
        job.actual,
        job.kind,
        job.requested_start,
        job.cancel_at,
    )


@pytest.fixture
def swf_file(tmp_path):
    records = [_swf_record(i, submit=10.0 * i, procs=2 + i % 5) for i in range(1, 41)]
    path = tmp_path / "log.swf"
    write_swf(records, path, header=("MaxProcs: 64",))
    return path


class TestIterJobs:
    def test_matches_eager_reader(self, swf_file):
        from repro.workload.swf import read_swf

        eager = [r.to_job() for r in read_swf(swf_file)]
        streamed = list(iter_jobs(swf_file))
        assert [_job_key(j) for j in streamed] == [_job_key(j) for j in eager]

    def test_reorders_local_swaps_within_lookahead(self, tmp_path):
        records = [
            _swf_record(1, submit=0.0),
            _swf_record(3, submit=50.0),   # swapped pair
            _swf_record(2, submit=20.0),
            _swf_record(4, submit=80.0),
        ]
        path = tmp_path / "swapped.swf"
        write_swf(records, path)
        submits = [j.submit for j in iter_jobs(path, lookahead=4)]
        assert submits == sorted(submits)

    def test_disorder_beyond_lookahead_raises(self, tmp_path):
        records = [_swf_record(i, submit=100.0 * i) for i in range(1, 10)]
        records.append(_swf_record(99, submit=0.0))  # 900s out of order
        path = tmp_path / "disordered.swf"
        write_swf(records, path)
        with pytest.raises(StreamOrderError):
            list(iter_jobs(path, lookahead=2))
        # A buffer deep enough to hold the run absorbs it.
        submits = [j.submit for j in iter_jobs(path, lookahead=16)]
        assert submits == sorted(submits)

    def test_strict_raises_on_malformed_line(self, tmp_path):
        path = tmp_path / "dirty.swf"
        path.write_text(
            _swf_record(1, submit=0.0).to_line() + "\n"
            + "not a record at all x y z\n"
            + _swf_record(2, submit=10.0).to_line() + "\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError):
            list(iter_jobs(path))
        with pytest.warns(RuntimeWarning):
            jobs = list(iter_jobs(path, strict=False))
        assert [j.job_id for j in jobs] == [1, 2]

    def test_unknown_suffix_needs_fmt(self, tmp_path):
        path = tmp_path / "log.dat"
        write_swf([_swf_record(1, submit=0.0)], path)
        with pytest.raises(ValueError):
            list(iter_jobs(path))
        assert len(list(iter_jobs(path, fmt="swf"))) == 1


class TestStreamSWFWorkload:
    def test_matches_eager_loader(self, swf_file):
        workload, _report = load_swf_workload(swf_file, granularity=2)
        streamed = list(stream_swf_workload(swf_file, granularity=2))
        assert [_job_key(j) for j in streamed] == [
            _job_key(j) for j in workload.jobs
        ]

    def test_header_machine_size_and_oversized_skip(self, tmp_path):
        records = [
            _swf_record(1, submit=0.0, procs=4),
            _swf_record(2, submit=5.0, procs=500),  # larger than MaxProcs
            _swf_record(3, submit=9.0, procs=8),
        ]
        path = tmp_path / "sized.swf"
        write_swf(records, path, header=("MaxProcs: 64",))
        stream = stream_swf_workload(path)
        assert stream.machine_size == 64
        assert [j.job_id for j in stream] == [1, 3]

    def test_rebase_shifts_first_kept_job_to_zero(self, tmp_path):
        records = [_swf_record(1, submit=5000.0), _swf_record(2, submit=5600.0)]
        path = tmp_path / "late.swf"
        write_swf(records, path, header=("MaxProcs: 64",))
        jobs = list(stream_swf_workload(path))
        assert [j.submit for j in jobs] == [0.0, 600.0]

    def test_no_machine_size_anywhere_raises(self, tmp_path):
        path = tmp_path / "bare.swf"
        write_swf([_swf_record(1, submit=0.0)], path)
        with pytest.raises(ValueError):
            stream_swf_workload(path)


class TestStreamCWFWorkload:
    @pytest.fixture
    def cwf_file(self, tmp_path):
        records = [
            CWFRecord(job_id=1, submit=0.0, run_time=100.0,
                      requested_time=100.0, requested_procs=4, status=1),
            CWFRecord(job_id=2, submit=30.0, run_time=50.0,
                      requested_time=50.0, requested_procs=2, status=1),
        ]
        ecc = CWFRecord.from_ecc(
            ECC(job_id=1, issue_time=40.0, kind=ECCKind.EXTEND_TIME, amount=20.0)
        )
        path = tmp_path / "log.cwf"
        write_cwf([records[0], records[1], ecc], path)
        return path

    def test_matches_eager_parse(self, cwf_file):
        jobs, eccs = parse_cwf_workload(cwf_file)
        items = list(stream_cwf_workload(cwf_file))
        streamed_jobs = [i for i in items if isinstance(i, Job)]
        streamed_eccs = [i for i in items if isinstance(i, ECC)]
        assert [_job_key(j) for j in streamed_jobs] == [_job_key(j) for j in jobs]
        assert [(e.job_id, e.issue_time, e.kind, e.amount) for e in streamed_eccs] \
            == [(e.job_id, e.issue_time, e.kind, e.amount) for e in eccs]

    def test_ecc_before_submission_raises(self, tmp_path):
        ecc = CWFRecord.from_ecc(
            ECC(job_id=9, issue_time=5.0, kind=ECCKind.EXTEND_TIME, amount=10.0)
        )
        path = tmp_path / "dangling.cwf"
        write_cwf([ecc], path)
        with pytest.raises(CWFParseError):
            list(stream_cwf_workload(path))
        with pytest.warns(RuntimeWarning):
            assert list(stream_cwf_workload(path, strict=False)) == []

    def test_out_of_order_records_raise(self, tmp_path):
        records = [
            CWFRecord(job_id=1, submit=100.0, run_time=10.0,
                      requested_time=10.0, requested_procs=1, status=1),
            CWFRecord(job_id=2, submit=50.0, run_time=10.0,
                      requested_time=10.0, requested_procs=1, status=1),
        ]
        path = tmp_path / "unsorted.cwf"
        write_cwf(records, path)
        with pytest.raises(CWFParseError):
            list(stream_cwf_workload(path))


class TestSyntheticStream:
    CONFIG = GeneratorConfig(
        n_jobs=200, p_dedicated=0.2, p_extend=0.25, p_reduce=0.15, p_cancel=0.05
    )

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bitwise_identical_to_eager_generate(self, seed):
        eager = CWFWorkloadGenerator(self.CONFIG).generate(
            np.random.default_rng(seed)
        )
        items = list(SyntheticWorkloadStream(self.CONFIG, seed=seed).stream())
        jobs = [i for i in items if isinstance(i, Job)]
        eccs = [i for i in items if isinstance(i, ECC)]
        assert [_job_key(j) for j in jobs] == [_job_key(j) for j in eager.jobs]
        assert sorted((e.issue_time, e.job_id, e.kind.value, e.amount) for e in eccs) \
            == sorted(
                (e.issue_time, e.job_id, e.kind.value, e.amount)
                for e in eager.eccs
            )

    def test_stream_is_time_ordered_with_eccs_after_their_jobs(self):
        items = list(SyntheticWorkloadStream(self.CONFIG, seed=3).stream())
        now = float("-inf")
        seen: set[int] = set()
        for item in items:
            time = item.submit if isinstance(item, Job) else item.issue_time
            assert time >= now
            now = time
            if isinstance(item, Job):
                seen.add(item.job_id)
            else:
                assert item.job_id in seen

    def test_quota_spill_loop_matches_eager(self):
        config = dataclasses.replace(
            self.CONFIG, lublin=LublinConfig(quota_enabled=True), n_jobs=150
        )
        eager = CWFWorkloadGenerator(config).generate(np.random.default_rng(5))
        jobs = [
            i for i in SyntheticWorkloadStream(config, seed=5).stream()
            if isinstance(i, Job)
        ]
        assert [j.submit for j in jobs] == [j.submit for j in eager.jobs]

    def test_stream_metadata(self):
        stream = SyntheticWorkloadStream(self.CONFIG, seed=0).stream()
        assert stream.n_jobs_hint == self.CONFIG.n_jobs
        assert stream.machine_size == self.CONFIG.machine_size
        assert "synthetic" in stream.description
