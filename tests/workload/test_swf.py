"""Tests for the Standard Workload Format parser/writer."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.workload.job import JobKind
from repro.workload.swf import SWFParseError, SWFRecord, iter_swf, read_swf, write_swf

FULL_LINE = "1 100 5 3600 64 -1 -1 64 4000 -1 1 3 4 5 6 7 -1 -1"


class TestParsing:
    def test_parse_full_line(self):
        record = SWFRecord.parse(FULL_LINE)
        assert record.job_id == 1
        assert record.submit == 100.0
        assert record.wait == 5.0
        assert record.run_time == 3600.0
        assert record.allocated_procs == 64
        assert record.requested_procs == 64
        assert record.requested_time == 4000.0
        assert record.status == 1
        assert record.user_id == 3

    def test_short_line_padded_with_unknowns(self):
        record = SWFRecord.parse("7 250 -1 1800 32")
        assert record.job_id == 7
        assert record.requested_procs == -1
        assert record.think_time == -1

    def test_empty_line_rejected(self):
        with pytest.raises(SWFParseError, match="empty"):
            SWFRecord.parse("   ")

    def test_too_many_fields_rejected(self):
        # 18 standard fields plus the optional 3-column malleability
        # range (fields 19-21) is the ceiling.
        with pytest.raises(SWFParseError, match="at most 21"):
            SWFRecord.parse(" ".join(["1"] * 22))

    def test_non_numeric_rejected(self):
        with pytest.raises(SWFParseError, match="non-numeric"):
            SWFRecord.parse("1 abc 0 0 0")


class TestRoundTrip:
    def test_line_roundtrip(self):
        record = SWFRecord.parse(FULL_LINE)
        assert SWFRecord.parse(record.to_line()) == record

    def test_file_roundtrip_with_header(self):
        records = [SWFRecord.parse(FULL_LINE), SWFRecord.parse("2 200 -1 60 8 -1 -1 8 100")]
        buffer = io.StringIO()
        write_swf(records, buffer, header=["MaxProcs: 320", "Version: 2"])
        buffer.seek(0)
        text = buffer.getvalue()
        assert text.startswith("; MaxProcs: 320\n; Version: 2\n")
        assert read_swf(io.StringIO(text)) == records

    def test_iter_skips_comments_and_blanks(self):
        stream = io.StringIO("; comment\n\n" + FULL_LINE + "\n")
        assert len(list(iter_swf(stream))) == 1

    def test_file_path_io(self, tmp_path):
        path = tmp_path / "trace.swf"
        records = [SWFRecord.parse(FULL_LINE)]
        write_swf(records, path)
        assert read_swf(path) == records

    @given(
        job_id=st.integers(1, 10**6),
        submit=st.integers(0, 10**7),
        procs=st.integers(1, 320),
        runtime=st.integers(1, 10**5),
        estimate=st.integers(1, 10**5),
    )
    def test_roundtrip_property(self, job_id, submit, procs, runtime, estimate):
        record = SWFRecord(
            job_id=job_id,
            submit=float(submit),
            run_time=float(runtime),
            requested_procs=procs,
            requested_time=float(estimate),
        )
        assert SWFRecord.parse(record.to_line()) == record


class TestJobConversion:
    def test_to_job_uses_requested_time(self):
        job = SWFRecord.parse(FULL_LINE).to_job()
        assert job.kind is JobKind.BATCH
        assert job.num == 64
        assert job.estimate == 4000.0
        assert job.actual == 3600.0
        assert job.submit == 100.0

    def test_to_job_falls_back_to_run_time(self):
        record = SWFRecord(job_id=1, submit=0.0, run_time=500.0, requested_procs=8)
        job = record.to_job()
        assert job.estimate == 500.0

    def test_to_job_falls_back_to_allocated_procs(self):
        record = SWFRecord(job_id=1, submit=0.0, run_time=500.0, allocated_procs=16)
        assert record.to_job().num == 16

    def test_to_job_without_runtime_rejected(self):
        record = SWFRecord(job_id=1, submit=0.0, requested_procs=8)
        with pytest.raises(SWFParseError, match="no usable runtime"):
            record.to_job()

    def test_to_job_without_procs_rejected(self):
        record = SWFRecord(job_id=1, submit=0.0, run_time=100.0)
        with pytest.raises(SWFParseError, match="processor request"):
            record.to_job()

    def test_from_job_roundtrip(self):
        job = SWFRecord.parse(FULL_LINE).to_job()
        job.start_time = 150.0
        job.finish_time = 150.0 + 3600.0
        record = SWFRecord.from_job(job)
        assert record.job_id == job.job_id
        assert record.wait == 50.0
        assert record.run_time == 3600.0
        assert record.requested_time == 4000.0
        # And it converts back to an equivalent job.
        again = record.to_job()
        assert again.num == job.num and again.estimate == job.estimate


class TestGzipSupport:
    def test_gz_roundtrip(self, tmp_path):
        """Archive logs ship as .swf.gz; readers/writers handle them."""
        path = tmp_path / "trace.swf.gz"
        records = [SWFRecord.parse(FULL_LINE)]
        write_swf(records, path, header=["compressed"])
        import gzip

        with gzip.open(path, "rt", encoding="utf-8") as fh:
            assert fh.readline().startswith("; compressed")
        assert read_swf(path) == records


class TestMalleableColumns:
    """Optional fields 19-21: the min/pref/max processor range."""

    RANGED_LINE = FULL_LINE + " 32 64 128"

    def test_parse_and_convert(self):
        record = SWFRecord.parse(self.RANGED_LINE)
        assert (record.min_procs, record.pref_procs, record.max_procs) == (32, 64, 128)
        job = record.to_job()
        assert job.is_malleable
        assert (job.min_procs, job.pref_procs, job.max_procs) == (32, 64, 128)

    def test_ranged_line_roundtrips(self):
        record = SWFRecord.parse(self.RANGED_LINE)
        assert len(record.to_line().split()) == 21
        assert SWFRecord.parse(record.to_line()) == record

    def test_rigid_line_stays_18_fields(self):
        record = SWFRecord.parse(FULL_LINE)
        assert not record.has_malleable_range
        assert len(record.to_line().split()) == 18

    def test_unknown_markers_mean_rigid(self):
        record = SWFRecord.parse(FULL_LINE + " -1 -1 -1")
        assert not record.has_malleable_range
        job = record.to_job()
        assert not job.is_malleable
        # and the -1s are not echoed back out
        assert len(record.to_line().split()) == 18

    def test_from_job_carries_the_range(self):
        job = SWFRecord.parse(self.RANGED_LINE).to_job()
        again = SWFRecord.from_job(job)
        assert (again.min_procs, again.pref_procs, again.max_procs) == (32, 64, 128)

    def test_legacy_lenient_read_emits_no_warnings(self):
        # strict=False on a clean 18-field archive log must stay silent
        import warnings

        stream = io.StringIO(f"; header\n{FULL_LINE}\n2 200 -1 60 8 -1 -1 8 100\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = read_swf(stream, strict=False)
        assert [r.job_id for r in records] == [1, 2]
