"""Unit tests for Elastic Control Command records."""

from __future__ import annotations

import pytest

from repro.workload.ecc import ECC, ECCKind


class TestECCKind:
    def test_time_commands(self):
        assert ECCKind.EXTEND_TIME.is_time
        assert ECCKind.REDUCE_TIME.is_time
        assert not ECCKind.EXTEND_PROCS.is_time

    def test_proc_commands(self):
        assert ECCKind.EXTEND_PROCS.is_procs
        assert ECCKind.REDUCE_PROCS.is_procs
        assert not ECCKind.EXTEND_TIME.is_procs

    def test_extension_flag(self):
        assert ECCKind.EXTEND_TIME.is_extension
        assert ECCKind.EXTEND_PROCS.is_extension
        assert not ECCKind.REDUCE_TIME.is_extension
        assert not ECCKind.REDUCE_PROCS.is_extension

    def test_cwf_codes(self):
        # Figure 4 field-20 codes.
        assert {k.value for k in ECCKind} == {"S", "ET", "RT", "EP", "RP"}


class TestECC:
    def test_signed_amount(self):
        extend = ECC(job_id=1, issue_time=10.0, kind=ECCKind.EXTEND_TIME, amount=60.0)
        reduce = ECC(job_id=1, issue_time=10.0, kind=ECCKind.REDUCE_TIME, amount=60.0)
        assert extend.signed_amount() == 60.0
        assert reduce.signed_amount() == -60.0

    def test_submission_kind_rejected(self):
        with pytest.raises(ValueError, match="kind S"):
            ECC(job_id=1, issue_time=0.0, kind=ECCKind.SUBMIT, amount=10.0)

    @pytest.mark.parametrize("amount", [0.0, -5.0])
    def test_nonpositive_amount_rejected(self, amount):
        with pytest.raises(ValueError, match="positive"):
            ECC(job_id=1, issue_time=0.0, kind=ECCKind.EXTEND_TIME, amount=amount)

    def test_negative_issue_time_rejected(self):
        with pytest.raises(ValueError, match="negative issue time"):
            ECC(job_id=1, issue_time=-1.0, kind=ECCKind.EXTEND_TIME, amount=1.0)

    def test_frozen(self):
        ecc = ECC(job_id=1, issue_time=0.0, kind=ECCKind.EXTEND_TIME, amount=1.0)
        with pytest.raises(AttributeError):
            ecc.amount = 2.0  # type: ignore[misc]
