"""Tests for the Lublin–Feitelson workload model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.lublin import SECONDS_PER_HOUR, LublinConfig, LublinModel


class TestConfig:
    def test_paper_defaults(self):
        cfg = LublinConfig()
        # Table I.
        assert cfg.alpha1 == 4.2 and cfg.beta1 == 0.94
        assert cfg.alpha2 == 312 and cfg.beta2 == 0.03
        assert cfg.pa == -0.0054 and cfg.pb == 0.78
        # Table II.
        assert cfg.alpha_arr == 13.2303
        assert cfg.alpha_num == 15.1737 and cfg.beta_num == 0.9631
        assert cfg.arar == 1.0225

    def test_derived_log2_bounds(self):
        cfg = LublinConfig(max_nodes=128)
        assert cfg.uhi == 7.0
        assert cfg.umed == pytest.approx(4.5)

    def test_umed_never_below_ulow(self):
        cfg = LublinConfig(max_nodes=2, umed_offset=10.0)
        assert cfg.umed == cfg.ulow

    def test_with_beta_arr(self):
        cfg = LublinConfig().with_beta_arr(0.61)
        assert cfg.beta_arr == 0.61
        assert cfg.alpha_arr == 13.2303  # everything else preserved

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_nodes": 0},
            {"serial_prob": 1.5},
            {"pow2_prob": -0.1},
            {"beta_arr": 0.0},
            {"rush_start_hour": 18, "rush_end_hour": 8},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LublinConfig(**kwargs)


class TestSizeModel:
    def test_sizes_within_machine(self, rng):
        model = LublinModel(LublinConfig(max_nodes=320))
        sizes = [model.sample_size(rng) for _ in range(3000)]
        assert all(1 <= s <= 320 for s in sizes)

    def test_serial_fraction(self, rng):
        model = LublinModel(LublinConfig(max_nodes=128, serial_prob=0.244))
        sizes = [model.sample_size(rng) for _ in range(8000)]
        serial = sum(1 for s in sizes if s == 1) / len(sizes)
        # Two-stage draws can also round to 1, so >= serial_prob.
        assert serial == pytest.approx(0.244, abs=0.05)

    def test_power_of_two_bias(self, rng):
        model = LublinModel(LublinConfig(max_nodes=128))
        sizes = [model.sample_size(rng) for _ in range(5000)]
        parallel = [s for s in sizes if s > 1]
        pow2 = sum(1 for s in parallel if s & (s - 1) == 0) / len(parallel)
        assert pow2 > 0.55  # pow2_prob=0.576 plus rounding coincidences

    def test_single_node_machine(self, rng):
        model = LublinModel(LublinConfig(max_nodes=1))
        assert all(model.sample_size(rng) == 1 for _ in range(50))


class TestRuntimeModel:
    def test_runtime_bounds_respected(self, rng):
        cfg = LublinConfig(min_runtime=10.0, max_runtime=1000.0)
        model = LublinModel(cfg)
        runtimes = [model.sample_runtime(64, rng) for _ in range(2000)]
        assert all(10.0 <= r <= 1000.0 for r in runtimes)

    def test_size_correlation(self, rng):
        """Larger jobs skew to the long-runtime component (p shrinks)."""
        model = LublinModel(LublinConfig())
        small = np.mean([model.sample_runtime(8, rng) for _ in range(4000)])
        large = np.mean([model.sample_runtime(320, rng) for _ in range(4000)])
        assert large > small

    def test_first_component_prob_linear_and_clipped(self):
        model = LublinModel(LublinConfig())
        assert model.first_component_prob(0) == pytest.approx(0.78)
        assert model.first_component_prob(100) == pytest.approx(0.78 - 0.54)
        assert model.first_component_prob(1000) == 0.0  # clipped


class TestArrivalProcess:
    def test_arrivals_sorted_and_positive(self, rng):
        model = LublinModel(LublinConfig())
        arrivals = model.sample_arrivals(300, rng)
        assert len(arrivals) == 300
        assert all(a > 0 for a in arrivals)
        assert arrivals == sorted(arrivals)

    def test_beta_arr_controls_rate(self):
        """Larger β_arr → longer gaps → later last arrival (lower load)."""
        fast = LublinModel(LublinConfig(beta_arr=0.41))
        slow = LublinModel(LublinConfig(beta_arr=0.61))
        fast_span = fast.sample_arrivals(200, np.random.default_rng(1))[-1]
        slow_span = slow.sample_arrivals(200, np.random.default_rng(1))[-1]
        assert slow_span > fast_span

    def test_rush_hours_have_shorter_gaps(self, rng):
        model = LublinModel(LublinConfig(arar=3.0))  # exaggerate for the test
        rush_gap = np.mean([model.sample_gap(10 * SECONDS_PER_HOUR, rng) for _ in range(2000)])
        off_gap = np.mean([model.sample_gap(2 * SECONDS_PER_HOUR, rng) for _ in range(2000)])
        assert off_gap > rush_gap

    def test_count_validation(self, rng):
        model = LublinModel(LublinConfig())
        with pytest.raises(ValueError, match="non-negative"):
            model.sample_arrivals(-1, rng)
        assert model.sample_arrivals(0, rng) == []

    def test_determinism(self):
        model = LublinModel(LublinConfig())
        a = model.sample(50, np.random.default_rng(42))
        b = model.sample(50, np.random.default_rng(42))
        assert [(s.arrival, s.size, s.runtime) for s in a] == [
            (s.arrival, s.size, s.runtime) for s in b
        ]


class TestFullTrace:
    def test_sample_produces_complete_jobs(self, rng):
        model = LublinModel(LublinConfig(max_nodes=320))
        trace = model.sample(100, rng)
        assert len(trace) == 100
        for sample in trace:
            assert sample.arrival >= 0
            assert 1 <= sample.size <= 320
            assert sample.runtime >= 1.0
