"""Tests for the offered-load formula."""

from __future__ import annotations

import pytest

from repro.workload.load import log_span, mean_runtime, mean_size, offered_load
from tests.conftest import batch_job


class TestLogSpan:
    def test_span_covers_last_job_end(self):
        jobs = [batch_job(1, submit=0.0, estimate=100.0), batch_job(2, submit=50.0, estimate=10.0)]
        assert log_span(jobs) == 100.0  # job 1 ends at 100 > job 2 at 60

    def test_empty(self):
        assert log_span([]) == 0.0


class TestOfferedLoad:
    def test_exact_value(self):
        # One job using half the machine for the whole span.
        jobs = [batch_job(1, submit=0.0, num=160, estimate=100.0)]
        assert offered_load(jobs, 320) == pytest.approx(0.5)

    def test_paper_formula(self):
        # Load = sum(num*dur) / (M * span).
        jobs = [
            batch_job(1, submit=0.0, num=64, estimate=100.0),
            batch_job(2, submit=0.0, num=32, estimate=200.0),
        ]
        span = 200.0
        expected = (64 * 100 + 32 * 200) / (320 * span)
        assert offered_load(jobs, 320) == pytest.approx(expected)

    def test_uses_effective_runtime_for_overruns(self):
        # A job killed at its estimate contributes only the estimate.
        job = batch_job(1, submit=0.0, num=320, estimate=100.0, actual=500.0)
        assert offered_load([job], 320) == pytest.approx(1.0)

    def test_duration_override(self):
        jobs = [batch_job(1, submit=0.0, num=320, estimate=100.0)]
        assert offered_load(jobs, 320, duration=200.0) == pytest.approx(0.5)

    def test_empty_and_degenerate(self):
        assert offered_load([], 320) == 0.0
        assert offered_load([batch_job(1)], 320, duration=0.0) == 0.0

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            offered_load([batch_job(1)], 0)


class TestAverages:
    def test_mean_runtime_and_size(self):
        jobs = [
            batch_job(1, num=32, estimate=100.0),
            batch_job(2, num=96, estimate=300.0),
        ]
        assert mean_runtime(jobs) == 200.0
        assert mean_size(jobs) == 64.0

    def test_empty_means(self):
        assert mean_runtime([]) == 0.0
        assert mean_size([]) == 0.0
