"""Unit tests for job records and lifecycle quantities."""

from __future__ import annotations

import pytest

from repro.workload.job import Job, JobKind, JobState
from tests.conftest import batch_job, dedicated_job


class TestValidation:
    def test_defaults(self):
        job = batch_job(1, submit=5.0, num=64, estimate=100.0)
        assert job.actual == 100.0  # defaults to the estimate
        assert job.state is JobState.PENDING
        assert job.kind is JobKind.BATCH
        assert job.original_estimate == 100.0
        assert not job.is_dedicated

    @pytest.mark.parametrize("num", [0, -5])
    def test_nonpositive_size_rejected(self, num):
        with pytest.raises(ValueError, match="num must be positive"):
            Job(job_id=1, submit=0.0, num=num, estimate=10.0)

    def test_nonpositive_estimate_rejected(self):
        with pytest.raises(ValueError, match="estimate must be positive"):
            Job(job_id=1, submit=0.0, num=1, estimate=0.0)

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError, match="negative submit"):
            Job(job_id=1, submit=-1.0, num=1, estimate=10.0)

    def test_dedicated_requires_requested_start(self):
        with pytest.raises(ValueError, match="requested_start"):
            Job(job_id=1, submit=0.0, num=1, estimate=10.0, kind=JobKind.DEDICATED)

    def test_dedicated_start_before_submit_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            Job(
                job_id=1,
                submit=10.0,
                num=1,
                estimate=10.0,
                kind=JobKind.DEDICATED,
                requested_start=5.0,
            )

    def test_batch_with_requested_start_rejected(self):
        with pytest.raises(ValueError, match="must not set requested_start"):
            Job(job_id=1, submit=0.0, num=1, estimate=10.0, requested_start=5.0)


class TestSchedulerQuantities:
    def test_effective_runtime_is_min_of_actual_and_estimate(self):
        overrun = batch_job(1, estimate=100.0, actual=150.0)
        assert overrun.effective_runtime() == 100.0  # killed at kill-by
        early = batch_job(2, estimate=100.0, actual=60.0)
        assert early.effective_runtime() == 60.0

    def test_kill_by_and_residual(self):
        job = batch_job(1, estimate=100.0)
        job.start_time = 50.0
        assert job.kill_by() == 150.0
        assert job.residual(now=80.0) == 70.0
        assert job.residual(now=200.0) == 0.0  # clamped

    def test_residual_requires_started(self):
        with pytest.raises(ValueError, match="has not started"):
            batch_job(1).residual(0.0)

    def test_kill_by_requires_started(self):
        with pytest.raises(ValueError, match="has not started"):
            batch_job(1).kill_by()


class TestMetrics:
    def test_wait_and_runtime(self):
        job = batch_job(1, submit=10.0, estimate=100.0)
        job.start_time = 35.0
        job.finish_time = 135.0
        assert job.wait_time() == 25.0
        assert job.runtime() == 100.0

    def test_wait_requires_started(self):
        with pytest.raises(ValueError, match="never started"):
            batch_job(1).wait_time()

    def test_dedicated_delay(self):
        job = dedicated_job(1, submit=0.0, requested_start=100.0)
        job.start_time = 130.0
        assert job.dedicated_delay() == 30.0
        job.start_time = 100.0
        assert job.dedicated_delay() == 0.0

    def test_dedicated_delay_rejects_batch(self):
        job = batch_job(1)
        job.start_time = 1.0
        with pytest.raises(ValueError, match="dedicated"):
            job.dedicated_delay()


class TestCopyForRun:
    def test_copy_resets_lifecycle(self):
        job = batch_job(1, estimate=100.0)
        job.start_time = 5.0
        job.finish_time = 105.0
        job.state = JobState.FINISHED
        job.scount = 4
        job.ecc_count = 2
        clone = job.copy_for_run()
        assert clone.state is JobState.PENDING
        assert clone.start_time is None and clone.finish_time is None
        assert clone.scount == 0 and clone.ecc_count == 0
        assert clone.job_id == job.job_id and clone.num == job.num

    def test_copy_restores_original_estimate_after_ecc(self):
        job = batch_job(1, estimate=100.0)
        job.estimate = 250.0  # mutated by an ET command
        clone = job.copy_for_run()
        assert clone.estimate == 100.0

    def test_copy_preserves_dedication(self):
        job = dedicated_job(3, requested_start=77.0)
        clone = job.copy_for_run()
        assert clone.is_dedicated and clone.requested_start == 77.0


class TestMalleabilityRange:
    def test_default_is_rigid(self):
        job = batch_job(1, num=64)
        assert not job.is_malleable
        assert job.min_procs is None and job.max_procs is None

    def test_partial_range_is_completed_with_num(self):
        job = Job(job_id=1, submit=0.0, num=64, estimate=10.0, min_procs=32)
        assert job.is_malleable
        assert (job.min_procs, job.pref_procs, job.max_procs) == (32, 64, 64)

    def test_max_alone_fills_the_rest(self):
        job = Job(job_id=1, submit=0.0, num=64, estimate=10.0, max_procs=128)
        assert (job.min_procs, job.pref_procs, job.max_procs) == (64, 64, 128)

    def test_nonpositive_min_rejected(self):
        with pytest.raises(ValueError, match="min_procs must be positive"):
            Job(job_id=1, submit=0.0, num=64, estimate=10.0, min_procs=0)

    def test_unordered_range_rejected(self):
        with pytest.raises(ValueError, match="min <= pref <= max"):
            Job(
                job_id=1,
                submit=0.0,
                num=64,
                estimate=10.0,
                min_procs=32,
                pref_procs=256,
                max_procs=128,
            )

    def test_num_outside_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            Job(
                job_id=1,
                submit=0.0,
                num=16,
                estimate=10.0,
                min_procs=32,
                max_procs=128,
            )

    def test_copy_for_run_carries_the_range(self):
        job = Job(
            job_id=1,
            submit=0.0,
            num=64,
            estimate=10.0,
            min_procs=32,
            pref_procs=96,
            max_procs=128,
        )
        clone = job.copy_for_run()
        assert clone.is_malleable
        assert (clone.min_procs, clone.pref_procs, clone.max_procs) == (32, 96, 128)
