"""Tests for the SDSC-like validation trace (Figure 1 substitute)."""

from __future__ import annotations

import numpy as np

from repro.workload.sdsc import SDSC_MACHINE_SIZE, generate_sdsc_like, sdsc_like_config


class TestSDSCTrace:
    def test_machine_and_shape(self, rng):
        workload = generate_sdsc_like(200, rng)
        assert workload.machine_size == SDSC_MACHINE_SIZE == 128
        assert workload.granularity == 1  # SP2 had no pset granularity
        assert len(workload) == 200
        assert not workload.dedicated_jobs and not workload.eccs

    def test_sizes_within_sp2(self, rng):
        workload = generate_sdsc_like(300, rng)
        assert all(1 <= j.num <= 128 for j in workload.jobs)

    def test_real_log_like_packing(self, rng):
        """Real logs are dominated by small jobs — unlike the paper's
        two-stage BlueGene model.  This difference is the whole point
        of the paper's claim about LOS."""
        workload = generate_sdsc_like(800, rng)
        small = sum(1 for j in workload.jobs if j.num <= 16) / len(workload)
        assert small > 0.5

    def test_determinism(self):
        a = generate_sdsc_like(100, np.random.default_rng(3))
        b = generate_sdsc_like(100, np.random.default_rng(3))
        assert [(j.submit, j.num, j.estimate) for j in a.jobs] == [
            (j.submit, j.num, j.estimate) for j in b.jobs
        ]

    def test_config_targets_machine(self):
        assert sdsc_like_config(64).max_nodes == 64

    def test_arrival_scaling_varies_load_as_in_ref7(self, rng):
        """Figure 1 methodology: arrival-time scaling sweeps load."""
        base = generate_sdsc_like(200, rng)
        loads = [base.scale_arrivals(f).offered_load() for f in (1.0, 1.5, 2.0)]
        assert loads[0] > loads[1] > loads[2]
