"""Tests for the paper's two-stage uniform size model (§IV-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.twostage import TwoStageSizeConfig, TwoStageSizeModel


class TestConfig:
    def test_producible_sizes_match_paper(self):
        cfg = TwoStageSizeConfig()
        # "all small sized jobs are of size either 32, 64 or 96"
        assert cfg.small_sizes() == (32, 64, 96)
        # "the size of large jobs is either 128, 160, ..., or 320"
        assert cfg.large_sizes() == (128, 160, 192, 224, 256, 288, 320)
        assert cfg.max_size() == 320

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_small": 1.2},
            {"p_small": -0.1},
            {"granularity": 0},
            {"small_range": (3.0, 1.0)},
            {"large_range": (0.0, 10.0)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TwoStageSizeConfig(**kwargs)


class TestSampling:
    def test_all_samples_are_valid_sizes(self, rng):
        model = TwoStageSizeModel()
        valid = set(model.config.small_sizes()) | set(model.config.large_sizes())
        samples = {model.sample(rng) for _ in range(3000)}
        assert samples <= valid
        assert all(s % 32 == 0 for s in samples)

    def test_p_small_extremes(self, rng):
        small_only = TwoStageSizeModel(TwoStageSizeConfig(p_small=1.0))
        assert all(small_only.sample(rng) <= 96 for _ in range(300))
        large_only = TwoStageSizeModel(TwoStageSizeConfig(p_small=0.0))
        assert all(large_only.sample(rng) >= 128 for _ in range(300))

    def test_small_fraction_tracks_p_small(self, rng):
        model = TwoStageSizeModel(TwoStageSizeConfig(p_small=0.8))
        samples = [model.sample(rng) for _ in range(8000)]
        small = sum(1 for s in samples if s <= 96) / len(samples)
        assert small == pytest.approx(0.8, abs=0.03)

    def test_rounding_weights_interior_values(self, rng):
        """round(U[1,3]) gives 64 twice the weight of 32 or 96."""
        model = TwoStageSizeModel(TwoStageSizeConfig(p_small=1.0))
        samples = [model.sample(rng) for _ in range(12000)]
        share_64 = sum(1 for s in samples if s == 64) / len(samples)
        share_32 = sum(1 for s in samples if s == 32) / len(samples)
        assert share_64 == pytest.approx(0.5, abs=0.03)
        assert share_32 == pytest.approx(0.25, abs=0.03)

    def test_mean_size_closed_form(self, rng):
        for p_small in (0.2, 0.5, 0.8):
            model = TwoStageSizeModel(TwoStageSizeConfig(p_small=p_small))
            empirical = np.mean([model.sample(rng) for _ in range(20000)])
            assert empirical == pytest.approx(model.mean_size(), rel=0.03)

    def test_paper_mean_sizes(self):
        """§V quotes n̄ for its P_S settings; the model's means match
        to within the sampling noise of a 500-job draw."""
        # P_S=0.5: paper reports n̄ = 139.35; closed form gives 144.
        assert TwoStageSizeModel(TwoStageSizeConfig(p_small=0.5)).mean_size() == 144.0
        # P_S=0.8: paper reports n̄ = 89.72; closed form gives 96.
        assert TwoStageSizeModel(TwoStageSizeConfig(p_small=0.8)).mean_size() == pytest.approx(96.0)
        # P_S=0.2: paper reports n̄ = 180.84; closed form gives 192.
        assert TwoStageSizeModel(TwoStageSizeConfig(p_small=0.2)).mean_size() == pytest.approx(192.0)
