"""Metamorphic properties of the schedulers.

Online schedulers that decide from *relative* quantities (capacity
comparisons, residual orderings, shadow times) must commute with
certain workload transformations:

- **time translation**: shifting every submission (and requested
  start, and ECC issue time) by a constant Δ shifts every start and
  finish by exactly Δ;
- **time scaling**: multiplying all times (arrivals, runtimes,
  estimates, amounts) by k > 0 multiplies all starts/finishes by k —
  nothing in the policies carries an absolute time scale;
- **machine scaling**: multiplying machine size *and* every job size
  by the same integer factor leaves start times unchanged.

These catch subtle absolute-time or absolute-size leaks (e.g. a
hard-coded threshold) that ordinary example-based tests never hit.

Note: the *generator* is deliberately not scale-free (its daily
rush-hour cycle uses absolute hours), so transformations are applied
to generated workloads post-hoc.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.registry import make_scheduler
from repro.experiments.runner import simulate
from repro.workload.ecc import ECC
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.job import Job
from repro.workload.twostage import TwoStageSizeConfig

ALGORITHMS = ["FCFS", "EASY", "CONSERVATIVE", "LOS", "Delayed-LOS", "SJF"]


def generate(seed: int, n_jobs: int = 30, elastic: bool = False) -> Workload:
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_extend=0.3 if elastic else 0.0,
        p_reduce=0.2 if elastic else 0.0,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


def translate(workload: Workload, delta: float) -> Workload:
    jobs = [
        Job(
            job_id=j.job_id,
            submit=j.submit + delta,
            num=j.num,
            estimate=j.original_estimate,
            actual=j.actual,
            kind=j.kind,
            requested_start=None if j.requested_start is None else j.requested_start + delta,
        )
        for j in workload.jobs
    ]
    eccs = [
        ECC(job_id=e.job_id, issue_time=e.issue_time + delta, kind=e.kind, amount=e.amount)
        for e in workload.eccs
    ]
    return Workload(
        jobs=jobs, eccs=eccs, machine_size=workload.machine_size,
        granularity=workload.granularity,
    )


def scale_time(workload: Workload, k: float) -> Workload:
    jobs = [
        Job(
            job_id=j.job_id,
            submit=j.submit * k,
            num=j.num,
            estimate=j.original_estimate * k,
            actual=None if j.actual is None else j.actual * k,
            kind=j.kind,
            requested_start=None if j.requested_start is None else j.requested_start * k,
        )
        for j in workload.jobs
    ]
    eccs = [
        ECC(job_id=e.job_id, issue_time=e.issue_time * k, kind=e.kind, amount=e.amount * k)
        for e in workload.eccs
    ]
    return Workload(
        jobs=jobs, eccs=eccs, machine_size=workload.machine_size,
        granularity=workload.granularity,
    )


def scale_machine(workload: Workload, factor: int) -> Workload:
    jobs = [
        Job(
            job_id=j.job_id,
            submit=j.submit,
            num=j.num * factor,
            estimate=j.original_estimate,
            actual=j.actual,
            kind=j.kind,
            requested_start=j.requested_start,
        )
        for j in workload.jobs
    ]
    return Workload(
        jobs=jobs,
        eccs=list(workload.eccs),
        machine_size=workload.machine_size * factor,
        granularity=workload.granularity * factor,
    )


def schedule_of(workload: Workload, name: str):
    metrics = simulate(workload, make_scheduler(name, max_skip_count=5))
    return sorted((r.job_id, r.start, r.finish) for r in metrics.records)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 300),
    delta=st.sampled_from([1.0, 500.0, 86_400.0]),
    name=st.sampled_from(ALGORITHMS),
)
def test_time_translation_invariance(seed, delta, name):
    base = generate(seed)
    shifted = translate(base, delta)
    original = schedule_of(base, name)
    moved = schedule_of(shifted, name)
    assert moved == [
        (job_id, start + delta, finish + delta) for job_id, start, finish in original
    ]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 300),
    k=st.sampled_from([2.0, 4.0]),
    name=st.sampled_from(ALGORITHMS),
)
def test_time_scaling_invariance(seed, k, name):
    base = generate(seed)
    stretched = scale_time(base, k)
    original = schedule_of(base, name)
    scaled = schedule_of(stretched, name)
    assert scaled == pytest.approx(
        [(job_id, start * k, finish * k) for job_id, start, finish in original]
    )


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 300),
    factor=st.sampled_from([2, 3]),
    name=st.sampled_from(["EASY", "LOS", "Delayed-LOS"]),
)
def test_machine_scaling_invariance(seed, factor, name):
    """Doubling machine and all job sizes changes nothing temporal."""
    base = generate(seed)
    widened = scale_machine(base, factor)
    assert schedule_of(base, name) == schedule_of(widened, name)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 300), delta=st.sampled_from([1000.0]))
def test_translation_holds_for_elastic_runs(seed, delta):
    """The ECC machinery must carry no absolute-time references either."""
    base = generate(seed, elastic=True)
    shifted = translate(base, delta)
    original = schedule_of(base, "Delayed-LOS-E")
    moved = schedule_of(shifted, "Delayed-LOS-E")
    assert moved == [
        (job_id, start + delta, finish + delta) for job_id, start, finish in original
    ]
