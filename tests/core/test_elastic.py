"""Tests for the ECC processor (runtime elasticity core)."""

from __future__ import annotations

import pytest

from repro.core.elastic import MIN_RUNTIME, ECCOutcome, ECCProcessor
from repro.workload.ecc import ECC, ECCKind
from repro.workload.job import Job, JobState
from tests.conftest import batch_job


def et(job_id=1, t=10.0, amount=60.0):
    return ECC(job_id=job_id, issue_time=t, kind=ECCKind.EXTEND_TIME, amount=amount)


def rt(job_id=1, t=10.0, amount=60.0):
    return ECC(job_id=job_id, issue_time=t, kind=ECCKind.REDUCE_TIME, amount=amount)


class TestQueuedJobs:
    def test_extension_grows_estimate_and_actual(self):
        job = batch_job(1, estimate=100.0)
        job.state = JobState.QUEUED
        result = ECCProcessor().apply(et(amount=50.0), job, now=10.0)
        assert result.outcome is ECCOutcome.APPLIED_QUEUED
        assert result.new_kill_by is None
        assert job.estimate == 150.0 and job.actual == 150.0
        assert job.ecc_count == 1

    def test_reduction_shrinks_with_floor(self):
        job = batch_job(1, estimate=100.0)
        job.state = JobState.QUEUED
        ECCProcessor().apply(rt(amount=99.5), job, now=10.0)
        assert job.estimate == MIN_RUNTIME  # clamped, never zero

    def test_pending_job_treated_as_queued(self):
        job = batch_job(1, estimate=100.0)  # state PENDING
        result = ECCProcessor().apply(et(amount=10.0), job, now=0.0)
        assert result.outcome is ECCOutcome.APPLIED_QUEUED
        assert job.estimate == 110.0


class TestRunningJobs:
    def _running(self, estimate=100.0, start=0.0):
        job = batch_job(1, estimate=estimate)
        job.start_time = start
        job.state = JobState.RUNNING
        return job

    def test_extension_moves_kill_by_later(self):
        job = self._running(estimate=100.0)
        result = ECCProcessor().apply(et(amount=50.0), job, now=40.0)
        assert result.outcome is ECCOutcome.APPLIED_RUNNING
        assert result.new_kill_by == 150.0
        assert job.kill_by() == 150.0

    def test_reduction_moves_kill_by_earlier(self):
        job = self._running(estimate=100.0)
        result = ECCProcessor().apply(rt(amount=30.0), job, now=40.0)
        assert result.outcome is ECCOutcome.APPLIED_RUNNING
        assert result.new_kill_by == 70.0

    def test_reduction_below_elapsed_terminates_now(self):
        job = self._running(estimate=100.0)
        result = ECCProcessor().apply(rt(amount=95.0), job, now=40.0)
        assert result.outcome is ECCOutcome.TERMINATED_JOB
        assert result.new_kill_by == 40.0
        assert job.estimate == 40.0  # clamped at the elapsed time

    def test_reduction_exactly_to_now_terminates(self):
        job = self._running(estimate=100.0)
        result = ECCProcessor().apply(rt(amount=60.0), job, now=40.0)
        assert result.outcome is ECCOutcome.TERMINATED_JOB


class TestGuards:
    def test_finished_job_drops_command(self):
        job = batch_job(1)
        job.state = JobState.FINISHED
        result = ECCProcessor().apply(et(), job, now=500.0)
        assert result.outcome is ECCOutcome.DROPPED_FINISHED
        assert job.ecc_count == 0

    def test_per_job_cap_enforced(self):
        processor = ECCProcessor(max_eccs_per_job=1)
        job = batch_job(1, estimate=100.0)
        job.state = JobState.QUEUED
        assert processor.apply(et(), job, 0.0).outcome is ECCOutcome.APPLIED_QUEUED
        assert processor.apply(et(), job, 1.0).outcome is ECCOutcome.REJECTED_CAP
        assert job.estimate == 160.0  # only the first applied

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ECCProcessor(max_eccs_per_job=-1)

    def test_stats_accumulate(self):
        processor = ECCProcessor()
        job = batch_job(1, estimate=100.0)
        job.state = JobState.QUEUED
        processor.apply(et(), job, 0.0)
        processor.apply(rt(), job, 1.0)
        assert processor.stats[ECCOutcome.APPLIED_QUEUED] == 2


class TestResourceECCs:
    def ep(self, amount=32.0):
        return ECC(job_id=1, issue_time=0.0, kind=ECCKind.EXTEND_PROCS, amount=amount)

    def rp(self, amount=32.0):
        return ECC(job_id=1, issue_time=0.0, kind=ECCKind.REDUCE_PROCS, amount=amount)

    def test_rejected_without_opt_in(self):
        job = batch_job(1, num=64)
        result = ECCProcessor().apply(self.ep(), job, 0.0)
        assert result.outcome is ECCOutcome.REJECTED_RESOURCE
        assert job.num == 64

    def test_rejected_on_running_jobs(self):
        processor = ECCProcessor(allow_resource_eccs=True, machine_granularity=32)
        job = batch_job(1, num=64)
        job.start_time = 0.0
        job.state = JobState.RUNNING
        assert processor.apply(self.ep(), job, 1.0).outcome is ECCOutcome.REJECTED_RESOURCE

    def test_queued_job_resized_with_granularity(self):
        processor = ECCProcessor(
            allow_resource_eccs=True, machine_granularity=32, machine_size=320
        )
        job = batch_job(1, num=64)
        job.state = JobState.QUEUED
        processor.apply(self.ep(amount=40.0), job, 0.0)
        assert job.num == 96  # 104 snapped to the 32-proc grid

    def test_resize_clamped_to_machine_bounds(self):
        processor = ECCProcessor(
            allow_resource_eccs=True, machine_granularity=32, machine_size=320
        )
        grow = batch_job(1, num=320)
        grow.state = JobState.QUEUED
        processor.apply(self.ep(amount=64.0), grow, 0.0)
        assert grow.num == 320
        shrink = batch_job(2, num=32)
        shrink.state = JobState.QUEUED
        processor.apply(self.rp(amount=320.0), shrink, 0.0)
        assert shrink.num == 32


class TestRunningResize:
    """EP/RP on *running* jobs — the malleability primitive
    (docs/malleability.md), gated behind ``allow_running_resize``."""

    def processor(self, **kwargs):
        return ECCProcessor(
            allow_resource_eccs=True,
            allow_running_resize=True,
            machine_granularity=32,
            machine_size=320,
            **kwargs,
        )

    def running(self, num=128, estimate=100.0, lo=None, hi=None):
        job = Job(
            job_id=1,
            submit=0.0,
            num=num,
            estimate=estimate,
            min_procs=lo,
            max_procs=hi,
        )
        job.start_time = 0.0
        job.state = JobState.RUNNING
        return job

    def rp(self, amount):
        return ECC(job_id=1, issue_time=0.0, kind=ECCKind.REDUCE_PROCS, amount=amount)

    def ep(self, amount):
        return ECC(job_id=1, issue_time=0.0, kind=ECCKind.EXTEND_PROCS, amount=amount)

    def test_rejected_without_running_opt_in(self):
        processor = ECCProcessor(allow_resource_eccs=True, machine_granularity=32)
        job = self.running()
        result = processor.apply(self.rp(64.0), job, 40.0, free=0)
        assert result.outcome is ECCOutcome.REJECTED_RESOURCE
        assert job.num == 128  # untouched

    def test_shrink_is_work_conserving(self):
        job = self.running(num=128, estimate=100.0)
        result = self.processor().apply(self.rp(64.0), job, 40.0, free=0)
        assert result.outcome is ECCOutcome.APPLIED_RUNNING
        assert result.old_num == 128 and job.num == 64
        # the 60 s residual doubled at half the processors
        assert result.new_kill_by == pytest.approx(40.0 + 60.0 * 2)
        assert job.estimate == pytest.approx(160.0)

    def test_expand_compresses_residual(self):
        job = self.running(num=128, estimate=100.0)
        result = self.processor().apply(self.ep(64.0), job, 40.0, free=64)
        assert job.num == 192
        assert result.new_kill_by == pytest.approx(40.0 + 60.0 * (128 / 192))

    def test_expand_capped_by_free_capacity(self):
        job = self.running(num=128, estimate=100.0)
        self.processor().apply(self.ep(128.0), job, 0.0, free=40)
        assert job.num == 160  # headroom 40 snapped down to 32

    def test_expand_with_unknown_free_is_rejected(self):
        job = self.running(num=128)
        result = self.processor().apply(self.ep(64.0), job, 0.0)
        assert result.outcome is ECCOutcome.REJECTED_RESOURCE

    def test_shrink_clamped_to_declared_min(self):
        job = self.running(num=128, lo=64)
        self.processor().apply(self.rp(128.0), job, 0.0, free=0)
        assert job.num == 64

    def test_noop_after_clamping_is_rejected(self):
        job = self.running(num=64, lo=64)
        result = self.processor().apply(self.rp(32.0), job, 0.0, free=0)
        assert result.outcome is ECCOutcome.REJECTED_RESOURCE
        assert job.num == 64

    def test_resize_with_zero_residual_terminates(self):
        job = self.running(num=128, estimate=100.0)
        result = self.processor().apply(self.rp(64.0), job, 100.0, free=0)
        assert result.outcome is ECCOutcome.TERMINATED_JOB
        assert result.new_kill_by == 100.0
        assert job.num == 64  # terminates at its new size

    def test_scheduler_initiated_bypasses_user_cap(self):
        processor = self.processor(max_eccs_per_job=0)
        job = self.running(num=128)
        user = processor.apply(self.rp(32.0), job, 10.0, free=0)
        assert user.outcome is ECCOutcome.REJECTED_CAP
        forced = processor.apply(
            self.rp(32.0), job, 10.0, free=0, scheduler_initiated=True
        )
        assert forced.outcome is ECCOutcome.APPLIED_RUNNING
        assert job.ecc_count == 1  # still counted, just not capped
