"""Mini-harness for exercising a policy's ``cycle`` directly.

Builds a :class:`SchedulerContext` from declarative state and applies
decisions the way the runner does, but synchronously and without a
simulator — ideal for asserting single-pass behaviour (scount
increments, who gets selected, promotion mechanics).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.machine import Machine
from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.queues.active_list import ActiveList
from repro.queues.batch_queue import BatchQueue
from repro.queues.dedicated_queue import DedicatedQueue
from repro.workload.job import Job


class PolicyHarness:
    """Hand-driven scheduling state for policy unit tests."""

    def __init__(self, total: int = 10, granularity: int = 1, now: float = 0.0) -> None:
        self.machine = Machine(total=total, granularity=granularity)
        self.batch_queue = BatchQueue()
        self.dedicated_queue = DedicatedQueue()
        self.active = ActiveList()
        self.now = now
        self.started: List[Job] = []

    # ------------------------------------------------------------------
    def enqueue(self, *jobs: Job) -> "PolicyHarness":
        for job in jobs:
            if job.is_dedicated:
                self.dedicated_queue.push(job)
            else:
                self.batch_queue.push(job)
        return self

    def run_job(self, job: Job, started_at: Optional[float] = None) -> "PolicyHarness":
        """Place a job directly into the active set."""
        job.start_time = self.now if started_at is None else started_at
        self.machine.allocate(job.job_id, job.num)
        self.active.add(job)
        return self

    def context(self, allow_scount_increment: bool = True) -> SchedulerContext:
        return SchedulerContext(
            now=self.now,
            machine=self.machine,
            batch_queue=self.batch_queue,
            dedicated_queue=self.dedicated_queue,
            active=self.active,
            allow_scount_increment=allow_scount_increment,
        )

    # ------------------------------------------------------------------
    def apply(self, decision: CycleDecision) -> None:
        """Apply a decision exactly as the runner does."""
        for job in decision.promotions:
            self.dedicated_queue.remove(job)
            self.batch_queue.push_head(job)
        for job in decision.starts:
            self.batch_queue.remove(job)
            self.machine.allocate(job.job_id, job.num)
            job.start_time = self.now
            self.active.add(job)
            self.started.append(job)

    def cycle_to_fixpoint(self, scheduler: Scheduler, max_passes: int = 100) -> List[Job]:
        """Run the runner's fix-point loop; returns jobs started."""
        before = len(self.started)
        for pass_index in range(max_passes):
            decision = scheduler.cycle(self.context(allow_scount_increment=pass_index == 0))
            if decision.is_empty():
                return self.started[before:]
            self.apply(decision)
        raise AssertionError("policy did not reach a fix-point")

    def advance(self, dt: float) -> "PolicyHarness":
        """Move the clock and retire jobs whose kill-by has passed."""
        self.now += dt
        for job in list(self.active):
            if job.kill_by() <= self.now:
                self.active.remove(job)
                self.machine.release(job.job_id)
                job.finish_time = job.kill_by()
        return self


def started_ids(jobs: Sequence[Job]) -> List[int]:
    """Convenience: job ids of a start list."""
    return [job.job_id for job in jobs]
