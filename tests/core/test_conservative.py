"""Tests for conservative backfill."""

from __future__ import annotations

from repro.core.conservative import ConservativeBackfill
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestConservative:
    def test_starts_whatever_plans_now(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=4), batch_job(2, submit=1.0, num=4)
        )
        started = harness.cycle_to_fixpoint(ConservativeBackfill())
        assert started_ids(started) == [1, 2]

    def test_backfills_only_when_no_reservation_delayed(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=8, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=6, estimate=50.0),  # planned at t=100
            batch_job(2, submit=1.0, num=2, estimate=100.0),  # ends exactly at 100
        )
        started = harness.cycle_to_fixpoint(ConservativeBackfill())
        assert started_ids(started) == [2]

    def test_denies_backfill_that_delays_any_queued_job(self):
        """Unlike EASY, job 3 may not delay job 2's reservation even
        though it would not delay the head."""
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=8, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=6, estimate=10.0),  # head, planned at t=100
            batch_job(2, submit=1.0, num=4, estimate=10.0),  # planned at t=100 too
            # Job 3 fits extra capacity for the head (frec 4), so EASY
            # would start it; but it would collide with job 2's plan.
            batch_job(3, submit=2.0, num=2, estimate=500.0),
        )
        started = harness.cycle_to_fixpoint(ConservativeBackfill())
        assert 3 not in started_ids(started)

    def test_empty_queue(self):
        assert PolicyHarness(total=10).cycle_to_fixpoint(ConservativeBackfill()) == []
