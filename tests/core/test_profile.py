"""Tests for the capacity profile (conservative backfill's planner)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.profile import CapacityProfile
from repro.queues.active_list import ActiveList
from tests.conftest import batch_job


class TestConstruction:
    def test_flat_profile(self):
        profile = CapacityProfile(total=10, now=0.0, free=10)
        assert profile.free_at(0.0) == 10
        assert profile.free_at(1e9) == 10

    def test_from_active_releases_at_kill_by(self):
        active = ActiveList()
        job = batch_job(1, num=6, estimate=100.0)
        job.start_time = 0.0
        active.add(job)
        profile = CapacityProfile.from_active(10, now=20.0, active=active)
        assert profile.free_at(20.0) == 4
        assert profile.free_at(99.9) == 4
        assert profile.free_at(100.0) == 10

    def test_invalid_free_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            CapacityProfile(total=10, now=0.0, free=11)

    def test_query_before_start_rejected(self):
        profile = CapacityProfile(total=10, now=5.0, free=10)
        with pytest.raises(ValueError, match="precedes"):
            profile.free_at(4.0)


class TestPlanning:
    def test_min_free_over_window(self):
        profile = CapacityProfile(total=10, now=0.0, free=10)
        profile.reserve(5.0, 8, 10.0)
        assert profile.min_free(0.0, 5.0) == 10  # [0,5) untouched
        assert profile.min_free(0.0, 6.0) == 2
        assert profile.min_free(15.0, 100.0) == 10

    def test_earliest_start_now_when_free(self):
        profile = CapacityProfile(total=10, now=3.0, free=10)
        assert profile.earliest_start(4, 100.0) == 3.0

    def test_earliest_start_waits_for_release(self):
        active = ActiveList()
        job = batch_job(1, num=8, estimate=50.0)
        job.start_time = 0.0
        active.add(job)
        profile = CapacityProfile.from_active(10, now=0.0, active=active)
        assert profile.earliest_start(4, 10.0) == 50.0

    def test_earliest_start_skips_gaps_too_short(self):
        # Free window [0, 10) of size 10, then only 2 free until 100.
        profile = CapacityProfile(total=10, now=0.0, free=10)
        profile.reserve(10.0, 8, 90.0)
        # A 20s job of size 6 cannot use the [0,10) window.
        assert profile.earliest_start(6, 20.0) == 100.0
        # A 10s job can (ends exactly when the reservation begins).
        assert profile.earliest_start(6, 10.0) == 0.0

    def test_oversized_request_rejected(self):
        profile = CapacityProfile(total=10, now=0.0, free=10)
        with pytest.raises(ValueError, match="exceeds machine"):
            profile.earliest_start(11, 1.0)

    def test_overlapping_reservation_rejected(self):
        profile = CapacityProfile(total=10, now=0.0, free=10)
        profile.reserve(0.0, 8, 10.0)
        with pytest.raises(ValueError, match="exceeds available"):
            profile.reserve(5.0, 4, 10.0)

    def test_breakpoints_snapshot(self):
        profile = CapacityProfile(total=10, now=0.0, free=10)
        profile.reserve(2.0, 3, 4.0)
        assert profile.breakpoints() == [(0.0, 10), (2.0, 7), (6.0, 10)]


@given(
    requests=st.lists(
        st.tuples(st.integers(1, 10), st.integers(1, 50)), min_size=1, max_size=20
    )
)
def test_greedy_planning_never_overcommits(requests):
    """Property: planning jobs at their earliest starts never drives
    capacity negative anywhere."""
    profile = CapacityProfile(total=10, now=0.0, free=10)
    for num, duration in requests:
        start = profile.earliest_start(num, float(duration))
        profile.reserve(start, num, float(duration))
    assert all(0 <= free <= 10 for _, free in profile.breakpoints())
