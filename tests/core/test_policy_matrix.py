"""Golden decision matrix: every batch policy on every scenario.

Pins the *exact* activation decisions of all eight batch policies on a
curated scenario set (10-processor machine, granularity 1).  Any
change to these decisions — tie-breaking, DP reconstruction order,
backfill eligibility — trips this test and must be justified against
the paper, making silent behavioural drift impossible.

The goldens encode recognizable structure:

- ``fig2``: only the DP-based Delayed-LOS (and, incidentally, the
  SMALLEST reorderer) achieves the paper's Alternative-(b) pick {2, 3};
- ``blocked_head_short_fill``: everything except FCFS backfills the
  short job past the blocked head;
- ``tight_pack``: SMALLEST trades the FIFO pair {1, 2} for three small
  jobs at equal utilization — fairness lost, nothing gained.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids

POLICIES = ["FCFS", "EASY", "CONSERVATIVE", "LOS", "Delayed-LOS", "SJF", "SMALLEST", "LJF"]


def build_scenario(name: str) -> PolicyHarness:
    harness = PolicyHarness(total=10, granularity=1, now=0.0)
    if name == "fig2":
        # The paper's Figure 2: 7/4/6 on an idle 10-proc machine.
        harness.enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
    elif name == "drain":
        # Plenty of capacity: everything that fits starts in order.
        harness.enqueue(
            *[batch_job(i, submit=float(i), num=3, estimate=50.0 + i) for i in range(1, 5)]
        )
    elif name == "blocked_head_short_fill":
        # 8 procs busy until t=100; 6-proc head blocked; two 2-proc
        # candidates, one short (fits before shadow), one long.
        harness.run_job(batch_job(100, num=8, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=6, estimate=50.0),
            batch_job(2, submit=1.0, num=2, estimate=30.0),
            batch_job(3, submit=2.0, num=2, estimate=400.0),
        )
    elif name == "tight_pack":
        # Several ways to reach utilization 10.
        harness.enqueue(
            batch_job(1, num=5),
            batch_job(2, submit=1.0, num=5),
            batch_job(3, submit=2.0, num=5),
            batch_job(4, submit=3.0, num=4),
            batch_job(5, submit=4.0, num=1),
        )
    elif name == "one_big_many_small":
        # A 9-proc head blocked behind a 4-proc runner; a stream of
        # 2-proc jobs competes for the 6 free processors.
        harness.run_job(batch_job(100, num=4, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=9, estimate=10.0),
            *[batch_job(i, submit=float(i), num=2, estimate=20.0) for i in range(2, 6)],
        )
    elif name == "mixed_runtimes":
        # Backfill-window boundary: job 2 ends just inside the shadow,
        # job 3 just outside.
        harness.run_job(batch_job(100, num=6, estimate=60.0))
        harness.enqueue(
            batch_job(1, num=6, estimate=10.0),
            batch_job(2, submit=1.0, num=4, estimate=55.0),
            batch_job(3, submit=2.0, num=3, estimate=65.0),
        )
    else:  # pragma: no cover - guard against typos in GOLDEN
        raise KeyError(name)
    return harness


#: scenario -> policy -> exact activation order at t=0.
GOLDEN = {
    "fig2": {
        "FCFS": [1], "EASY": [1], "CONSERVATIVE": [1], "LOS": [1],
        "Delayed-LOS": [2, 3], "SJF": [1], "SMALLEST": [2, 3], "LJF": [1],
    },
    "drain": {
        "FCFS": [1, 2, 3], "EASY": [1, 2, 3], "CONSERVATIVE": [1, 2, 3],
        "LOS": [1, 2, 3], "Delayed-LOS": [1, 2, 3], "SJF": [1, 2, 3],
        "SMALLEST": [1, 2, 3], "LJF": [1, 2, 3],
    },
    "blocked_head_short_fill": {
        "FCFS": [], "EASY": [2], "CONSERVATIVE": [2], "LOS": [2],
        "Delayed-LOS": [2], "SJF": [2], "SMALLEST": [2], "LJF": [2],
    },
    "tight_pack": {
        "FCFS": [1, 2], "EASY": [1, 2], "CONSERVATIVE": [1, 2], "LOS": [1, 2],
        "Delayed-LOS": [1, 2], "SJF": [1, 2], "SMALLEST": [5, 4, 1], "LJF": [1, 2],
    },
    "one_big_many_small": {
        "FCFS": [], "EASY": [2, 3, 4], "CONSERVATIVE": [2, 3, 4],
        "LOS": [2, 3, 4], "Delayed-LOS": [2, 3, 4], "SJF": [2, 3, 4],
        "SMALLEST": [2, 3, 4], "LJF": [2, 3, 4],
    },
    "mixed_runtimes": {
        "FCFS": [], "EASY": [2], "CONSERVATIVE": [2], "LOS": [2],
        "Delayed-LOS": [2], "SJF": [2], "SMALLEST": [3], "LJF": [2],
    },
}


@pytest.mark.parametrize("scenario", sorted(GOLDEN))
@pytest.mark.parametrize("policy", POLICIES)
def test_golden_decision(scenario, policy):
    harness = build_scenario(scenario)
    started = harness.cycle_to_fixpoint(make_scheduler(policy, max_skip_count=5))
    assert started_ids(started) == GOLDEN[scenario][policy], (
        f"{policy} decision drifted on scenario {scenario!r}"
    )


def test_golden_table_is_complete():
    for scenario, row in GOLDEN.items():
        assert sorted(row) == sorted(POLICIES), scenario


def test_fig2_separates_dp_from_greedy():
    """The structural point of the matrix: only packing-aware policies
    find Alternative-(b) in the Figure 2 scenario."""
    picks = GOLDEN["fig2"]
    assert picks["Delayed-LOS"] == [2, 3]
    assert picks["LOS"] == [1]
    assert picks["EASY"] == [1]
