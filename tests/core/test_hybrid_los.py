"""Tests for Hybrid-LOS (Algorithms 2 and 3)."""

from __future__ import annotations

from repro.core.hybrid_los import HybridLOS
from tests.conftest import batch_job, dedicated_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestDelegation:
    def test_empty_dedicated_queue_delegates_to_delayed_los(self):
        """Line 4: behaves exactly like Delayed-LOS (Figure 2 pick)."""
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=5))
        assert sorted(started_ids(started)) == [2, 3]


class TestPromotion:
    def test_due_dedicated_head_promoted_with_cs(self):
        """Algorithm 3: due dedicated head moves to the batch head with
        scount = C_s and starts as soon as capacity permits."""
        harness = PolicyHarness(total=10, now=100.0)
        harness.enqueue(batch_job(1, submit=0.0, num=4))
        dedicated = dedicated_job(2, submit=0.0, num=6, requested_start=100.0)
        harness.enqueue(dedicated)
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        # The dedicated job jumps the queue and starts immediately.
        assert started_ids(started)[0] == 2
        assert dedicated.scount == 7
        assert not harness.dedicated_queue

    def test_due_dedicated_promoted_even_with_empty_batch_queue(self):
        """Lines 39-42."""
        harness = PolicyHarness(total=10, now=50.0)
        harness.enqueue(dedicated_job(1, submit=0.0, num=4, requested_start=50.0))
        started = harness.cycle_to_fixpoint(HybridLOS())
        assert started_ids(started) == [1]

    def test_future_dedicated_not_promoted(self):
        harness = PolicyHarness(total=10, now=10.0)
        harness.enqueue(dedicated_job(1, submit=0.0, num=4, requested_start=100.0))
        assert harness.cycle_to_fixpoint(HybridLOS()) == []
        assert len(harness.dedicated_queue) == 1

    def test_promoted_dedicated_waits_for_capacity(self):
        """Insufficient capacity: the dedicated job is delayed —
        'unavoidable due to insufficient capacity' (§III-B)."""
        harness = PolicyHarness(total=10, now=100.0)
        harness.run_job(batch_job(100, num=8, estimate=200.0), started_at=90.0)
        harness.enqueue(dedicated_job(1, submit=0.0, num=6, requested_start=100.0))
        started = harness.cycle_to_fixpoint(HybridLOS())
        assert started == []  # promoted to batch head, but cannot start
        assert harness.batch_queue.head.job_id == 1


class TestPackingAroundDedicated:
    def test_batch_jobs_pack_around_future_reservation(self):
        """Lines 18-22: batch jobs that end before the dedicated start
        (or fit the leftover freeze capacity) start now."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(
            batch_job(1, num=4, estimate=50.0),  # ends before the start
            batch_job(2, submit=1.0, num=4, estimate=500.0),  # overruns, 4 > frec 2
        )
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        assert started_ids(started) == [1]

    def test_long_batch_job_fits_leftover_freeze_capacity(self):
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=6, requested_start=100.0))
        harness.enqueue(batch_job(1, num=4, estimate=500.0))  # frec = 10-6 = 4
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        assert started_ids(started) == [1]

    def test_batch_head_scount_bumped_when_skipped(self):
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        head = batch_job(1, num=4, estimate=500.0)  # will be skipped (overruns)
        harness.enqueue(head, batch_job(2, submit=1.0, num=2, estimate=50.0))
        harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        assert head.scount == 1

    def test_batch_head_with_exhausted_cs_starts_immediately(self):
        """Lines 35-37: scount >= C_s starts the head right away even
        though a dedicated reservation exists."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        head = batch_job(1, num=4, estimate=500.0)
        harness.enqueue(head)
        head.scount = 7
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        assert started_ids(started) == [1]

    def test_exhausted_cs_head_too_big_falls_back_to_packing(self):
        """Our capacity guard on lines 35-37: a too-big head cannot
        start; pack other batch jobs around the dedicated freeze."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.run_job(batch_job(100, num=6, estimate=30.0))
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        head = batch_job(1, num=6, estimate=500.0)
        filler = batch_job(2, submit=1.0, num=2, estimate=20.0)
        harness.enqueue(head, filler)
        head.scount = 7
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        assert started_ids(started) == [2]
        assert head.scount == 7  # no further bumps past C_s


class TestInsufficientDedicatedCapacity:
    def test_packing_continues_with_reanchored_freeze(self):
        """Lines 24-30: the dedicated group exceeds the capacity at its
        requested start; the freeze re-anchors and batch jobs that end
        before it still start."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.run_job(batch_job(100, num=6, estimate=300.0))
        # Dedicated group of 8 at t=100: only 4 free then (insufficient).
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(batch_job(1, num=4, estimate=200.0))  # ends before 300
        started = harness.cycle_to_fixpoint(HybridLOS(max_skip_count=7))
        assert started_ids(started) == [1]
