"""Tests for EASY-D and LOS-D (dedicated-queue baselines)."""

from __future__ import annotations

from repro.core.dedicated import EasyBackfillDedicated, LOSDedicated
from repro.core.hybrid_los import HybridLOS
from tests.conftest import batch_job, dedicated_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestLOSDedicated:
    def test_is_hybrid_with_cs_zero(self):
        scheduler = LOSDedicated()
        assert isinstance(scheduler, HybridLOS)
        assert scheduler.max_skip_count == 0
        assert scheduler.handles_dedicated

    def test_head_starts_right_away_around_dedicated(self):
        """LOS aggressiveness survives the -D extension: a fitting
        batch head starts immediately (scount 0 >= C_s = 0)."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4, estimate=50.0),
            batch_job(3, submit=2.0, num=6, estimate=50.0),
        )
        started = harness.cycle_to_fixpoint(LOSDedicated())
        # Aggressive: head (7) first, unlike Hybrid-LOS which can skip it.
        assert started_ids(started)[0] == 1

    def test_due_dedicated_promotion(self):
        harness = PolicyHarness(total=10, now=100.0)
        harness.enqueue(dedicated_job(1, submit=0.0, num=6, requested_start=100.0))
        started = harness.cycle_to_fixpoint(LOSDedicated())
        assert started_ids(started) == [1]

    def test_name(self):
        assert LOSDedicated().name == "LOS-D"
        assert LOSDedicated(elastic=True).name == "LOS-D-E"


class TestEasyBackfillDedicated:
    def test_plain_easy_without_dedicated_jobs(self):
        harness = PolicyHarness(total=10).enqueue(batch_job(1, num=7))
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfillDedicated())) == [1]

    def test_head_blocked_by_dedicated_reservation(self):
        """The head fits capacity but would overrun the dedicated
        reservation: it must wait."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(batch_job(1, num=4, estimate=500.0))  # frec = 2 < 4
        assert harness.cycle_to_fixpoint(EasyBackfillDedicated()) == []

    def test_head_ending_before_dedicated_start_runs(self):
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(batch_job(1, num=4, estimate=50.0))
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfillDedicated())) == [1]

    def test_backfill_respects_both_shadow_and_dedicated(self):
        harness = PolicyHarness(total=10, now=0.0)
        harness.run_job(batch_job(100, num=8, estimate=50.0))
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(
            batch_job(1, num=4, estimate=500.0),  # capacity-blocked head
            batch_job(2, submit=1.0, num=2, estimate=30.0),  # fits both constraints
            batch_job(3, submit=2.0, num=2, estimate=400.0),  # violates dedicated
        )
        started = harness.cycle_to_fixpoint(EasyBackfillDedicated())
        assert started_ids(started) == [2]

    def test_conservative_backfill_when_head_dedicated_blocked(self):
        """When the head is blocked only by the dedicated reservation,
        only jobs ending before the dedicated start may pass it."""
        harness = PolicyHarness(total=10, now=0.0)
        harness.enqueue(dedicated_job(50, submit=0.0, num=8, requested_start=100.0))
        harness.enqueue(
            batch_job(1, num=4, estimate=500.0),  # blocked by reservation
            batch_job(2, submit=1.0, num=2, estimate=60.0),  # ends by t=60 < 100
            batch_job(3, submit=2.0, num=2, estimate=200.0),  # would overrun
        )
        started = harness.cycle_to_fixpoint(EasyBackfillDedicated())
        assert started_ids(started) == [2]

    def test_due_dedicated_promotion_and_start(self):
        harness = PolicyHarness(total=10, now=100.0)
        harness.enqueue(batch_job(1, submit=0.0, num=4))
        harness.enqueue(dedicated_job(2, submit=0.0, num=6, requested_start=100.0))
        started = harness.cycle_to_fixpoint(EasyBackfillDedicated())
        assert started_ids(started)[0] == 2  # dedicated jumps the queue

    def test_handles_dedicated_flag(self):
        assert EasyBackfillDedicated().handles_dedicated
