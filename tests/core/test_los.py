"""Tests for the LOS baseline [7]."""

from __future__ import annotations

from repro.core.delayed_los import DelayedLOS
from repro.core.los import LOS
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestAggressiveHeadStart:
    def test_head_starts_right_away_when_it_fits(self):
        """The behaviour Delayed-LOS improves on: LOS takes
        Alternative-(a) of Figure 2 and wastes 3 processors."""
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        started = harness.cycle_to_fixpoint(LOS())
        assert started_ids(started) == [1]
        assert harness.machine.used == 7  # not the achievable 10

    def test_consecutive_heads_drain(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=4), batch_job(2, submit=1.0, num=4)
        )
        assert started_ids(harness.cycle_to_fixpoint(LOS())) == [1, 2]


class TestReservation:
    def test_blocked_head_gets_reservation_and_holes_fill(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=8, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=6, estimate=50.0),
            batch_job(2, submit=1.0, num=2, estimate=30.0),
        )
        started = harness.cycle_to_fixpoint(LOS())
        assert started_ids(started) == [2]

    def test_fill_never_delays_the_reservation(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=5, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=7, estimate=50.0),  # frec = 3
            batch_job(2, submit=1.0, num=5, estimate=500.0),  # would overrun
        )
        assert harness.cycle_to_fixpoint(LOS()) == []


class TestEquivalenceWithDelayedLOS:
    def test_los_is_delayed_los_with_cs_zero(self):
        assert isinstance(LOS(), DelayedLOS)
        assert LOS().max_skip_count == 0

    def test_identical_decisions_on_scenarios(self):
        """LOS and DelayedLOS(C_s=0) must behave identically."""
        scenarios = [
            [batch_job(1, num=7), batch_job(2, submit=1.0, num=4), batch_job(3, submit=2.0, num=6)],
            [batch_job(1, num=3), batch_job(2, submit=1.0, num=3), batch_job(3, submit=2.0, num=5)],
        ]
        for jobs in scenarios:
            a = PolicyHarness(total=10).enqueue(*[j.copy_for_run() for j in jobs])
            b = PolicyHarness(total=10).enqueue(*[j.copy_for_run() for j in jobs])
            started_los = started_ids(a.cycle_to_fixpoint(LOS()))
            started_dl0 = started_ids(b.cycle_to_fixpoint(DelayedLOS(max_skip_count=0)))
            assert started_los == started_dl0

    def test_name(self):
        assert LOS().name == "LOS"
        assert LOS(elastic=True).name == "LOS-E"
