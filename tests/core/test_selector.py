"""Tests for the adaptive algorithm selector (§V-A suggestion)."""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.core.selector import AdaptiveSelector
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestMixObservation:
    def test_share_over_queue_and_active(self):
        harness = PolicyHarness(total=640, granularity=32)
        harness.run_job(batch_job(100, num=32, estimate=100.0))  # small, running
        harness.enqueue(batch_job(1, num=128), batch_job(2, submit=1.0, num=320))
        selector = AdaptiveSelector()
        share = selector.small_job_share(harness.context())
        assert share == pytest.approx(1 / 3)

    def test_empty_system_counts_as_small(self):
        harness = PolicyHarness(total=320, granularity=32)
        assert AdaptiveSelector().small_job_share(harness.context()) == 1.0


class TestDelegation:
    def test_large_mix_uses_delayed_los(self):
        """Figure 2 scenario scaled up: all-large queue -> DP packing."""
        harness = PolicyHarness(total=320, granularity=32)
        harness.enqueue(
            batch_job(1, num=224),
            batch_job(2, submit=1.0, num=128),
            batch_job(3, submit=2.0, num=192),
        )
        selector = AdaptiveSelector(max_skip_count=5)
        started = harness.cycle_to_fixpoint(selector)
        assert selector.current_delegate == "Delayed-LOS"
        # DP behaviour: skips the 224 head for 128+192 = 320.
        assert sorted(started_ids(started)) == [2, 3]

    def test_small_mix_uses_easy(self):
        harness = PolicyHarness(total=320, granularity=32)
        harness.enqueue(
            batch_job(1, num=32),
            batch_job(2, submit=1.0, num=64),
            batch_job(3, submit=2.0, num=96),
        )
        selector = AdaptiveSelector(switch_share=0.7)
        harness.cycle_to_fixpoint(selector)
        assert selector.current_delegate == "EASY"

    def test_hysteresis_damps_switching(self):
        selector = AdaptiveSelector(switch_share=0.5, hysteresis=0.2)
        # Start in Delayed-LOS (default); a share just above the bare
        # threshold must NOT switch because of the dead band.
        harness = PolicyHarness(total=320, granularity=32)
        harness.enqueue(
            batch_job(1, num=32),
            batch_job(2, submit=1.0, num=32),
            batch_job(3, submit=2.0, num=128),
            batch_job(4, submit=3.0, num=128),
        )  # share 0.5 < 0.5 + 0.2
        harness.cycle_to_fixpoint(selector)
        assert selector.current_delegate == "Delayed-LOS"
        assert selector.switches == 0


class TestEndToEnd:
    def test_registry_entry(self):
        scheduler = make_scheduler("ADAPTIVE", max_skip_count=9)
        assert isinstance(scheduler, AdaptiveSelector)
        assert scheduler._delayed.max_skip_count == 9
        assert make_scheduler("ADAPTIVE-E").elastic

    def test_full_simulation_matches_best_of_both_roughly(self, small_batch_workload):
        from repro.experiments.sweep import run_algorithms

        results = run_algorithms(
            small_batch_workload, ("EASY", "Delayed-LOS", "ADAPTIVE")
        )
        adaptive = results["ADAPTIVE"].mean_wait
        best_fixed = min(results["EASY"].mean_wait, results["Delayed-LOS"].mean_wait)
        worst_fixed = max(results["EASY"].mean_wait, results["Delayed-LOS"].mean_wait)
        # The selector tracks the envelope: never materially worse than
        # the worst fixed policy, usually close to the best.
        assert adaptive <= worst_fixed * 1.15
        assert results["ADAPTIVE"].n_jobs == len(small_batch_workload)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="switch_share"):
            AdaptiveSelector(switch_share=1.5)
        with pytest.raises(ValueError, match="hysteresis"):
            AdaptiveSelector(hysteresis=-0.1)
