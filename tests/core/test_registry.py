"""Tests for the algorithm registry (Table III)."""

from __future__ import annotations

import pytest

from repro.core.dedicated import EasyBackfillDedicated, LOSDedicated
from repro.core.delayed_los import DelayedLOS
from repro.core.easy import EasyBackfill
from repro.core.hybrid_los import HybridLOS
from repro.core.los import LOS
from repro.core.registry import ALGORITHMS, make_scheduler

#: The twelve rows of Table III.
TABLE_III = [
    ("EASY", "Batch", False),
    ("EASY-D", "Heterogeneous", False),
    ("EASY-E", "Batch", True),
    ("EASY-DE", "Heterogeneous", True),
    ("LOS", "Batch", False),
    ("LOS-D", "Heterogeneous", False),
    ("LOS-E", "Batch", True),
    ("LOS-DE", "Heterogeneous", True),
    ("Delayed-LOS", "Batch", False),
    ("Hybrid-LOS", "Heterogeneous", False),
    ("Delayed-LOS-E", "Batch", True),
    ("Hybrid-LOS-E", "Heterogeneous", True),
]


class TestTableIII:
    def test_all_twelve_algorithms_present(self):
        for name, _, _ in TABLE_III:
            assert name in ALGORITHMS

    @pytest.mark.parametrize("name,workload,ecc", TABLE_III)
    def test_scope_matches_table(self, name, workload, ecc):
        scheduler = make_scheduler(name)
        assert scheduler.handles_dedicated == (workload == "Heterogeneous")
        assert scheduler.elastic == ecc
        assert scheduler.name == name  # canonical registry spelling

    def test_extra_baselines_available(self):
        assert not make_scheduler("FCFS").handles_dedicated
        assert not make_scheduler("CONSERVATIVE").elastic


class TestConstruction:
    def test_classes(self):
        assert isinstance(make_scheduler("EASY"), EasyBackfill)
        assert isinstance(make_scheduler("EASY-D"), EasyBackfillDedicated)
        assert isinstance(make_scheduler("LOS"), LOS)
        assert isinstance(make_scheduler("LOS-D"), LOSDedicated)
        assert isinstance(make_scheduler("Delayed-LOS"), DelayedLOS)
        assert isinstance(make_scheduler("Hybrid-LOS"), HybridLOS)

    def test_cs_reaches_delayed_and_hybrid(self):
        assert make_scheduler("Delayed-LOS", max_skip_count=12).max_skip_count == 12
        assert make_scheduler("Hybrid-LOS", max_skip_count=12).max_skip_count == 12

    def test_cs_pinned_for_los_family(self):
        # LOS's behaviour IS C_s = 0; the knob must not leak into it.
        assert make_scheduler("LOS", max_skip_count=12).max_skip_count == 0
        assert make_scheduler("LOS-D", max_skip_count=12).max_skip_count == 0

    def test_lookahead_propagates(self):
        assert make_scheduler("LOS", lookahead=25).lookahead == 25
        assert make_scheduler("Delayed-LOS", lookahead=None).lookahead is None

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="EASY-DE"):
            make_scheduler("NOPE")

    def test_instances_are_fresh(self):
        a = make_scheduler("Delayed-LOS")
        b = make_scheduler("Delayed-LOS")
        assert a is not b
