"""Tests for the DP memoization layer (repro.core.memo).

Covers the cache mechanics (LRU bound, hit/miss counters), the env
kill-switch, and the load-bearing equivalence properties:

- memoized selections are identical to unmemoized ones (the cache maps
  solved indices back onto live jobs),
- the bitset subset-sum solvers agree with the general value-table
  solvers on every instance the machine invariant can produce,
  including the FCFS tie-break.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.core.dp import (
    basic_dp_select,
    reservation_dp_select,
)
from repro.core.dp import (
    _solve_basic_bitset,
    _solve_basic_table,
    _solve_reservation_bitset,
    _solve_reservation_table,
)
from repro.core.memo import (
    BASIC_CACHE,
    ENV_NO_MEMO,
    LRUCache,
    clear_caches,
    memo_enabled,
)
from tests.conftest import batch_job


def _jobs(sizes, estimates=None):
    estimates = estimates or [100.0] * len(sizes)
    return [
        batch_job(i + 1, submit=float(i), num=size, estimate=est)
        for i, (size, est) in enumerate(zip(sizes, estimates))
    ]


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", (1,))
        assert cache.get("a") == (1,)
        assert cache.get("b") is None

    def test_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", (1,))
        cache.put("b", (2,))
        cache.get("a")  # refresh "a"; "b" becomes the eviction victim
        cache.put("c", (3,))
        assert cache.get("a") == (1,)
        assert cache.get("b") is None
        assert cache.get("c") == (3,)

    def test_bounded_size(self):
        cache = LRUCache(capacity=8)
        for i in range(100):
            cache.put(i, (i,))
        assert len(cache) == 8


class TestMemoEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(ENV_NO_MEMO, raising=False)
        assert memo_enabled()

    def test_kill_switch_values(self, monkeypatch):
        for value in ("1", "true", "yes", "on", "TRUE"):
            monkeypatch.setenv(ENV_NO_MEMO, value)
            assert not memo_enabled(), value
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv(ENV_NO_MEMO, value)
            assert memo_enabled(), value


sizes_strategy = st.lists(st.integers(1, 12), min_size=1, max_size=8)


@contextmanager
def _memo_disabled():
    """Flip the kill-switch for one call (hypothesis-safe: no
    function-scoped fixtures inside @given bodies)."""
    saved = os.environ.get(ENV_NO_MEMO)
    os.environ[ENV_NO_MEMO] = "1"
    try:
        yield
    finally:
        if saved is None:
            del os.environ[ENV_NO_MEMO]
        else:
            os.environ[ENV_NO_MEMO] = saved


class TestMemoizedEquivalence:
    """Memoized results must be indistinguishable from fresh solves."""

    @given(sizes=sizes_strategy, free=st.integers(1, 24))
    @settings(max_examples=200, deadline=None)
    def test_basic_memo_on_off_identical(self, sizes, free):
        jobs = _jobs([s * 32 for s in sizes])
        with _memo_disabled():
            plain = basic_dp_select(jobs, free * 32, granularity=32)
        clear_caches()
        cold = basic_dp_select(jobs, free * 32, granularity=32)
        warm = basic_dp_select(jobs, free * 32, granularity=32)  # cache hit
        assert plain == cold == warm

    @given(
        sizes=sizes_strategy,
        estimates=st.lists(st.floats(1.0, 500.0), min_size=8, max_size=8),
        free=st.integers(1, 24),
        frec=st.integers(0, 12),
    )
    @settings(max_examples=200, deadline=None)
    def test_reservation_memo_on_off_identical(
        self, sizes, estimates, free, frec
    ):
        jobs = _jobs([s * 32 for s in sizes], estimates[: len(sizes)])
        args = dict(
            free=free * 32, freeze_capacity=frec * 32, freeze_time=250.0,
            now=0.0, granularity=32,
        )
        with _memo_disabled():
            plain = reservation_dp_select(jobs, **args)
        clear_caches()
        cold = reservation_dp_select(jobs, **args)
        warm = reservation_dp_select(jobs, **args)
        assert plain == cold == warm

    def test_hit_returns_indices_remapped_to_live_jobs(self):
        clear_caches()
        first = _jobs([64, 128, 96])
        second = _jobs([64, 128, 96])  # distinct objects, same instance
        a = basic_dp_select(first, 224, granularity=32)
        b = basic_dp_select(second, 224, granularity=32)
        assert [j.num for j in a.jobs] == [j.num for j in b.jobs]
        assert all(x in second for x in b.jobs)  # not the cached objects
        assert len(BASIC_CACHE) == 1


class TestBitsetMatchesTable:
    """The subset-sum bitset solvers must reproduce the value-table
    solvers exactly, selected indices included (FCFS tie-break)."""

    @given(sizes=st.lists(st.integers(1, 10), min_size=1, max_size=10),
           capacity=st.integers(1, 32))
    @settings(max_examples=300, deadline=None)
    def test_basic(self, sizes, capacity):
        entries = tuple((s, s * 32) for s in sizes)
        assert _solve_basic_bitset(capacity, entries) == _solve_basic_table(
            capacity, entries
        )

    @given(
        pairs=st.lists(
            st.tuples(st.integers(1, 8), st.booleans()), min_size=1, max_size=8
        ),
        cap_now=st.integers(1, 16),
        cap_freeze=st.integers(0, 10),
    )
    @settings(max_examples=300, deadline=None)
    def test_reservation(self, pairs, cap_now, cap_freeze):
        # frenum is 0 or the full size in real instances (Algorithm 1
        # line 16); the solver itself accepts any fsize <= size.
        entries = tuple(
            (size, size if holds else 0, size * 32) for size, holds in pairs
        )
        assert _solve_reservation_bitset(
            cap_now, cap_freeze, entries
        ) == _solve_reservation_table(cap_now, cap_freeze, entries)
