"""Unit tests for the scheduler base interfaces."""

from __future__ import annotations

import pytest

from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from tests.conftest import batch_job, dedicated_job
from tests.core.policy_harness import PolicyHarness


class TestCycleDecision:
    def test_nothing_is_empty(self):
        assert CycleDecision.nothing().is_empty()

    def test_starts_make_it_non_empty(self):
        assert not CycleDecision(starts=[batch_job(1)]).is_empty()

    def test_promotions_make_it_non_empty(self):
        job = dedicated_job(1, requested_start=10.0)
        assert not CycleDecision(promotions=[job]).is_empty()


class TestSchedulerContext:
    def test_free_matches_machine_and_active(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=4, estimate=10.0))
        ctx = harness.context()
        assert ctx.free == 6

    def test_free_cache_invalidation(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=4, estimate=10.0))
        ctx = harness.context()
        assert ctx.free == 6
        # The cached value survives capacity changes until the runner
        # invalidates it between passes.
        ctx.active.remove(ctx.active[0])
        assert ctx.free == 6
        ctx.invalidate_free()
        assert ctx.free == 10

    def test_allow_scount_increment_flag(self):
        harness = PolicyHarness(total=10)
        assert harness.context(allow_scount_increment=True).allow_scount_increment
        assert not harness.context(allow_scount_increment=False).allow_scount_increment


class TestSchedulerBase:
    def test_elastic_rename(self):
        class Dummy(Scheduler):
            name = "DUMMY"

            def cycle(self, ctx: SchedulerContext) -> CycleDecision:
                return CycleDecision.nothing()

        assert Dummy().name == "DUMMY"
        assert Dummy(elastic=True).name == "DUMMY-E"
        assert Dummy(elastic=True).elastic

    def test_abstract_cycle_required(self):
        with pytest.raises(TypeError):
            Scheduler()  # type: ignore[abstract]

    def test_due_dedicated_promotion_helper(self):
        harness = PolicyHarness(total=10, now=100.0)
        harness.enqueue(dedicated_job(1, submit=0.0, requested_start=100.0))
        decision = Scheduler.due_dedicated_promotion(harness.context())
        assert decision is not None
        assert [j.job_id for j in decision.promotions] == [1]

    def test_due_dedicated_promotion_future_start(self):
        harness = PolicyHarness(total=10, now=50.0)
        harness.enqueue(dedicated_job(1, submit=0.0, requested_start=100.0))
        assert Scheduler.due_dedicated_promotion(harness.context()) is None

    def test_due_dedicated_promotion_empty_queue(self):
        harness = PolicyHarness(total=10)
        assert Scheduler.due_dedicated_promotion(harness.context()) is None
