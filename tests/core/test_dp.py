"""Tests for Basic_DP and Reservation_DP, including brute-force
equivalence (the DPs must be *exact* knapsack solvers)."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dp import basic_dp, reservation_dp
from tests.conftest import batch_job


def _jobs(sizes, estimates=None):
    estimates = estimates or [100.0] * len(sizes)
    return [
        batch_job(i + 1, submit=float(i), num=size, estimate=est)
        for i, (size, est) in enumerate(zip(sizes, estimates))
    ]


def brute_force_basic(jobs, free):
    """Exhaustive max-utilization subset."""
    best = 0
    for r in range(len(jobs) + 1):
        for combo in combinations(jobs, r):
            total = sum(j.num for j in combo)
            if total <= free:
                best = max(best, total)
    return best


def brute_force_reservation(jobs, free, frec, fret, now):
    best = 0
    for r in range(len(jobs) + 1):
        for combo in combinations(jobs, r):
            total = sum(j.num for j in combo)
            freeze_total = sum(j.num for j in combo if now + j.estimate >= fret)
            if total <= free and freeze_total <= frec:
                best = max(best, total)
    return best


class TestBasicDP:
    def test_paper_figure2_example(self):
        """10-processor machine; jobs 7, 4, 6: the DP must pick {4, 6}
        for utilization 10, not the head's 7 (the Delayed-LOS
        motivation)."""
        jobs = _jobs([7, 4, 6])
        selected = basic_dp(jobs, free=10)
        assert sorted(j.num for j in selected) == [4, 6]
        assert sum(j.num for j in selected) == 10

    def test_selects_everything_when_it_fits(self):
        jobs = _jobs([32, 64, 96])
        assert basic_dp(jobs, free=320, granularity=32) == jobs

    def test_empty_inputs(self):
        assert basic_dp([], free=100) == []
        assert basic_dp(_jobs([10]), free=0) == []
        assert basic_dp(_jobs([10]), free=-5) == []

    def test_oversized_jobs_excluded(self):
        jobs = _jobs([500, 30])
        selected = basic_dp(jobs, free=100)
        assert [j.num for j in selected] == [30]

    def test_queue_order_preserved_in_result(self):
        jobs = _jobs([3, 5, 2, 4])
        selected = basic_dp(jobs, free=9)
        indices = [jobs.index(j) for j in selected]
        assert indices == sorted(indices)

    def test_earlier_jobs_preferred_on_ties(self):
        # Both {a} and {b} give utilization 4; FCFS fairness demands a.
        jobs = _jobs([4, 4])
        selected = basic_dp(jobs, free=4)
        assert [j.job_id for j in selected] == [1]

    def test_lookahead_limits_window(self):
        jobs = _jobs([90, 10, 100])
        # With the full queue the best is 90+10=100;
        assert sum(j.num for j in basic_dp(jobs, free=100, lookahead=None)) == 100
        # with lookahead=1 only the first job is visible.
        assert sum(j.num for j in basic_dp(jobs, free=100, lookahead=1)) == 90

    def test_granularity_compression(self):
        jobs = _jobs([96, 128, 224])
        selected = basic_dp(jobs, free=320, granularity=32)
        assert sum(j.num for j in selected) == 320

    @settings(max_examples=200, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 12), min_size=1, max_size=10),
        free=st.integers(0, 30),
    )
    def test_matches_brute_force(self, sizes, free):
        jobs = _jobs(sizes)
        selected = basic_dp(jobs, free=free, lookahead=None)
        value = sum(j.num for j in selected)
        assert value == brute_force_basic(jobs, free)
        assert value <= max(free, 0)
        assert len({j.job_id for j in selected}) == len(selected)


class TestReservationDP:
    def test_freeze_constraint_enforced(self):
        """Jobs running past the freeze must fit the freeze capacity."""
        now, fret = 0.0, 50.0
        jobs = _jobs([6, 6], estimates=[100.0, 100.0])  # both run past fret
        selected = reservation_dp(jobs, free=12, freeze_capacity=6, freeze_time=fret, now=now)
        assert sum(j.num for j in selected) == 6  # only one fits the shadow

    def test_short_jobs_ignore_freeze(self):
        """A job ending strictly before fret has frenum = 0."""
        now, fret = 0.0, 50.0
        jobs = _jobs([6, 6], estimates=[40.0, 100.0])
        selected = reservation_dp(jobs, free=12, freeze_capacity=6, freeze_time=fret, now=now)
        assert sum(j.num for j in selected) == 12

    def test_boundary_is_strict(self):
        """t + dur == fret occupies freeze capacity (line 16's <)."""
        now, fret = 0.0, 50.0
        jobs = _jobs([6], estimates=[50.0])
        assert reservation_dp(jobs, free=6, freeze_capacity=0, freeze_time=fret, now=now) == []
        jobs = _jobs([6], estimates=[49.0])
        assert len(reservation_dp(jobs, free=6, freeze_capacity=0, freeze_time=fret, now=now)) == 1

    def test_zero_freeze_capacity(self):
        now, fret = 0.0, 50.0
        jobs = _jobs([4, 5], estimates=[100.0, 10.0])
        selected = reservation_dp(jobs, free=9, freeze_capacity=0, freeze_time=fret, now=now)
        assert [j.num for j in selected] == [5]

    def test_negative_freeze_capacity_clamped(self):
        jobs = _jobs([4], estimates=[10.0])
        selected = reservation_dp(jobs, free=9, freeze_capacity=-3, freeze_time=50.0, now=0.0)
        assert [j.num for j in selected] == [4]  # ends before freeze

    def test_empty_inputs(self):
        assert reservation_dp([], 10, 10, 50.0, 0.0) == []
        assert reservation_dp(_jobs([5]), 0, 10, 50.0, 0.0) == []

    @settings(max_examples=200, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 10), min_size=1, max_size=8),
        estimates=st.lists(st.integers(1, 100), min_size=8, max_size=8),
        free=st.integers(0, 25),
        frec=st.integers(0, 25),
        fret=st.integers(1, 100),
    )
    def test_matches_brute_force(self, sizes, estimates, free, frec, fret):
        jobs = _jobs(sizes, estimates=[float(e) for e in estimates[: len(sizes)]])
        now = 0.0
        selected = reservation_dp(
            jobs, free=free, freeze_capacity=frec, freeze_time=float(fret), now=now, lookahead=None
        )
        value = sum(j.num for j in selected)
        assert value == brute_force_reservation(jobs, free, frec, float(fret), now)
        # And the selection itself is feasible.
        assert value <= max(free, 0)
        assert sum(j.num for j in selected if now + j.estimate >= fret) <= max(frec, 0)

    @settings(max_examples=100, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 10), min_size=1, max_size=8),
        free=st.integers(0, 30),
    )
    def test_reduces_to_basic_dp_with_infinite_freeze(self, sizes, free):
        """With unconstrained freeze capacity, Reservation_DP must
        select the same utilization as Basic_DP."""
        jobs = _jobs(sizes)
        basic = sum(j.num for j in basic_dp(jobs, free=free, lookahead=None))
        reserved = sum(
            j.num
            for j in reservation_dp(
                jobs, free=free, freeze_capacity=free, freeze_time=0.0, now=0.0, lookahead=None
            )
        )
        assert basic == reserved
