"""Tests for the §II-B ordered-queue baselines (SJF/SMALLEST/LJF)."""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.core.sizeorder import LargestJobFirst, ShortestJobFirst, SmallestJobFirst
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


def mixed_queue(harness: PolicyHarness) -> None:
    harness.enqueue(
        batch_job(1, num=6, estimate=500.0),
        batch_job(2, submit=1.0, num=2, estimate=50.0),
        batch_job(3, submit=2.0, num=4, estimate=200.0),
    )


class TestShortestJobFirst:
    def test_picks_shortest_runtime(self):
        harness = PolicyHarness(total=6)
        mixed_queue(harness)
        started = harness.cycle_to_fixpoint(ShortestJobFirst())
        # 2 (50s) first, then 3 (200s) fits the remaining 4 procs.
        assert started_ids(started) == [2, 3]

    def test_ties_break_by_arrival(self):
        harness = PolicyHarness(total=4)
        harness.enqueue(
            batch_job(1, num=4, estimate=100.0),
            batch_job(2, submit=1.0, num=4, estimate=100.0),
        )
        assert started_ids(harness.cycle_to_fixpoint(ShortestJobFirst())) == [1]


class TestSmallestJobFirst:
    def test_picks_fewest_processors(self):
        harness = PolicyHarness(total=6)
        mixed_queue(harness)
        started = harness.cycle_to_fixpoint(SmallestJobFirst())
        assert started_ids(started) == [2, 3]  # 2 procs, then 4

    def test_head_can_be_overtaken(self):
        """The §II-B fragmentation critique: small jobs flow past."""
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=5, estimate=1000.0))
        harness.enqueue(
            batch_job(1, num=8, estimate=10.0),  # head, cannot fit
            batch_job(2, submit=1.0, num=2, estimate=900.0),
        )
        started = harness.cycle_to_fixpoint(SmallestJobFirst())
        assert started_ids(started) == [2]  # no head protection at all


class TestLargestJobFirst:
    def test_picks_most_processors(self):
        harness = PolicyHarness(total=6)
        mixed_queue(harness)
        started = harness.cycle_to_fixpoint(LargestJobFirst())
        assert started_ids(started) == [1]  # the 6-proc job takes all

    def test_first_fit_decreasing_behaviour(self):
        harness = PolicyHarness(total=10)
        harness.enqueue(
            batch_job(1, num=3),
            batch_job(2, submit=1.0, num=7),
            batch_job(3, submit=2.0, num=4),
        )
        started = harness.cycle_to_fixpoint(LargestJobFirst())
        assert started_ids(started) == [2, 1]  # 7, then 3 fills to 10


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["SJF", "SMALLEST", "LJF"])
    def test_complete_simulation(self, name, small_batch_workload):
        from repro.experiments.runner import simulate

        metrics = simulate(small_batch_workload, make_scheduler(name))
        assert metrics.n_jobs == len(small_batch_workload)
        assert metrics.slowdown >= 1.0

    def test_registry_names(self):
        assert make_scheduler("SJF").name == "SJF"
        assert isinstance(make_scheduler("LJF"), LargestJobFirst)
