"""Scheduler-initiated malleability: the Malleable-* policy family.

Three layers of coverage (docs/malleability.md):

- planner unit tests — average steal, floors/ceilings, all-or-nothing;
- single-cycle policy decisions via :class:`PolicyHarness` — who
  donates, who starts, when the agreement gate blocks;
- end-to-end runs — work-conserving resize arithmetic down to exact
  finish times, telemetry counters, the 1e-9 trace oracle (with and
  without fault injection), and the merged-but-disabled guarantee:
  every pre-existing algorithm is *bit-for-bit unchanged* on a
  workload that merely declares malleability ranges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fcfs import FCFS
from repro.core.malleable import (
    MalleableAgreement,
    MalleableBackfill,
    MalleableFCFS,
    expand_ceiling,
    plan_average_steal,
    shrink_floor,
)
from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import SimulationRunner, simulate
from repro.faults.model import FaultConfig
from repro.obs.analytics import assert_consistent, replay
from repro.workload.ecc import ECCKind
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.job import Job
from repro.workload.transform import make_malleable
from repro.workload.twostage import TwoStageSizeConfig
from tests.conftest import batch_job, make_workload
from tests.core.policy_harness import PolicyHarness

MALLEABLE_POLICIES = ["Malleable-FCFS", "Malleable-Backfill", "Malleable-Agreement"]
LEGACY_ALGORITHMS = [n for n in sorted(ALGORITHMS) if n not in MALLEABLE_POLICIES]


def mjob(job_id, num, *, submit=0.0, estimate=100.0, lo=None, pref=None, hi=None):
    """A batch job with an explicit malleability range."""
    return Job(
        job_id=job_id,
        submit=submit,
        num=num,
        estimate=estimate,
        min_procs=lo,
        pref_procs=pref,
        max_procs=hi,
    )


def generated(seed=11, n_jobs=40, p_dedicated=0.0, p_extend=0.1, p_reduce=0.1):
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_dedicated=p_dedicated,
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Planner helpers
# ----------------------------------------------------------------------
class TestPlanners:
    def test_even_split_across_donors(self):
        donors = [mjob(1, 4, lo=1), mjob(2, 4, lo=1)]
        assert plan_average_steal(donors, need=4, gran=1) == {1: 2, 2: 2}

    def test_round_robin_order_breaks_ties_by_list_order(self):
        donors = [mjob(1, 4, lo=1), mjob(2, 4, lo=1)]
        assert plan_average_steal(donors, need=3, gran=1) == {1: 2, 2: 1}

    def test_donor_at_floor_is_skipped(self):
        donors = [mjob(1, 2, lo=2), mjob(2, 6, lo=2)]
        assert plan_average_steal(donors, need=3, gran=1) == {2: 3}

    def test_all_or_nothing(self):
        donors = [mjob(1, 4, lo=2), mjob(2, 4, lo=2)]
        # combined slack is 4 < 5: nobody shrinks
        assert plan_average_steal(donors, need=5, gran=1) is None

    def test_non_positive_need_is_rejected(self):
        assert plan_average_steal([mjob(1, 8, lo=1)], need=0, gran=1) is None

    def test_granularity_snapping(self):
        job = mjob(1, 128, lo=33, pref=70, hi=130)
        assert shrink_floor(job, gran=32) == 64  # 33 rounded up
        assert expand_ceiling(job, gran=32, machine_size=320) == 128  # 130 down

    def test_floor_never_below_one_unit(self):
        assert shrink_floor(mjob(1, 64, lo=1), gran=32) == 32


# ----------------------------------------------------------------------
# Single-cycle decisions
# ----------------------------------------------------------------------
class TestShrinkToStart:
    def test_steals_to_start_the_head(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 8, lo=4))
        head = batch_job(2, num=6)
        h.enqueue(head)
        decision = MalleableFCFS().cycle(h.context())
        assert decision.starts == [head]
        (cmd,) = decision.commands
        assert (cmd.job_id, cmd.kind, cmd.amount) == (1, ECCKind.REDUCE_PROCS, 4)

    def test_steal_is_spread_evenly(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 4, lo=1))
        h.run_job(mjob(2, 4, lo=1))
        h.enqueue(batch_job(3, num=6))
        decision = MalleableFCFS().cycle(h.context())
        assert {c.job_id: c.amount for c in decision.commands} == {1: 2, 2: 2}
        assert all(c.kind is ECCKind.REDUCE_PROCS for c in decision.commands)

    def test_all_or_nothing_leaves_everyone_alone(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 4, lo=3))
        h.run_job(mjob(2, 4, lo=3))
        h.enqueue(batch_job(3, num=6))  # need 4, slack only 2
        assert MalleableFCFS().cycle(h.context()).is_empty()

    def test_rigid_running_jobs_are_never_touched(self):
        h = PolicyHarness(total=10)
        h.run_job(batch_job(1, num=8))
        h.enqueue(batch_job(2, num=6))
        assert MalleableFCFS().cycle(h.context()).is_empty()

    def test_fitting_head_is_passed_through_from_inner(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 4, lo=1))
        head = batch_job(2, num=6)
        h.enqueue(head)
        decision = MalleableFCFS().cycle(h.context())
        assert decision.starts == [head] and not decision.commands


class TestAgreementGate:
    def _state(self):
        # two running malleable jobs, one of them already at its floor
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 6, lo=2))
        h.run_job(mjob(2, 2, lo=2, hi=4))
        h.enqueue(batch_job(3, num=4))  # need 2
        return h

    def test_below_threshold_blocks_the_steal(self):
        decision = MalleableAgreement(agreement=0.6).cycle(self._state().context())
        assert decision.is_empty()  # 1 donor of 2 running < 0.6

    def test_at_threshold_the_steal_proceeds(self):
        decision = MalleableAgreement(agreement=0.5).cycle(self._state().context())
        assert [job.job_id for job in decision.starts] == [3]
        assert {c.job_id: c.amount for c in decision.commands} == {1: 2}


class TestExpand:
    def test_backfill_grows_to_pref_then_max(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 2, lo=2, pref=6, hi=10))
        decision = MalleableBackfill().cycle(h.context())
        (cmd,) = decision.commands  # one merged EP per job
        assert (cmd.job_id, cmd.kind, cmd.amount) == (1, ECCKind.EXTEND_PROCS, 8)

    def test_agreement_variant_stops_at_pref(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 2, lo=2, pref=6, hi=10))
        (cmd,) = MalleableAgreement().cycle(h.context()).commands
        assert cmd.amount == 4

    def test_pref_is_a_common_pool(self):
        # both jobs reach pref before either grows toward max
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 2, lo=2, pref=4, hi=10))
        h.run_job(mjob(2, 2, lo=2, pref=4, hi=10))
        decision = MalleableAgreement().cycle(h.context())
        assert {c.job_id: c.amount for c in decision.commands} == {1: 2, 2: 2}

    def test_fcfs_variant_never_expands(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 2, lo=2, pref=6, hi=10))
        assert MalleableFCFS().cycle(h.context()).is_empty()

    def test_no_expansion_when_queue_is_nonempty(self):
        h = PolicyHarness(total=10)
        h.run_job(mjob(1, 2, lo=2, pref=6, hi=10))
        h.enqueue(batch_job(2, num=10))  # head that cannot fit
        decision = MalleableBackfill().cycle(h.context())
        assert not any(c.kind is ECCKind.EXTEND_PROCS for c in decision.commands)


class TestConstruction:
    def test_registry_names_have_no_elastic_suffix(self):
        for name in MALLEABLE_POLICIES:
            scheduler = make_scheduler(name)
            assert scheduler.name == name
            assert scheduler.malleable and scheduler.elastic
            assert not scheduler.handles_dedicated

    def test_legacy_policies_are_not_malleable(self):
        for name in LEGACY_ALGORITHMS:
            assert not make_scheduler(name).malleable

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="expand"):
            MalleableBackfill.__mro__[1](MalleableFCFS(), expand="bogus")
        with pytest.raises(ValueError, match="agreement"):
            MalleableAgreement(agreement=1.5)


# ----------------------------------------------------------------------
# End-to-end: work-conserving arithmetic and telemetry
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_shrink_stretches_donor_and_starts_head(self):
        workload = make_workload(
            [
                mjob(1, 8, estimate=100.0, lo=4),
                batch_job(2, submit=10.0, num=6, estimate=50.0),
            ],
            machine_size=10,
            granularity=1,
        )
        runner = SimulationRunner(workload, make_scheduler("Malleable-FCFS"))
        metrics = runner.run()
        records = {r.job_id: r for r in metrics.records}
        # job 2 starts the instant it arrives, on the stolen capacity
        assert records[2].start == 10.0 and records[2].finish == 60.0
        # donor: 10s at 8 procs, then the 90s residual doubled at 4
        assert records[1].finish == pytest.approx(10.0 + 90.0 * (8 / 4))
        counters = runner.telemetry.counters
        assert counters["malleable_shrinks"] == 1
        assert counters["malleable_procs_reclaimed"] == 4
        assert counters["malleable_node_s_reclaimed"] == 360  # 4 procs x 90 s

    def test_expand_compresses_the_lone_job(self):
        workload = make_workload(
            [mjob(1, 2, estimate=100.0, lo=2, pref=6, hi=10)],
            machine_size=10,
            granularity=1,
        )
        runner = SimulationRunner(workload, make_scheduler("Malleable-Backfill"))
        metrics = runner.run()
        # started at 2, expanded to 10 in the same cycle: 100 * 2/10
        assert metrics.records[0].finish == pytest.approx(20.0)
        counters = runner.telemetry.counters
        assert counters["malleable_expands"] == 1
        assert counters["malleable_procs_soaked"] == 8
        assert counters["malleable_node_s_soaked"] == 160  # 8 procs x 20 s

    def test_scheduler_resizes_are_traced_with_origin(self):
        workload = make_workload(
            [mjob(1, 2, estimate=100.0, lo=2, pref=6, hi=10)],
            machine_size=10,
            granularity=1,
        )
        runner = SimulationRunner(
            workload, make_scheduler("Malleable-Backfill"), trace=True
        )
        runner.run()
        (resize,) = [
            r for r in runner.trace.of_kind("ecc")
            if r.data.get("origin") == "scheduler"
        ]
        assert resize.data["num"] == 10
        assert resize.data["outcome"] == "applied-running"

    def test_rigid_workload_reduces_to_inner_policy(self):
        workload = generated(seed=13)
        # the family is elastic by construction, so the -E variant is
        # the exact inner equivalent on an ECC-carrying workload
        pairs = [
            ("Malleable-Backfill", make_scheduler("EASY-E")),
            ("Malleable-Agreement", make_scheduler("EASY-E")),
            ("Malleable-FCFS", FCFS(elastic=True)),
        ]
        for outer, inner_scheduler in pairs:
            inner = inner_scheduler.name
            a = SimulationRunner(workload, make_scheduler(outer), trace=True)
            b = SimulationRunner(workload, inner_scheduler, trace=True)
            ma, mb = a.run(), b.run()
            # metrics objects differ only by the algorithm label
            assert ma.records == mb.records, f"{outer} != {inner} on rigid workload"
            assert (ma.utilization, ma.mean_wait, ma.slowdown) == (
                mb.utilization, mb.mean_wait, mb.slowdown
            )
            assert list(a.trace) == list(b.trace)


# ----------------------------------------------------------------------
# The 1e-9 oracle, with and without faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MALLEABLE_POLICIES)
class TestOracle:
    def _check(self, name, workload, **kwargs):
        runner = SimulationRunner(
            workload, make_scheduler(name), trace=True, **kwargs
        )
        metrics = runner.run()
        rebuilt = replay(
            list(runner.trace), {"machine_size": workload.machine_size}
        )
        assert_consistent(rebuilt, metrics, context=name)
        return runner

    def test_oracle_on_malleable_workload(self, name):
        workload = make_malleable(generated(seed=3, n_jobs=60), 1.0, seed=2)
        runner = self._check(name, workload)
        counters = runner.telemetry.counters
        activity = counters.get("malleable_shrinks", 0) + counters.get(
            "malleable_expands", 0
        )
        assert activity > 0, f"{name} never resized anything"

    def test_oracle_under_fault_injection(self, name):
        workload = make_malleable(generated(seed=7, n_jobs=60), 0.7, seed=4)
        self._check(
            name,
            workload,
            faults=FaultConfig(mtbf=30000.0, mttr=2000.0, seed=5, p_job_fail=0.05),
        )

    def test_determinism(self, name):
        workload = make_malleable(generated(seed=5, n_jobs=40), 1.0, seed=1)
        rows = [
            simulate(workload, make_scheduler(name)).as_row() for _ in range(2)
        ]
        assert rows[0] == rows[1]


# ----------------------------------------------------------------------
# Merged but disabled: pre-existing algorithms are bit-for-bit unchanged
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", LEGACY_ALGORITHMS)
def test_declared_ranges_change_nothing_for_legacy_policies(name):
    """A workload that merely *declares* min/pref/max must replay
    identically under every pre-existing algorithm — malleability is
    scheduler-initiated, and only Malleable-* schedulers initiate."""
    scheduler = make_scheduler(name)
    p_ded = 0.1 if scheduler.handles_dedicated else 0.0
    base = generated(seed=3, n_jobs=30, p_dedicated=p_ded)
    ranged = make_malleable(base, 0.7, seed=3)
    a = SimulationRunner(base, make_scheduler(name), trace=True)
    b = SimulationRunner(ranged, make_scheduler(name), trace=True)
    assert a.run() == b.run()
    assert list(a.trace) == list(b.trace)
