"""Tests for the FCFS baseline."""

from __future__ import annotations

from repro.core.fcfs import FCFS
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestFCFS:
    def test_starts_consecutive_heads(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=4), batch_job(2, submit=1.0, num=4), batch_job(3, submit=2.0, num=4)
        )
        started = harness.cycle_to_fixpoint(FCFS())
        assert started_ids(started) == [1, 2]  # third doesn't fit
        assert harness.batch_queue.head.job_id == 3

    def test_never_jumps_the_queue(self):
        # Head needs 8, only 5 free; the small job behind must wait.
        harness = PolicyHarness(total=10)
        blocker = batch_job(100, num=5, estimate=50.0)
        harness.run_job(blocker)
        harness.enqueue(batch_job(1, num=8), batch_job(2, submit=1.0, num=2))
        assert harness.cycle_to_fixpoint(FCFS()) == []

    def test_empty_queue(self):
        harness = PolicyHarness(total=10)
        assert harness.cycle_to_fixpoint(FCFS()) == []

    def test_elastic_variant_renames(self):
        assert FCFS(elastic=True).name == "FCFS-E"
        assert FCFS().name == "FCFS"
