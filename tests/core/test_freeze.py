"""Tests for the freeze/shadow computations (Algorithm 1 lines 13-15,
Algorithm 2 lines 8-26)."""

from __future__ import annotations

import pytest

from repro.cluster.machine import Machine
from repro.core.base import SchedulerContext
from repro.core.freeze import batch_head_freeze, dedicated_freeze
from repro.queues.active_list import ActiveList
from repro.queues.batch_queue import BatchQueue
from repro.queues.dedicated_queue import DedicatedQueue
from tests.conftest import batch_job, dedicated_job


def make_ctx(now=0.0, total=10, granularity=1, active_specs=(), dedicated=()):
    """Build a context with running jobs (num, start, estimate) and a
    dedicated queue."""
    machine = Machine(total=total, granularity=granularity)
    active = ActiveList()
    for index, (num, start, estimate) in enumerate(active_specs, start=1000):
        job = batch_job(index, submit=0.0, num=num, estimate=estimate)
        job.start_time = start
        machine.allocate(index, num)
        active.add(job)
    ded_queue = DedicatedQueue()
    for job in dedicated:
        ded_queue.push(job)
    return SchedulerContext(
        now=now,
        machine=machine,
        batch_queue=BatchQueue(),
        dedicated_queue=ded_queue,
        active=active,
    )


class TestBatchHeadFreeze:
    def test_single_blocker(self):
        # 10 procs; 8 running until t=100; head needs 5.
        ctx = make_ctx(now=0.0, active_specs=[(8, 0.0, 100.0)])
        head = batch_job(1, num=5)
        spec = batch_head_freeze(ctx, head)
        assert spec.fret == 100.0
        assert spec.frec == (2 + 8) - 5  # m + a_1.num - head.num

    def test_partial_terminations_suffice(self):
        # Jobs release in residual order; the head fits after the
        # second termination (smallest s with m + cumulative >= num).
        ctx = make_ctx(
            now=0.0,
            active_specs=[(3, 0.0, 50.0), (3, 0.0, 80.0), (4, 0.0, 200.0)],
        )
        head = batch_job(1, num=6)
        spec = batch_head_freeze(ctx, head)
        assert spec.fret == 80.0  # after the 2nd shortest residual
        assert spec.frec == (0 + 3 + 3) - 6

    def test_residuals_measured_from_now(self):
        ctx = make_ctx(now=40.0, active_specs=[(10, 0.0, 100.0)])
        head = batch_job(1, num=4)
        spec = batch_head_freeze(ctx, head)
        assert spec.fret == 100.0  # kill-by, not now + estimate

    def test_head_that_fits_is_rejected(self):
        ctx = make_ctx(active_specs=[(2, 0.0, 50.0)])
        with pytest.raises(ValueError, match="fits free capacity"):
            batch_head_freeze(ctx, batch_job(1, num=8))


class TestDedicatedFreeze:
    def test_sufficient_capacity_on_time(self):
        """Algorithm 2 lines 16-22: group fits at its requested start."""
        ctx = make_ctx(
            now=0.0,
            active_specs=[(6, 0.0, 50.0)],
            dedicated=[dedicated_job(1, num=3, requested_start=100.0)],
        )
        spec = dedicated_freeze(ctx)
        assert spec.sufficient
        assert spec.fret == 100.0
        # At t=100 the active job has terminated: frec = M - 0 - 3.
        assert spec.frec == 7

    def test_still_running_jobs_reduce_capacity(self):
        ctx = make_ctx(
            now=0.0,
            active_specs=[(6, 0.0, 200.0)],  # runs past the start
            dedicated=[dedicated_job(1, num=3, requested_start=100.0)],
        )
        spec = dedicated_freeze(ctx)
        assert spec.sufficient
        assert spec.fret == 100.0
        assert spec.frec == 10 - 6 - 3

    def test_cohead_group_reserved_together(self):
        """Lines 16-17: identical start times reserve as one block."""
        ctx = make_ctx(
            now=0.0,
            dedicated=[
                dedicated_job(1, num=4, requested_start=100.0),
                dedicated_job(2, num=5, requested_start=100.0),
                dedicated_job(3, num=5, requested_start=300.0),  # different start
            ],
        )
        spec = dedicated_freeze(ctx)
        assert spec.sufficient
        assert spec.frec == 10 - (4 + 5)

    def test_insufficient_capacity_reanchors(self):
        """Lines 24-26: the group exceeds capacity at its start; the
        freeze re-anchors at the earliest feasible termination."""
        ctx = make_ctx(
            now=0.0,
            active_specs=[(4, 0.0, 150.0), (4, 0.0, 400.0)],
            dedicated=[dedicated_job(1, num=8, requested_start=100.0)],
        )
        spec = dedicated_freeze(ctx)
        assert not spec.sufficient
        # At t=100 both active jobs still run: frec_d = 10-8 = 2 < 8.
        # Re-anchor: m=2, after first termination m+4 >= 8? 6 < 8; after
        # second, 10 >= 8 -> fret = 400, frec = 10 - 8.
        assert spec.fret == 400.0
        assert spec.frec == 2

    def test_group_larger_than_machine_falls_back(self):
        ctx = make_ctx(
            now=0.0,
            active_specs=[(4, 0.0, 100.0)],
            dedicated=[
                dedicated_job(1, num=7, requested_start=50.0),
                dedicated_job(2, num=7, requested_start=50.0),
            ],
        )
        spec = dedicated_freeze(ctx)
        assert not spec.sufficient
        assert spec.frec == 0
        assert spec.fret == 100.0  # after everything drains

    def test_idle_machine_has_full_capacity(self):
        ctx = make_ctx(
            now=0.0, dedicated=[dedicated_job(1, num=4, requested_start=60.0)]
        )
        spec = dedicated_freeze(ctx)
        assert spec.sufficient and spec.frec == 6 and spec.fret == 60.0

    def test_due_head_rejected(self):
        ctx = make_ctx(
            now=100.0,
            dedicated=[dedicated_job(1, num=4, requested_start=100.0)],
        )
        with pytest.raises(ValueError, match="promote"):
            dedicated_freeze(ctx)

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            dedicated_freeze(make_ctx())
