"""Tests for EASY backfill."""

from __future__ import annotations

from repro.core.easy import EasyBackfill
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestHeadStart:
    def test_head_starts_when_it_fits(self):
        harness = PolicyHarness(total=10).enqueue(batch_job(1, num=7))
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfill())) == [1]

    def test_drains_queue_in_order_when_capacity_allows(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=3), batch_job(2, submit=1.0, num=3), batch_job(3, submit=2.0, num=3)
        )
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfill())) == [1, 2, 3]


class TestBackfilling:
    def _blocked_harness(self):
        """8 procs busy until t=100; head needs 6 (shadow at t=100,
        extra = (2+8)-6 = 4)."""
        harness = PolicyHarness(total=10)
        blocker = batch_job(100, num=8, estimate=100.0)
        harness.run_job(blocker)
        harness.enqueue(batch_job(1, num=6, estimate=50.0))
        return harness

    def test_short_job_backfills(self):
        harness = self._blocked_harness()
        # Ends at t=90 <= shadow 100: may use the full free capacity.
        harness.enqueue(batch_job(2, submit=1.0, num=2, estimate=90.0))
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfill())) == [2]

    def test_long_job_needs_extra_capacity(self):
        harness = self._blocked_harness()
        # Runs past the shadow but fits extra (4): allowed.
        harness.enqueue(batch_job(2, submit=1.0, num=2, estimate=500.0))
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfill())) == [2]

    def test_long_wide_job_denied(self):
        harness = self._blocked_harness()
        # Hmm: num=2 <= free 2; runs past shadow; extra is 4 so it fits.
        # Make the blocker tighter: use a 5-proc backfill candidate.
        harness2 = PolicyHarness(total=10)
        harness2.run_job(batch_job(100, num=5, estimate=100.0))
        harness2.enqueue(batch_job(1, num=7, estimate=50.0))  # head blocked
        # extra = (5+5)-7 = 3. Candidate: 5 procs, runs past shadow.
        harness2.enqueue(batch_job(2, submit=1.0, num=5, estimate=500.0))
        assert harness2.cycle_to_fixpoint(EasyBackfill()) == []

    def test_backfill_must_not_delay_head(self):
        """A backfill ending after the shadow and exceeding extra would
        delay the head: denied even though it fits free capacity."""
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=6, estimate=100.0))
        harness.enqueue(batch_job(1, num=8, estimate=10.0))  # shadow t=100, extra 2
        harness.enqueue(batch_job(2, submit=1.0, num=4, estimate=200.0))
        assert harness.cycle_to_fixpoint(EasyBackfill()) == []

    def test_boundary_end_exactly_at_shadow_allowed(self):
        harness = self._blocked_harness()
        harness.enqueue(batch_job(2, submit=1.0, num=2, estimate=100.0))
        assert started_ids(harness.cycle_to_fixpoint(EasyBackfill())) == [2]

    def test_scans_queue_in_order(self):
        harness = self._blocked_harness()
        harness.enqueue(batch_job(2, submit=1.0, num=2, estimate=30.0))
        harness.enqueue(batch_job(3, submit=2.0, num=2, estimate=30.0))
        started = harness.cycle_to_fixpoint(EasyBackfill())
        assert started_ids(started) == [2]  # only 2 free procs, FCFS among candidates

    def test_multiple_backfills_respect_shrinking_extra(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=6, estimate=100.0))
        harness.enqueue(batch_job(1, num=8, estimate=10.0))  # extra = 2
        harness.enqueue(batch_job(2, submit=1.0, num=2, estimate=500.0))  # takes all extra
        harness.enqueue(batch_job(3, submit=2.0, num=2, estimate=500.0))  # must be denied
        started = harness.cycle_to_fixpoint(EasyBackfill())
        assert started_ids(started) == [2]

    def test_nothing_to_do_when_queue_empty(self):
        harness = PolicyHarness(total=10)
        assert harness.cycle_to_fixpoint(EasyBackfill()) == []
