"""Tests for Delayed-LOS (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.delayed_los import DelayedLOS
from tests.conftest import batch_job
from tests.core.policy_harness import PolicyHarness, started_ids


class TestFigure2Motivation:
    def test_paper_example_picks_rear_jobs(self):
        """Figure 2: sizes 7, 4, 6 on an idle 10-processor machine.
        LOS would start the 7 immediately (utilization 7); Delayed-LOS
        must pick {4, 6} (utilization 10) — Alternative-(b)."""
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        started = harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=5))
        assert sorted(started_ids(started)) == [2, 3]
        assert harness.machine.used == 10
        assert harness.batch_queue.head.job_id == 1


class TestSkipCount:
    def test_scount_increments_when_head_skipped(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        head = harness.batch_queue.head
        harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=5))
        assert head.scount == 1

    def test_scount_not_incremented_when_head_selected(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7), batch_job(2, submit=1.0, num=3)
        )
        head = harness.batch_queue.head
        started = harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=5))
        assert sorted(started_ids(started)) == [1, 2]
        assert head.scount == 0

    def test_scount_increments_once_per_event(self):
        """Only the first fix-point pass may bump scount."""
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
            batch_job(4, submit=3.0, num=6),
        )
        head = harness.batch_queue.head
        harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=5))
        assert head.scount == 1  # not 2, despite multiple passes

    def test_head_starts_once_cs_exhausted(self):
        """After C_s skips the head starts right away when it fits."""
        scheduler = DelayedLOS(max_skip_count=2)
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        head = harness.batch_queue.head
        head.scount = 2  # C_s reached
        started = harness.cycle_to_fixpoint(scheduler)
        # Head starts first (lines 3-5), then the fix-point loop still
        # offers the rest: 4-proc job gets the leftover 3? No: 4 > 3.
        assert started_ids(started)[0] == 1
        assert harness.machine.used == 7

    def test_cs_zero_behaves_like_los(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        started = harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=0))
        assert started_ids(started)[0] == 1  # aggressive head start

    def test_negative_cs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DelayedLOS(max_skip_count=-1)


class TestReservationBranch:
    def test_head_too_big_triggers_reservation_packing(self):
        """Head exceeds free capacity: jobs are packed around its
        freeze reservation (lines 12-20)."""
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=6, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=6, estimate=50.0),  # head: blocked, fret=100, frec=4
            batch_job(2, submit=1.0, num=2, estimate=30.0),  # ends before fret
            batch_job(3, submit=2.0, num=2, estimate=500.0),  # overruns, fits frec
        )
        started = harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=3))
        assert sorted(started_ids(started)) == [2, 3]

    def test_reservation_respects_freeze_capacity(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=5, estimate=100.0))
        harness.enqueue(
            batch_job(1, num=7, estimate=50.0),  # fret=100, frec=(5+5)-7=3
            batch_job(2, submit=1.0, num=5, estimate=500.0),  # overruns, 5 > 3
        )
        assert harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=3)) == []

    def test_scount_not_bumped_in_reservation_branch(self):
        """Algorithm 1 increments scount only in the Basic_DP branch."""
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=8, estimate=100.0))
        harness.enqueue(batch_job(1, num=6), batch_job(2, submit=1.0, num=2, estimate=10.0))
        head = harness.batch_queue.head
        harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=3))
        assert head.scount == 0


class TestEdgeCases:
    def test_no_action_when_machine_full(self):
        harness = PolicyHarness(total=10)
        harness.run_job(batch_job(100, num=10, estimate=50.0))
        harness.enqueue(batch_job(1, num=2))
        assert harness.cycle_to_fixpoint(DelayedLOS()) == []

    def test_no_action_when_queue_empty(self):
        assert PolicyHarness(total=10).cycle_to_fixpoint(DelayedLOS()) == []

    def test_lookahead_respected(self):
        harness = PolicyHarness(total=10).enqueue(
            batch_job(1, num=7),
            batch_job(2, submit=1.0, num=4),
            batch_job(3, submit=2.0, num=6),
        )
        # Lookahead 2 hides the 6-proc job: best within {7, 4} is 7.
        started = harness.cycle_to_fixpoint(DelayedLOS(max_skip_count=5, lookahead=2))
        assert started_ids(started) == [1]
