"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.job import Job, JobKind
from repro.workload.twostage import TwoStageSizeConfig


def batch_job(
    job_id: int,
    submit: float = 0.0,
    num: int = 32,
    estimate: float = 100.0,
    actual: float | None = None,
) -> Job:
    """Concise batch-job builder for unit tests."""
    return Job(job_id=job_id, submit=submit, num=num, estimate=estimate, actual=actual)


def dedicated_job(
    job_id: int,
    submit: float = 0.0,
    num: int = 32,
    estimate: float = 100.0,
    requested_start: float = 50.0,
) -> Job:
    """Concise dedicated-job builder for unit tests."""
    return Job(
        job_id=job_id,
        submit=submit,
        num=num,
        estimate=estimate,
        kind=JobKind.DEDICATED,
        requested_start=requested_start,
    )


def make_workload(
    jobs: list[Job],
    machine_size: int = 320,
    granularity: int = 32,
    eccs: list | None = None,
) -> Workload:
    """Wrap explicit jobs into a workload."""
    return Workload(
        jobs=jobs,
        eccs=eccs or [],
        machine_size=machine_size,
        granularity=granularity,
        description="test workload",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for statistical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_batch_workload() -> Workload:
    """~60-job batch workload on the BlueGene/P-like machine."""
    config = GeneratorConfig(n_jobs=60, size=TwoStageSizeConfig(p_small=0.5))
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(7))


@pytest.fixture
def small_hetero_workload() -> Workload:
    """~60-job heterogeneous workload (half dedicated)."""
    config = GeneratorConfig(
        n_jobs=60, size=TwoStageSizeConfig(p_small=0.5), p_dedicated=0.5
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(8))


@pytest.fixture
def small_elastic_workload() -> Workload:
    """~60-job elastic batch workload (P_E=0.3, P_R=0.2)."""
    config = GeneratorConfig(
        n_jobs=60, size=TwoStageSizeConfig(p_small=0.5), p_extend=0.3, p_reduce=0.2
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(9))
