"""Property fuzzing of runtime elasticity.

Generates random ECC command streams (arbitrary kinds, amounts, issue
times, including commands targeting already-finished jobs and repeated
commands on one job) against small workloads, and checks that the
elastic simulations always terminate with intact invariants — the
paper's -E machinery must be robust to any command sequence, not just
the generator's nicely-behaved ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.registry import make_scheduler
from repro.experiments.runner import SimulationRunner
from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig, Workload
from repro.workload.twostage import TwoStageSizeConfig


def base_jobs(seed: int, n_jobs: int = 15):
    config = GeneratorConfig(n_jobs=n_jobs, size=TwoStageSizeConfig(p_small=0.5))
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))


ecc_strategy = st.tuples(
    st.integers(1, 15),  # job id
    st.floats(0.0, 50_000.0, allow_nan=False),  # issue offset after submit
    st.sampled_from([ECCKind.EXTEND_TIME, ECCKind.REDUCE_TIME]),
    st.floats(1.0, 10_000.0, allow_nan=False),  # amount
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 500),
    raw_eccs=st.lists(ecc_strategy, max_size=30),
    algorithm=st.sampled_from(["EASY-E", "LOS-E", "Delayed-LOS-E"]),
    cap=st.one_of(st.none(), st.integers(0, 3)),
)
def test_arbitrary_ecc_streams_never_break_the_simulation(seed, raw_eccs, algorithm, cap):
    base = base_jobs(seed)
    submits = {job.job_id: job.submit for job in base.jobs}
    # Validity constraint (enforced by the runner): an ECC targets a
    # previously submitted job, so it is issued at submit + offset.
    eccs = [
        ECC(job_id=jid, issue_time=submits[jid] + offset, kind=kind, amount=amount)
        for jid, offset, kind, amount in raw_eccs
    ]
    workload = Workload(
        jobs=[j.copy_for_run() for j in base.jobs],
        eccs=eccs,
        machine_size=base.machine_size,
        granularity=base.granularity,
    )
    runner = SimulationRunner(
        workload, make_scheduler(algorithm), trace=True, max_eccs_per_job=cap
    )
    metrics = runner.run()

    # Every job completes exactly once; no capacity violation anywhere.
    assert metrics.n_jobs == len(workload)
    level = 0
    for event in runner.trace.of_kind("start", "finish"):
        level += event.data["num"] if event.kind == "start" else -event.data["num"]
        assert 0 <= level <= workload.machine_size
    # Every command was accounted for by the processor.
    assert sum(metrics.ecc_stats.values()) == len(eccs)
    # The cap was honoured.
    if cap is not None:
        assert all(r.eccs_applied <= cap for r in metrics.records)
    # Runs never produce negative-length executions.
    assert all(r.finish >= r.start for r in metrics.records)


@settings(max_examples=15, deadline=None)
@given(
    amount=st.floats(1.0, 1e6, allow_nan=False),
    issue_fraction=st.floats(0.0, 0.99),
)
def test_rt_commands_never_produce_negative_residuals(amount, issue_fraction):
    """A reduction of any magnitude at any point of a running job's
    life clamps at 'terminate now', never earlier."""
    from tests.conftest import batch_job, make_workload

    job = batch_job(1, submit=0.0, num=320, estimate=1000.0)
    issue = 1.0 + issue_fraction * 998.0
    ecc = ECC(job_id=1, issue_time=issue, kind=ECCKind.REDUCE_TIME, amount=amount)
    workload = make_workload([job], eccs=[ecc])
    metrics = SimulationRunner(workload, make_scheduler("EASY-E")).run()
    record = metrics.records[0]
    assert record.start == 0.0
    assert issue <= record.finish <= 1000.0 or record.finish == pytest.approx(issue)
