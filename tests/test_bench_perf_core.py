"""Smoke test for the tracked perf benchmark (marked ``perf``).

Deselected from the default run (``addopts = -m 'not perf'``); run it
explicitly with ``pytest -m perf``.  Uses the benchmark's quick mode
and a temp output path so ``BENCH_core.json`` at the repo root is
never clobbered by the test suite.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.bench_perf_core import (
    BATCH_ALGORITHMS,
    ELASTIC_ALGORITHM,
    main,
    run_bench,
    scenario_scales,
)

pytestmark = pytest.mark.perf


def test_quick_bench_document(tmp_path):
    output = tmp_path / "bench.json"
    document = run_bench(quick=True, jobs=2, output=output)

    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk == document
    assert document["schema"] == 3
    assert document["quick"] is True
    assert document["workers"] == 2

    scales = scenario_scales(quick=True)
    expected = {(a, n) for n in scales for a in (*BATCH_ALGORITHMS, ELASTIC_ALGORITHM)}
    seen = {(e["algorithm"], e["n_jobs"]) for e in document["scenarios"]}
    assert seen == expected
    for entry in document["scenarios"]:
        assert entry["wall_time_s"] > 0
        assert entry["events_per_sec"] > 0
        assert entry["events"] >= entry["n_jobs"]

    pipe = document["pipeline"]
    assert pipe["runs"] == 2 * len(BATCH_ALGORITHMS)
    assert pipe["parallel_equals_serial"] is True
    assert pipe["serial_wall_time_s"] > 0
    assert pipe["parallel_wall_time_s"] > 0

    obs = document["observability"]
    assert obs["untraced_wall_time_s"] > 0
    assert obs["traced_wall_time_s"] > 0
    assert obs["traced_over_untraced"] > 0
    assert obs["trace_bytes"] > 0


def test_cli_quick_exits_clean(tmp_path):
    output = tmp_path / "cli.json"
    assert main(
        ["--quick", "--jobs", "1", "--output", str(output), "--no-history"]
    ) == 0
    assert output.exists()
