"""Tests for CSV/JSON export."""

from __future__ import annotations

import csv
import io
import json

from repro.metrics.export import (
    JOB_RECORD_FIELDS,
    records_to_csv,
    run_to_json,
    runs_to_csv,
    sweep_to_csv,
)
from repro.metrics.records import JobRecord, RunMetrics
from repro.workload.job import JobKind


def record(job_id=1, kind=JobKind.BATCH, requested_start=None):
    return JobRecord(
        job_id=job_id,
        kind=kind,
        num=64,
        submit=0.0,
        start=10.0,
        finish=110.0,
        requested_start=requested_start,
        eccs_applied=1,
    )


def run(algorithm="EASY"):
    return RunMetrics(
        algorithm=algorithm,
        machine_size=320,
        records=[record(1), record(2, JobKind.DEDICATED, requested_start=5.0)],
        utilization=0.8,
        makespan=110.0,
        offered_load=0.9,
        ecc_stats={"applied-queued": 1},
    )


class TestRecordsCSV:
    def test_header_and_rows(self):
        buffer = io.StringIO()
        records_to_csv([record(1), record(2)], buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == 2
        assert set(rows[0]) == set(JOB_RECORD_FIELDS)
        assert rows[0]["job_id"] == "1"
        assert rows[0]["wait"] == "10.0"
        assert rows[0]["requested_start"] == ""  # batch: empty cell

    def test_dedicated_fields_present(self):
        buffer = io.StringIO()
        records_to_csv([record(2, JobKind.DEDICATED, requested_start=5.0)], buffer)
        buffer.seek(0)
        row = next(csv.DictReader(buffer))
        assert row["kind"] == "dedicated"
        assert row["requested_start"] == "5.0"
        assert row["dedicated_delay"] == "5.0"

    def test_file_target(self, tmp_path):
        path = tmp_path / "records.csv"
        records_to_csv([record()], path)
        assert path.read_text().startswith("job_id,")


class TestRunsCSV:
    def test_one_row_per_run(self):
        buffer = io.StringIO()
        runs_to_csv([run("EASY"), run("LOS")], buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert [r["algorithm"] for r in rows] == ["EASY", "LOS"]
        assert rows[0]["n_jobs"] == "2"
        assert float(rows[0]["utilization"]) == 0.8


class TestSweepCSV:
    def test_long_form(self):
        from repro.experiments.sweep import SweepResult

        sweep = SweepResult(sweep_label="Load", sweep_values=[0.5, 0.9])
        sweep.series = {"EASY": [run(), run()], "LOS": [run("LOS"), run("LOS")]}
        buffer = io.StringIO()
        sweep_to_csv(sweep, buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == 4  # 2 algorithms x 2 points
        assert {r["Load"] for r in rows} == {"0.5", "0.9"}


class TestRunJSON:
    def test_payload_complete(self):
        buffer = io.StringIO()
        run_to_json(run(), buffer)
        payload = json.loads(buffer.getvalue())
        assert payload["algorithm"] == "EASY"
        assert payload["ecc_stats"] == {"applied-queued": 1}
        assert len(payload["records"]) == 2
        assert payload["records"][0]["wait"] == 10.0
        assert payload["records"][0]["requested_start"] is None

    def test_file_target(self, tmp_path):
        path = tmp_path / "run.json"
        run_to_json(run(), path)
        assert json.loads(path.read_text())["n_jobs"] == 2
