"""Tests for the statistics helpers."""

from __future__ import annotations

import pytest

from repro.metrics.stats import (
    bounded_slowdown,
    improvement_percent,
    max_improvement,
    mean,
    paper_slowdown,
    per_job_slowdowns,
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0

    def test_accepts_generators(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0


class TestSlowdown:
    def test_paper_definition_is_ratio_of_means(self):
        # (mean_wait + mean_run) / mean_run
        assert paper_slowdown(100.0, 50.0) == 3.0

    def test_no_wait_gives_one(self):
        assert paper_slowdown(0.0, 123.0) == 1.0

    def test_degenerate_runtime(self):
        assert paper_slowdown(100.0, 0.0) == 1.0

    def test_per_job_slowdowns(self):
        values = per_job_slowdowns([(10.0, 10.0), (0.0, 5.0)])
        assert values == [2.0, 1.0]

    def test_per_job_zero_runtime_floored(self):
        assert per_job_slowdowns([(10.0, 0.0)]) == [10.0]

    def test_ratio_of_means_differs_from_mean_of_ratios(self):
        """The distinction §V quietly makes; both are exposed."""
        pairs = [(100.0, 1.0), (0.0, 99.0)]
        ratio_of_means = paper_slowdown(50.0, 50.0)  # = 2.0
        mean_of_ratios = mean(per_job_slowdowns(pairs))  # = (101 + 1)/2
        assert ratio_of_means != mean_of_ratios

    def test_bounded_slowdown(self):
        # Short job: denominator floored at the threshold.
        assert bounded_slowdown([(90.0, 10.0)], threshold=10.0) == [10.0]
        assert bounded_slowdown([(5.0, 1.0)], threshold=10.0) == [1.0]  # max(1, 6/10)


class TestImprovements:
    def test_higher_is_better(self):
        assert improvement_percent(1.1, 1.0, higher_is_better=True) == pytest.approx(10.0)
        assert improvement_percent(0.9, 1.0, higher_is_better=True) == pytest.approx(-10.0)

    def test_lower_is_better(self):
        assert improvement_percent(80.0, 100.0, higher_is_better=False) == pytest.approx(20.0)
        assert improvement_percent(120.0, 100.0, higher_is_better=False) == pytest.approx(-20.0)

    def test_zero_baseline(self):
        assert improvement_percent(5.0, 0.0, True) == 0.0

    def test_max_improvement_over_sweep(self):
        ours = [90.0, 70.0, 95.0]
        base = [100.0, 100.0, 100.0]
        assert max_improvement(ours, base, higher_is_better=False) == pytest.approx(30.0)

    def test_max_improvement_mismatched_lengths(self):
        with pytest.raises(ValueError, match="different lengths"):
            max_improvement([1.0], [1.0, 2.0], True)

    def test_max_improvement_empty(self):
        assert max_improvement([], [], True) == 0.0
