"""Tests for plain-text report formatting."""

from __future__ import annotations

import pytest

from repro.metrics.report import format_comparison_table, format_metrics_table, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["EASY", 1.5], ["LOS", 10.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "EASY" in lines[2] and "1.5" in lines[2]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text  # 4 significant digits


class TestMetricsTable:
    def test_figure_style_blocks(self):
        series = {
            "EASY": [{"utilization": 0.8, "mean_wait": 100.0}],
            "LOS": [{"utilization": 0.82, "mean_wait": 90.0}],
        }
        text = format_metrics_table("Load", [0.9], series)
        assert "metric: utilization" in text
        assert "metric: mean_wait" in text
        assert "EASY" in text and "LOS" in text
        assert "0.9" in text


class TestComparisonTable:
    def test_tables_iv_vii_layout(self):
        improvements = {
            "Utilization": {"LOS": 4.1, "EASY": 1.52},
            "Job waiting time": {"LOS": 31.88, "EASY": 21.65},
        }
        text = format_comparison_table("Table IV", improvements)
        assert text.startswith("Table IV")
        assert "LOS (%)" in text and "EASY (%)" in text
        assert "Utilization" in text and "31.88" in text

    def test_missing_baseline_rendered_as_nan(self):
        improvements = {"Utilization": {"LOS": 4.1}, "Slowdown": {"EASY": 2.0}}
        text = format_comparison_table("T", improvements)
        assert "nan" in text
