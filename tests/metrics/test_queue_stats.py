"""Tests for queue-dynamics tracking."""

from __future__ import annotations

import pytest

from repro.metrics.queue_stats import QueueTracker


class TestQueueTracker:
    def test_single_job_rectangle(self):
        tracker = QueueTracker(start_time=0.0)
        tracker.on_enqueue(0.0, work=1000.0)
        tracker.on_dequeue(10.0, work=1000.0)
        summary = tracker.summary(until=20.0)
        # One job queued for 10 of 20 seconds.
        assert summary.mean_queue_length == pytest.approx(0.5)
        assert summary.max_queue_length == 1
        # Backlog 1000 proc·s for 10s of 20.
        assert summary.mean_backlog == pytest.approx(500.0)
        assert summary.max_backlog == 1000.0

    def test_overlapping_jobs(self):
        tracker = QueueTracker(start_time=0.0)
        tracker.on_enqueue(0.0, 100.0)
        tracker.on_enqueue(5.0, 200.0)
        tracker.on_dequeue(10.0, 100.0)
        tracker.on_dequeue(20.0, 200.0)
        summary = tracker.summary(until=20.0)
        # Length: 1 over [0,5), 2 over [5,10), 1 over [10,20).
        assert summary.mean_queue_length == pytest.approx((5 + 10 + 10) / 20)
        assert summary.max_queue_length == 2

    def test_work_change_adjusts_backlog(self):
        tracker = QueueTracker(start_time=0.0)
        tracker.on_enqueue(0.0, 100.0)
        tracker.on_work_changed(5.0, +100.0)  # ET on the queued job
        tracker.on_dequeue(10.0, 200.0)
        summary = tracker.summary(until=10.0)
        # Backlog 100 over [0,5), 200 over [5,10).
        assert summary.mean_backlog == pytest.approx((500 + 1000) / 10)
        assert summary.max_backlog == 200.0

    def test_negative_work_change_clamped(self):
        tracker = QueueTracker(start_time=0.0)
        tracker.on_enqueue(0.0, 50.0)
        tracker.on_work_changed(1.0, -500.0)
        summary = tracker.summary(until=2.0)
        assert summary.max_backlog == 50.0

    def test_empty(self):
        summary = QueueTracker(start_time=0.0).summary(until=10.0)
        assert summary.mean_queue_length == 0.0
        assert summary.max_queue_length == 0
        assert summary.mean_backlog == 0.0

    def test_str_is_informative(self):
        tracker = QueueTracker()
        tracker.on_enqueue(0.0, 10.0)
        text = str(tracker.summary(until=1.0))
        assert "queue" in text and "backlog" in text


class TestRunnerIntegration:
    def test_summary_attached_to_run_metrics(self, small_batch_workload):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        metrics = simulate(small_batch_workload, make_scheduler("EASY"))
        assert metrics.queue is not None
        assert metrics.queue.mean_queue_length >= 0.0
        assert metrics.queue.max_queue_length >= 1

    def test_zero_wait_run_has_zero_mean_queue(self):
        """A lone job that starts instantly spends no measurable time
        queued (enqueue and dequeue at the same instant)."""
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate
        from tests.conftest import batch_job, make_workload

        workload = make_workload([batch_job(1, submit=0.0, num=32, estimate=100.0)])
        metrics = simulate(workload, make_scheduler("EASY"))
        assert metrics.queue is not None
        assert metrics.queue.mean_queue_length == 0.0

    def test_contention_shows_in_queue_stats(self):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate
        from tests.conftest import batch_job, make_workload

        jobs = [batch_job(i, submit=0.0, num=320, estimate=100.0) for i in range(1, 4)]
        metrics = simulate(make_workload(jobs), make_scheduler("FCFS"))
        assert metrics.queue is not None
        assert metrics.queue.max_queue_length == 3  # all queued at t=0
        # Jobs run back to back over [0,300]: queue holds 3,2,1,0 jobs
        # for ~100s each (minus the instantaneous first start).
        assert metrics.queue.mean_queue_length == pytest.approx(1.0, abs=0.05)


class TestSamplesDropped:
    def test_zero_until_cap_exceeded(self):
        from repro.metrics.queue_stats import QueueTracker

        tracker = QueueTracker()
        for i in range(100):
            tracker.on_enqueue(float(i), 10.0)
        assert tracker.samples_dropped == 0

    def test_counts_thinned_observations_past_cap(self):
        from repro.cluster.accounting import MAX_SAMPLES
        from repro.metrics.queue_stats import QueueTracker

        tracker = QueueTracker()
        total = MAX_SAMPLES * 4
        for i in range(total):
            tracker.on_enqueue(float(i), 1.0)
        assert tracker.samples_dropped > 0
        # Exact integrals are unaffected by the bounded view.
        summary = tracker.summary(until=float(total))
        assert summary.max_queue_length == total

    def test_runner_folds_drop_counters_into_telemetry(self):
        """A long run surfaces absolute drop counts in RunMetrics."""
        from repro.cluster.accounting import MAX_SAMPLES
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate
        from tests.conftest import batch_job, make_workload

        n = MAX_SAMPLES + 200  # enough starts to overflow the buffers
        jobs = [
            batch_job(i, submit=float(i), num=320, estimate=1.0)
            for i in range(1, n + 1)
        ]
        metrics = simulate(make_workload(jobs), make_scheduler("FCFS"))
        counters = metrics.telemetry.counters
        assert counters.get("utilization_samples_dropped", 0) > 0
