"""Tests for job records and run metrics."""

from __future__ import annotations

import pytest

from repro.metrics.records import JobRecord, RunMetrics
from repro.workload.job import JobKind
from tests.conftest import batch_job, dedicated_job


def record(job_id=1, submit=0.0, start=10.0, finish=110.0, num=32, **kwargs):
    return JobRecord(
        job_id=job_id, kind=kwargs.pop("kind", JobKind.BATCH), num=num,
        submit=submit, start=start, finish=finish, **kwargs,
    )


class TestJobRecord:
    def test_derived_quantities(self):
        r = record(submit=5.0, start=20.0, finish=120.0)
        assert r.wait == 15.0
        assert r.runtime == 100.0
        assert r.dedicated_delay is None

    def test_dedicated_delay(self):
        r = record(kind=JobKind.DEDICATED, requested_start=15.0, start=20.0)
        assert r.dedicated_delay == 5.0
        on_time = record(kind=JobKind.DEDICATED, requested_start=20.0, start=20.0)
        assert on_time.dedicated_delay == 0.0

    def test_from_job(self):
        job = batch_job(3, submit=1.0, num=64, estimate=50.0)
        job.start_time = 11.0
        job.finish_time = 61.0
        job.ecc_count = 2
        r = JobRecord.from_job(job)
        assert r.job_id == 3 and r.num == 64
        assert r.wait == 10.0 and r.runtime == 50.0
        assert r.eccs_applied == 2

    def test_from_incomplete_job_rejected(self):
        with pytest.raises(ValueError, match="not completed"):
            JobRecord.from_job(batch_job(1))


class TestRunMetrics:
    def _metrics(self, records):
        return RunMetrics(
            algorithm="TEST",
            machine_size=320,
            records=records,
            utilization=0.8,
            makespan=1000.0,
        )

    def test_aggregates(self):
        m = self._metrics(
            [record(1, submit=0.0, start=10.0, finish=110.0),
             record(2, submit=0.0, start=30.0, finish=80.0)]
        )
        assert m.n_jobs == 2
        assert m.mean_wait == 20.0
        assert m.mean_runtime == 75.0
        assert m.slowdown == pytest.approx((20.0 + 75.0) / 75.0)
        assert m.mean_per_job_slowdown == pytest.approx(
            ((10 + 100) / 100 + (30 + 50) / 50) / 2
        )

    def test_empty_run(self):
        m = self._metrics([])
        assert m.mean_wait == 0.0
        assert m.slowdown == 1.0
        assert m.dedicated_on_time_rate == 1.0
        assert m.mean_dedicated_delay == 0.0

    def test_dedicated_extras(self):
        m = self._metrics(
            [
                record(1, kind=JobKind.DEDICATED, requested_start=10.0, start=10.0),
                record(2, kind=JobKind.DEDICATED, requested_start=10.0, start=40.0),
                record(3),  # batch, excluded from dedicated stats
            ]
        )
        assert len(m.dedicated_records()) == 2
        assert m.dedicated_on_time_rate == 0.5
        assert m.mean_dedicated_delay == 15.0

    def test_as_row_keys(self):
        row = self._metrics([record()]).as_row()
        assert {"utilization", "mean_wait", "slowdown", "makespan", "n_jobs"} <= set(row)
