"""Tests for the text timeline renderer."""

from __future__ import annotations

from repro.metrics.records import JobRecord
from repro.metrics.timeline import occupancy_sparkline, render_timeline
from repro.workload.job import JobKind


def record(job_id, submit, start, finish, num=160, requested_start=None):
    return JobRecord(
        job_id=job_id,
        kind=JobKind.DEDICATED if requested_start is not None else JobKind.BATCH,
        num=num,
        submit=submit,
        start=start,
        finish=finish,
        requested_start=requested_start,
    )


class TestRenderTimeline:
    def test_bars_and_waiting_dots(self):
        records = [record(1, submit=0.0, start=50.0, finish=100.0)]
        text = render_timeline(records, 320, width=20)
        assert "#1" in text
        assert "█" in text
        assert "·" in text  # queueing delay rendered
        assert "busy" in text

    def test_row_order_by_start(self):
        records = [
            record(2, submit=0.0, start=60.0, finish=100.0),
            record(1, submit=0.0, start=0.0, finish=50.0),
        ]
        text = render_timeline(records, 320, width=20)
        assert text.index("#1") < text.index("#2")

    def test_dedicated_tag(self):
        records = [record(1, submit=0.0, start=10.0, finish=20.0, requested_start=10.0)]
        text = render_timeline(records, 320, width=20)
        assert "pD|" in text

    def test_max_rows_summary(self):
        records = [
            record(i, submit=0.0, start=float(i), finish=float(i) + 10.0)
            for i in range(1, 11)
        ]
        text = render_timeline(records, 320, width=20, max_rows=3)
        assert "7 more jobs not shown" in text

    def test_empty_and_degenerate(self):
        assert render_timeline([], 320) == "(no completed jobs)"
        same_instant = [record(1, submit=5.0, start=5.0, finish=5.0)]
        assert "degenerate" in render_timeline(same_instant, 320, t0=5.0, t1=5.0)


class TestOccupancySparkline:
    def test_full_machine_is_full_block(self):
        records = [record(1, submit=0.0, start=0.0, finish=100.0, num=320)]
        spark = occupancy_sparkline(records, 320, width=10)
        assert spark == "█" * 10

    def test_half_machine_is_mid_block(self):
        records = [record(1, submit=0.0, start=0.0, finish=100.0, num=160)]
        spark = occupancy_sparkline(records, 320, width=10)
        assert set(spark) == {"▄"}

    def test_idle_tail_is_blank(self):
        records = [
            record(1, submit=0.0, start=0.0, finish=50.0, num=320),
            record(2, submit=0.0, start=50.0, finish=100.0, num=32),
        ]
        spark = occupancy_sparkline(records, 320, width=10)
        assert spark[0] == "█"
        assert spark[-1] != "█"

    def test_empty(self):
        assert occupancy_sparkline([], 320, width=5) == "     "
