"""Online (O(1)-memory) metrics vs. the exact per-record oracle.

The streaming path's statistics are only trustworthy if they match
the materialized ones.  The headline test here runs *every* registry
algorithm — with fault injection live, so requeues, evictions and
retry exhaustion all flow through the aggregator — and requires the
online summary to agree with the per-record recomputation to 1e-9
relative on every oracle metric.  The single knowingly-approximate
figure, the P² p95 wait, gets its own tolerance-pinned tests.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.registry import ALGORITHMS, make_scheduler
from repro.experiments.runner import simulate
from repro.faults.model import FaultConfig
from repro.metrics.online import (
    P2_REL_TOLERANCE,
    OnlineAggregator,
    P2Quantile,
    assert_online_consistent,
    cross_validate_online,
    exact_quantile,
)
from repro.metrics.records import JobRecord
from repro.workload.generator import CWFWorkloadGenerator, GeneratorConfig
from repro.workload.job import JobKind
from repro.workload.twostage import TwoStageSizeConfig


def _workload(p_dedicated: float):
    config = GeneratorConfig(
        n_jobs=120,
        size=TwoStageSizeConfig(p_small=0.5),
        p_dedicated=p_dedicated,
        p_extend=0.3,
        p_reduce=0.1,
    )
    return CWFWorkloadGenerator(config).generate(np.random.default_rng(11))


@pytest.fixture(scope="module")
def workloads():
    return {"hetero": _workload(0.2), "batch": _workload(0.0)}


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_online_matches_exact_under_faults(algorithm, workloads):
    """Every algorithm, faults on: online aggregates == exact to 1e-9."""
    scheduler = make_scheduler(algorithm)
    workload = workloads["hetero" if scheduler.handles_dedicated else "batch"]
    metrics = simulate(
        workload,
        scheduler,
        faults=FaultConfig(mtbf=40000.0, mttr=2000.0, seed=5),
        online=True,
    )
    assert metrics.online is not None
    assert metrics.online.n_jobs == metrics.n_jobs
    findings = cross_validate_online(metrics.online, metrics)
    assert not findings, f"{algorithm}: {findings}"
    assert_online_consistent(metrics.online, metrics)  # raising form


def test_cross_validate_flags_corruption(workloads):
    metrics = simulate(workloads["batch"], make_scheduler("EASY"), online=True)
    import dataclasses

    corrupted = dataclasses.replace(
        metrics.online, mean_wait=metrics.online.mean_wait * 1.01
    )
    findings = cross_validate_online(corrupted, metrics)
    assert any("mean_wait" in f for f in findings)
    with pytest.raises(ValueError, match="mean_wait"):
        assert_online_consistent(corrupted, metrics)


def test_by_class_breakdown_matches_exact(workloads):
    metrics = simulate(
        workloads["hetero"], make_scheduler("Hybrid-LOS-E"), online=True
    )
    summary = metrics.online
    for kind in JobKind:
        records = [r for r in metrics.records if r.kind is kind]
        cls = summary.by_class.get(kind.name.lower())
        if not records:
            assert cls is None
            continue
        assert cls.n_jobs == len(records)
        assert cls.mean_wait == pytest.approx(
            sum(r.wait for r in records) / len(records), rel=1e-9
        )


class TestP2Quantile:
    def test_tracks_exact_p95_within_documented_tolerance(self):
        rng = random.Random(3)
        values = [rng.expovariate(0.01) for _ in range(20000)]
        estimator = P2Quantile(0.95)
        for value in values:
            estimator.observe(value)
        exact = exact_quantile(values, 0.95)
        assert estimator.value() == pytest.approx(exact, rel=P2_REL_TOLERANCE)

    def test_exact_below_six_observations(self):
        values = [5.0, 1.0, 9.0, 3.0]
        estimator = P2Quantile(0.95)
        for value in values:
            estimator.observe(value)
        assert estimator.value() == exact_quantile(values, 0.95)

    def test_empty_is_zero(self):
        assert P2Quantile(0.95).value() == 0.0


class TestAggregatorDirect:
    @staticmethod
    def _record(i, wait, runtime):
        return JobRecord(
            job_id=i, kind=JobKind.BATCH, num=1,
            submit=0.0, start=wait, finish=wait + runtime,
        )

    def test_empty_summary_is_all_zero(self):
        summary = OnlineAggregator().summary()
        assert summary.n_jobs == 0
        assert summary.mean_wait == 0.0
        assert summary.by_class == {}

    def test_means_are_bitwise_equal_to_left_to_right_sums(self):
        """Same float additions in the same order as mean([...])."""
        rng = random.Random(9)
        records = [
            self._record(i, rng.uniform(0, 1e4), rng.uniform(1, 1e4))
            for i in range(1000)
        ]
        aggregator = OnlineAggregator()
        aggregator.observe_all(records)
        from repro.metrics.stats import mean

        assert aggregator.mean_wait == mean([r.wait for r in records])
        assert aggregator.mean_runtime == mean([r.runtime for r in records])

    def test_summary_stamps_utilization_and_makespan(self):
        aggregator = OnlineAggregator()
        aggregator.observe(self._record(1, 2.0, 10.0))
        summary = aggregator.summary(utilization=0.5, makespan=12.0)
        assert summary.utilization == 0.5
        assert summary.makespan == 12.0
        assert summary.as_row()["n_jobs"] == 1.0
