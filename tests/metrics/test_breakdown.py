"""Tests for per-class metric breakdowns."""

from __future__ import annotations

import pytest

from repro.metrics.breakdown import (
    ClassStats,
    breakdown,
    by_kind,
    by_outcome,
    by_size_class,
    format_breakdown,
)
from repro.metrics.records import JobRecord
from repro.workload.job import JobKind


def record(job_id, num=32, wait=10.0, runtime=100.0, kind=JobKind.BATCH, killed=False):
    return JobRecord(
        job_id=job_id,
        kind=kind,
        num=num,
        submit=0.0,
        start=wait,
        finish=wait + runtime,
        requested_start=0.0 if kind is JobKind.DEDICATED else None,
        killed=killed,
    )


class TestClassStats:
    def test_aggregates(self):
        stats = ClassStats.from_records(
            "x", [record(1, num=32, wait=10.0, runtime=100.0), record(2, num=64, wait=30.0, runtime=50.0)]
        )
        assert stats.n_jobs == 2
        assert stats.mean_wait == 20.0
        assert stats.mean_runtime == 75.0
        assert stats.slowdown == pytest.approx((20 + 75) / 75)
        assert stats.max_wait == 30.0
        assert stats.total_work == 32 * 100 + 64 * 50

    def test_empty_class(self):
        stats = ClassStats.from_records("empty", [])
        assert stats.n_jobs == 0
        assert stats.mean_wait == 0.0
        assert stats.slowdown == 1.0


class TestClassifiers:
    def test_by_size_class_uses_paper_boundary(self):
        groups = by_size_class([record(1, num=96), record(2, num=128), record(3, num=32)])
        assert groups["small"].n_jobs == 2
        assert groups["large"].n_jobs == 1

    def test_by_size_class_custom_threshold(self):
        groups = by_size_class([record(1, num=96)], small_threshold=64)
        assert "large" in groups and "small" not in groups

    def test_by_kind(self):
        groups = by_kind([record(1), record(2, kind=JobKind.DEDICATED)])
        assert groups["batch"].n_jobs == 1
        assert groups["dedicated"].n_jobs == 1

    def test_by_outcome(self):
        groups = by_outcome([record(1, killed=True), record(2), record(3)])
        assert groups["killed"].n_jobs == 1
        assert groups["completed"].n_jobs == 2

    def test_custom_classifier(self):
        groups = breakdown([record(i, num=32 * i) for i in (1, 2, 3)], lambda r: str(r.num))
        assert set(groups) == {"32", "64", "96"}


class TestFormatting:
    def test_table_contents(self):
        groups = by_size_class([record(1, num=32), record(2, num=256)])
        text = format_breakdown(groups, title="by size")
        assert text.startswith("by size")
        assert "small" in text and "large" in text
        assert "mean wait" in text


class TestEndToEnd:
    def test_breakdown_of_real_run(self, small_batch_workload):
        from repro.core.registry import make_scheduler
        from repro.experiments.runner import simulate

        metrics = simulate(small_batch_workload, make_scheduler("Delayed-LOS"))
        groups = by_size_class(metrics.records)
        assert sum(g.n_jobs for g in groups.values()) == metrics.n_jobs
        # Work is partitioned, not duplicated.
        total = sum(g.total_work for g in groups.values())
        assert total == pytest.approx(sum(r.num * r.runtime for r in metrics.records))
