"""Figure 9 — heterogeneous metrics vs Load (P_D = 0.5, P_S = 0.2).

Half the jobs are dedicated with rigid start times; batch jobs must be
packed around their reservations.  The paper: Hybrid-LOS outperforms
LOS-D and EASY-D (feeding Table V).

Expected shape: Hybrid-LOS (and LOS-D, which shares the DP machinery)
clearly beat EASY-D on waiting time and utilization; Hybrid-LOS at
least matches EASY-D everywhere it matters.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import PAPER_LOADS, figure9


def run_figure9():
    return figure9(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=9)


def test_figure9(benchmark):
    sweep = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    save_report(
        "fig9_hetero_load",
        render_sweep(sweep, "Figure 9: metrics vs Load (heterogeneous, P_D=0.5, P_S=0.2)"),
    )

    hybrid_wait = mean_metric(sweep, "Hybrid-LOS", "mean_wait")
    assert hybrid_wait <= mean_metric(sweep, "EASY-D", "mean_wait")
    assert mean_metric(sweep, "Hybrid-LOS", "utilization") >= mean_metric(
        sweep, "EASY-D", "utilization"
    )
    # The DP family stays within a whisker of each other.
    assert hybrid_wait <= 1.10 * mean_metric(sweep, "LOS-D", "mean_wait")

    # The workload really is heterogeneous at every point.
    for run in sweep.series["Hybrid-LOS"]:
        assert run.dedicated_records(), "expected dedicated jobs in the mix"
