"""Study — how often is LOS actually worse than EASY?

The paper's §III claim ("Anomaly in LOS"): varying job *sizes* —
rather than arrival times — makes LOS perform *worse* than EASY
(Figure 7, P_S = 0.2).  Our faithful implementation rarely shows a
clear inversion (EXPERIMENTS.md note 1): DP packing with a shadow
reservation is hard to drive below greedy backfilling, because every
EASY decision is feasible for the DP (see
``tests/test_dp_dominance.py`` for the per-instant proof).

Instantaneous dominance does not preclude long-run inversions — a
greedily maximal packing now can admit worse future states — so this
study measures how often they *actually* occur: across seeds × P_S
mixes at high load, count runs where LOS's mean wait exceeds EASY's by
more than 2 %.

Reported: inversion frequency and mean relative gap per P_S.  The
bench asserts bookkeeping only (all runs complete; Delayed-LOS beats
LOS's family mean) — the inversion frequency itself is the finding,
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.sweep import run_algorithms
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

SEEDS = tuple(range(300, 310))  # 10 independent draws per mix
P_SMALL_VALUES = (0.2, 0.5)


def run_study():
    rows = []
    outcomes: Dict[float, Dict[str, float]] = {}
    delayed_vs_los: List[float] = []
    for p_small in P_SMALL_VALUES:
        gaps = []
        inversions = 0
        for seed in SEEDS:
            config = GeneratorConfig(
                n_jobs=BENCH_JOBS // 2,  # 10 seeds x 2 mixes: halve per-run cost
                size=TwoStageSizeConfig(p_small=p_small),
            )
            workload = calibrate_beta_arr(config, 0.95, seed=seed).workload
            results = run_algorithms(
                workload, ("EASY", "LOS", "Delayed-LOS"), max_skip_count=7
            )
            easy, los = results["EASY"].mean_wait, results["LOS"].mean_wait
            gap = (los - easy) / easy if easy else 0.0  # >0: LOS worse
            gaps.append(gap)
            if gap > 0.02:
                inversions += 1
            delayed_vs_los.append(
                (los - results["Delayed-LOS"].mean_wait) / los if los else 0.0
            )
        mean_gap = sum(gaps) / len(gaps)
        outcomes[p_small] = {"inversion_rate": inversions / len(SEEDS), "mean_gap": mean_gap}
        rows.append(
            [
                p_small,
                f"{inversions}/{len(SEEDS)}",
                f"{mean_gap:+.1%}",
                f"{max(gaps):+.1%}",
                f"{min(gaps):+.1%}",
            ]
        )
    report = format_table(
        ["P_S", "runs with LOS > EASY (+2%)", "mean LOS-vs-EASY gap", "worst", "best"],
        rows,
    )
    report += (
        "\n\npositive gap = LOS waits longer than EASY (the paper's claimed anomaly)"
    )
    return outcomes, delayed_vs_los, report


def test_los_anomaly_study(benchmark):
    outcomes, delayed_vs_los, report = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_report(
        "study_los_anomaly",
        "Study: frequency of the LOS-worse-than-EASY inversion "
        "(Load=0.95, 10 seeds per mix)\n\n" + report,
    )
    # Bookkeeping assertions only — the frequency is the finding.
    for data in outcomes.values():
        assert 0.0 <= data["inversion_rate"] <= 1.0
    # Delayed-LOS improves on LOS on average across all 20 runs.
    assert sum(delayed_vs_los) / len(delayed_vs_los) > 0.0
