"""Ablation D — ECC intensity sweep (and the EP/RP prototype).

The paper fixes P_E = 0.2 and P_R = 0.1 "for brevity".  This ablation
sweeps the command intensity to chart how runtime elasticity erodes
packing quality, and additionally exercises the EP/RP (resource
dimension) prototype — the paper's future work — by converting a
fraction of commands to processor extensions/reductions under
``allow_resource_eccs``.

Expected shape: Delayed-LOS-E's advantage over EASY-E persists at
every intensity (the paper's Figure 11 point generalized), and the
EP/RP runs complete with all invariants intact (capacity-checked by
the machine on every allocation).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import BENCH_JOBS, save_report
from repro.core.registry import make_scheduler
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import format_table
from repro.workload.ecc import ECC, ECCKind
from repro.workload.generator import GeneratorConfig, Workload
from repro.workload.twostage import TwoStageSizeConfig

INTENSITIES = ((0.0, 0.0), (0.1, 0.05), (0.2, 0.1), (0.4, 0.2), (0.6, 0.3))


def _elastic_workload(p_extend: float, p_reduce: float) -> Workload:
    config = GeneratorConfig(
        n_jobs=BENCH_JOBS,
        size=TwoStageSizeConfig(p_small=0.5),
        p_extend=p_extend,
        p_reduce=p_reduce,
    )
    return calibrate_beta_arr(config, 0.9, seed=111).workload


def _with_resource_commands(workload: Workload, fraction: float) -> Workload:
    """Convert a deterministic slice of time-ECCs into EP/RP commands."""
    converted = []
    for index, ecc in enumerate(workload.eccs):
        if (index % int(1 / fraction)) == 0:
            kind = (
                ECCKind.EXTEND_PROCS
                if ecc.kind is ECCKind.EXTEND_TIME
                else ECCKind.REDUCE_PROCS
            )
            converted.append(
                ECC(job_id=ecc.job_id, issue_time=ecc.issue_time, kind=kind, amount=32.0)
            )
        else:
            converted.append(ecc)
    return Workload(
        jobs=[j.copy_for_run() for j in workload.jobs],
        eccs=converted,
        machine_size=workload.machine_size,
        granularity=workload.granularity,
        description=workload.description + " +EP/RP",
    )


def run_ablation():
    rows = []
    gaps = {}
    for p_extend, p_reduce in INTENSITIES:
        workload = _elastic_workload(p_extend, p_reduce)
        results = {}
        for name in ("EASY-E", "Delayed-LOS-E"):
            scheduler = make_scheduler(name, max_skip_count=7)
            results[name] = SimulationRunner(workload, scheduler).run()
        easy, delayed = results["EASY-E"], results["Delayed-LOS-E"]
        gap = (easy.mean_wait - delayed.mean_wait) / easy.mean_wait if easy.mean_wait else 0.0
        gaps[(p_extend, p_reduce)] = gap
        rows.append(
            [
                f"{p_extend:g}/{p_reduce:g}",
                len(workload.eccs),
                round(easy.mean_wait, 1),
                round(delayed.mean_wait, 1),
                f"{gap:+.1%}",
            ]
        )
    report = format_table(
        ["P_E/P_R", "ECCs", "EASY-E wait", "Delayed-LOS-E wait", "advantage"], rows
    )

    # EP/RP prototype: run one intense workload with a third of the
    # commands converted to processor extensions/reductions.
    base = _elastic_workload(0.4, 0.2)
    resource_workload = _with_resource_commands(base, fraction=1 / 3)
    runner = SimulationRunner(
        resource_workload,
        make_scheduler("Delayed-LOS-E", max_skip_count=7),
        allow_resource_eccs=True,
    )
    eprp_metrics = runner.run()
    applied = sum(eprp_metrics.ecc_stats.values())
    report += (
        f"\n\nEP/RP prototype: {applied} commands processed over "
        f"{len(resource_workload.eccs)} issued; all {eprp_metrics.n_jobs} jobs "
        f"completed (outcomes: {eprp_metrics.ecc_stats})"
    )
    return gaps, eprp_metrics, report


def test_ecc_intensity_ablation(benchmark):
    gaps, eprp_metrics, report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report(
        "ablation_ecc_intensity",
        "Ablation D: ECC intensity sweep (Load=0.9, P_S=0.5)\n\n" + report,
    )
    # The DP advantage never flips sign materially at any intensity.
    assert all(gap > -0.05 for gap in gaps.values()), gaps
    # The EP/RP run completed every job with resource commands applied.
    assert eprp_metrics.n_jobs == BENCH_JOBS
    assert eprp_metrics.ecc_stats.get("applied-queued", 0) > 0
