"""Figure 10 — heterogeneous metrics vs Load (P_D = 0.9, P_S = 0.5).

The stress case: dedicated jobs dominate (90%), batch jobs thread the
gaps between rigid reservations.  The paper: Hybrid-LOS still
outperforms LOS-D and EASY-D.

Expected shape: Hybrid-LOS beats EASY-D on wait and utilization,
matches LOS-D, and the advantage persists even with few batch jobs.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import PAPER_LOADS, figure10


def run_figure10():
    return figure10(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=10)


def test_figure10(benchmark):
    sweep = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    save_report(
        "fig10_hetero_dedicated",
        render_sweep(sweep, "Figure 10: metrics vs Load (heterogeneous, P_D=0.9, P_S=0.5)"),
    )

    assert mean_metric(sweep, "Hybrid-LOS", "mean_wait") <= mean_metric(
        sweep, "EASY-D", "mean_wait"
    )
    assert mean_metric(sweep, "Hybrid-LOS", "utilization") >= mean_metric(
        sweep, "EASY-D", "utilization"
    )
    assert mean_metric(sweep, "Hybrid-LOS", "mean_wait") <= 1.10 * mean_metric(
        sweep, "LOS-D", "mean_wait"
    )

    # P_D = 0.9: dedicated jobs dominate every run.
    for run in sweep.series["Hybrid-LOS"]:
        fraction = len(run.dedicated_records()) / run.n_jobs
        assert fraction > 0.7, f"expected >70% dedicated, got {fraction:.0%}"
