"""Ablation A — DP lookahead depth ([7] §"limiting the lookahead").

Shmueli & Feitelson bound the DP to the first 50 queued jobs and report
that packing efficiency barely suffers while runtime is bounded.  This
ablation sweeps the lookahead window for Delayed-LOS on one calibrated
high-load workload and reports both scheduling quality (mean wait,
utilization) and wall-clock cost of the whole simulation.

Expected shape: quality saturates at a modest window (deep lookahead
adds nothing); unbounded lookahead is never *better* than 50 by more
than noise.
"""

from __future__ import annotations

import time

from benchmarks.common import BENCH_JOBS, save_report
from repro.core.registry import make_scheduler
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

LOOKAHEADS = (1, 2, 5, 10, 25, 50, 100, None)


def run_ablation():
    config = GeneratorConfig(
        n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=0.5)
    )
    workload = calibrate_beta_arr(config, 0.95, seed=77).workload
    rows = []
    results = {}
    for lookahead in LOOKAHEADS:
        scheduler = make_scheduler("Delayed-LOS", max_skip_count=7, lookahead=lookahead)
        started = time.perf_counter()
        metrics = SimulationRunner(workload, scheduler).run()
        elapsed = time.perf_counter() - started
        label = "unbounded" if lookahead is None else str(lookahead)
        rows.append(
            [
                label,
                round(metrics.utilization, 4),
                round(metrics.mean_wait, 1),
                round(metrics.slowdown, 3),
                round(elapsed * 1000, 1),
            ]
        )
        results[lookahead] = metrics
    report = format_table(
        ["lookahead", "utilization", "mean wait (s)", "slowdown", "sim wall (ms)"], rows
    )
    return results, report


def test_lookahead_ablation(benchmark):
    results, report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report(
        "ablation_lookahead",
        "Ablation A: DP lookahead depth (Delayed-LOS, Load=0.95, P_S=0.5)\n\n" + report,
    )
    # Depth-50 quality is within a whisker of unbounded ([7]'s claim).
    assert results[50].mean_wait <= 1.05 * results[None].mean_wait
    # A tiny window visibly hurts relative to 50 (packing misses), or
    # at the very least never helps.
    assert results[1].mean_wait >= 0.999 * results[50].mean_wait
