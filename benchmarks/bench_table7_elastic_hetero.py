"""Table VII — max % improvement of Hybrid-LOS-E over LOS-DE / EASY-DE.

Derived from the Figure 11 heterogeneous sweep (elastic,
P_S = P_D = 0.5).  Paper reported: utilization 1.88% / 3.02%, waiting
time 20.76% / 10.18%, slowdown 19.81% / 14.6% — note the paper's own
numbers here are the smallest of all four tables: elasticity plus
rigid dedicated reservations is the hardest regime.

Assertions mirror Table V: clear wins over the EASY family, parity
(within noise) against the DP-sharing LOS-DE.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, render_improvements, save_report
from repro.experiments.figures import PAPER_LOADS, figure11
from repro.experiments.tables import PAPER_TABLE_VII, improvement_table


def run_table7():
    sweep = figure11(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=11)["heterogeneous"]
    return improvement_table(sweep, "Hybrid-LOS-E", ["LOS-DE", "EASY-DE"])


def test_table7(benchmark):
    measured = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    save_report(
        "table7_elastic_hetero",
        render_improvements(
            "Table VII: Hybrid-LOS-E over LOS-DE and EASY-DE", measured, PAPER_TABLE_VII
        ),
    )
    for metric, row in measured.items():
        assert row["EASY-DE"] > 0.0, f"{metric} vs EASY-DE: no improvement"
        assert row["LOS-DE"] > -5.0, f"{metric} vs LOS-DE: materially worse"
