"""Ablation F — space-continuity cost on a BlueGene-style machine.

The paper models BlueGene/P as a flat processor pool, but real BG
partitions must be *contiguous* (the paper's own §VI future-work
discussion; Krevat et al. [8] study the resulting fragmentation and
migration on BG/L).  This study quantifies what the flat-model
abstraction hides:

1. simulate a paper-scale workload with each scheduler on the flat
   machine (exactly as the paper does),
2. replay the resulting schedule — same start/finish instants — onto a
   1-D contiguous-partition machine, first-fit,
3. count allocations that would have *failed due to external
   fragmentation* (free capacity sufficient, but no contiguous run),
   with and without migration-based compaction [8].

Expected shape: a nonzero fragmentation failure rate without
migration that compaction drives to zero (every replayed allocation
fits by construction of the flat schedule), echoing [8]'s conclusion
that migration recovers the lost utilization.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.common import BENCH_JOBS, save_report
from repro.cluster.partition import FragmentationError, PartitionedMachine
from repro.core.registry import make_scheduler
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

ALGORITHMS = ("EASY", "LOS", "Delayed-LOS")


def replay_contiguously(metrics, machine_size: int, granularity: int, migrate: bool):
    """Replay a completed schedule on a contiguous machine.

    Returns (fragmentation failures, migrations performed, peak
    fragmentation observed).
    """
    events = []
    for record in metrics.records:
        events.append((record.start, 1, "start", record))
        events.append((record.finish, 0, "finish", record))
    events.sort(key=lambda item: (item[0], item[1], item[3].job_id))

    machine = PartitionedMachine(total=machine_size, granularity=granularity)
    failures = 0
    migrations = 0
    peak_fragmentation = 0.0
    for _, _, kind, record in events:
        if kind == "finish":
            if machine.span_of(record.job_id) is not None:
                machine.release(record.job_id)
            continue
        peak_fragmentation = max(peak_fragmentation, machine.fragmentation())
        try:
            machine.allocate(record.job_id, record.num)
        except FragmentationError:
            if migrate:
                migrations += machine.compact()
                machine.allocate(record.job_id, record.num)  # must fit now
            else:
                failures += 1  # job silently skipped in this replay
    return failures, migrations, peak_fragmentation


def run_study():
    config = GeneratorConfig(n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=0.5))
    workload = calibrate_beta_arr(config, 0.9, seed=131).workload
    rows = []
    outcomes: Dict[str, Dict[str, float]] = {}
    for name in ALGORITHMS:
        metrics = SimulationRunner(workload, make_scheduler(name, max_skip_count=7)).run()
        failures, _, peak = replay_contiguously(
            metrics, workload.machine_size, workload.granularity, migrate=False
        )
        migrated_failures, migrations, _ = replay_contiguously(
            metrics, workload.machine_size, workload.granularity, migrate=True
        )
        outcomes[name] = {
            "failures": failures,
            "migrated_failures": migrated_failures,
            "migrations": migrations,
            "peak_fragmentation": peak,
        }
        rows.append(
            [
                name,
                failures,
                f"{failures / metrics.n_jobs:.1%}",
                round(peak, 3),
                migrations,
                migrated_failures,
            ]
        )
    report = format_table(
        [
            "scheduler",
            "frag failures",
            "failure rate",
            "peak fragmentation",
            "migrations (compact)",
            "failures w/ migration",
        ],
        rows,
    )
    return outcomes, report


def test_fragmentation_study(benchmark):
    outcomes, report = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_report(
        "ablation_fragmentation",
        "Ablation F: contiguity cost of the flat BlueGene model "
        "(Load=0.9, P_S=0.5)\n\n" + report,
    )
    for name, data in outcomes.items():
        # Migration always rescues the schedule: capacity sufficed by
        # construction, compaction makes it contiguous.
        assert data["migrated_failures"] == 0, name
        # Fragmentation is real on this workload shape.
        assert data["peak_fragmentation"] > 0.0, name
