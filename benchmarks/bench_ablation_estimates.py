"""Ablation B — user runtime over-estimation.

Mu'alem & Feitelson [6] observed that backfilling *improves* when
users over-estimate runtimes by about 2x: jobs finish earlier than
their kill-by times, continuously opening holes the backfiller can
exploit.  The paper's model uses perfect estimates (factor 1.0); this
ablation sweeps the over-estimation factor for EASY, LOS and
Delayed-LOS on a common workload.

Expected shape: waiting time is not monotone in the factor; the
DP-based schedulers retain their advantage at every factor.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.sweep import run_algorithms
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

FACTORS = (1.0, 1.5, 2.0, 3.0, 5.0)
ALGORITHMS = ("EASY", "LOS", "Delayed-LOS")


def run_ablation():
    rows = []
    waits: dict[float, dict[str, float]] = {}
    for factor in FACTORS:
        config = GeneratorConfig(
            n_jobs=BENCH_JOBS,
            size=TwoStageSizeConfig(p_small=0.2),
            estimate_factor=factor,
        )
        workload = calibrate_beta_arr(config, 0.9, seed=88).workload
        results = run_algorithms(workload, ALGORITHMS, max_skip_count=7)
        waits[factor] = {name: m.mean_wait for name, m in results.items()}
        rows.append(
            [factor]
            + [round(results[name].mean_wait, 1) for name in ALGORITHMS]
            + [round(results[name].utilization, 4) for name in ALGORITHMS]
        )
    report = format_table(
        ["estimate factor"]
        + [f"{n} wait" for n in ALGORITHMS]
        + [f"{n} util" for n in ALGORITHMS],
        rows,
    )
    return waits, report


def test_estimate_ablation(benchmark):
    waits, report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report(
        "ablation_estimates",
        "Ablation B: user runtime over-estimation factor (Load=0.9, P_S=0.2)\n\n"
        + report,
    )
    # Delayed-LOS keeps its edge over LOS at every factor (it shares
    # the estimate information, so over-estimation hits both alike).
    for factor in FACTORS:
        assert waits[factor]["Delayed-LOS"] <= 1.05 * waits[factor]["LOS"], factor
