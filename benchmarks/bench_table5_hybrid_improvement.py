"""Table V — max % improvement of Hybrid-LOS over LOS-D and EASY-D.

Derived from the Figure 9 sweep (heterogeneous, P_D = 0.5, P_S = 0.2).
Paper reported: utilization 4.55% / 2.33%, waiting time 25.31% /
18.24%, slowdown 24.29% / 17.43% over LOS-D / EASY-D.

Assertions: Hybrid-LOS improves on EASY-D in every metric somewhere in
the sweep (the robust claim); against LOS-D — which shares the whole
DP machinery and differs only in head-start aggressiveness — we
require the max improvement not to be materially negative.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, render_improvements, save_report
from repro.experiments.figures import PAPER_LOADS, figure9
from repro.experiments.tables import PAPER_TABLE_V, improvement_table


def run_table5():
    sweep = figure9(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=9)
    return improvement_table(sweep, "Hybrid-LOS", ["LOS-D", "EASY-D"])


def test_table5(benchmark):
    measured = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    save_report(
        "table5_hybrid_improvement",
        render_improvements("Table V: Hybrid-LOS over LOS-D and EASY-D", measured, PAPER_TABLE_V),
    )
    for metric, row in measured.items():
        assert row["EASY-D"] > 0.0, f"{metric} vs EASY-D: no improvement"
        assert row["LOS-D"] > -5.0, f"{metric} vs LOS-D: materially worse"
