"""Figure 6 — metrics vs C_s with a small-job-heavy mix (P_S = 0.8).

Same setup as Figure 5 but with small jobs dominating.  The paper's
observation: with plenty of small jobs to fill holes, Delayed-LOS's
performance becomes *insensitive* to C_s beyond a small threshold
(≈3) — the optimum C_s depends on the packing properties of the
workload.
"""

from __future__ import annotations

import statistics

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import figure6

CS_VALUES = tuple(range(1, 21))


def run_figure6():
    return figure6(n_jobs=BENCH_JOBS, cs_values=CS_VALUES, load=0.9, seed=6)


def test_figure6(benchmark):
    sweep = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    save_report(
        "fig6_cs_sweep_smalljobs",
        render_sweep(sweep, "Figure 6: metrics vs C_s (Load=0.9, P_S=0.8)"),
    )

    # Delayed-LOS still at least matches LOS on average.
    assert mean_metric(sweep, "Delayed-LOS", "mean_wait") <= mean_metric(
        sweep, "LOS", "mean_wait"
    )

    # Insensitivity above the small knee: the spread of the waiting
    # time over C_s >= 3 is small relative to its level.
    waits = sweep.metric_series("Delayed-LOS", "mean_wait")
    tail = waits[2:]  # C_s >= 3
    level = statistics.mean(tail)
    spread = max(tail) - min(tail)
    assert spread <= 0.25 * level, (
        f"expected insensitivity to C_s >= 3; spread {spread:.1f} vs level {level:.1f}"
    )
