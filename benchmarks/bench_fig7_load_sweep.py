"""Figure 7 — batch metrics vs Load at P_S = 0.2 (large-job-heavy).

The paper's flagship batch experiment: with few small jobs to fill
holes between the large ones, packing quality matters most, and
Delayed-LOS outperforms both LOS and EASY over Load ∈ [0.5, 1].
The same sweep feeds Table IV (see bench_table4).

Expected shape: Delayed-LOS lowest mean wait across the sweep;
utilization at least matching the baselines at high load.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import PAPER_LOADS, figure7


def run_figure7():
    return figure7(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=7)


def test_figure7(benchmark):
    sweep = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    save_report(
        "fig7_load_sweep",
        render_sweep(sweep, "Figure 7: metrics vs Load (batch, P_S=0.2)"),
    )

    delayed_wait = mean_metric(sweep, "Delayed-LOS", "mean_wait")
    assert delayed_wait <= mean_metric(sweep, "LOS", "mean_wait")
    assert delayed_wait <= mean_metric(sweep, "EASY", "mean_wait")
    assert mean_metric(sweep, "Delayed-LOS", "utilization") >= 0.99 * mean_metric(
        sweep, "LOS", "utilization"
    )

    # Waiting time grows with load for every algorithm (coarse trend:
    # the last point exceeds the first).
    for name in sweep.series:
        waits = sweep.metric_series(name, "mean_wait")
        assert waits[-1] > waits[0], name
