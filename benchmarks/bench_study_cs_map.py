"""Study — empirical map of the optimal C_s over the P_S spectrum.

The paper: "Formulating a systematic or analytical methodology to
compute the optimal value of C_s using any characteristics of the
workload is a non-trivial problem and lies outside the scope of this
paper.  It can be studied as a separate research problem in itself."

This study is a first cut at that problem: for each small-job share
P_S, sweep C_s on a Load≈0.9 workload and record the wait-minimizing
threshold.  The paper's two observations should appear as the ends of
the curve: an interior optimum around 7–8 at P_S = 0.5 (Figure 5) and
insensitivity — any small C_s works — at P_S = 0.8 (Figure 6).

Asserted (robust): at every P_S, the best Delayed-LOS configuration is
at least as good as LOS (the C_s = 0 end of its own family), and the
optimal C_s is smaller or insensitivity is higher at small-job-heavy
mixes than at large-job-heavy mixes.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.sweep import run_algorithms
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

P_SMALL_VALUES = (0.2, 0.4, 0.6, 0.8)
CS_VALUES = (0, 1, 2, 3, 5, 7, 10, 15)


def run_study():
    rows = []
    outcomes: Dict[float, Dict] = {}
    for p_small in P_SMALL_VALUES:
        config = GeneratorConfig(
            n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=p_small)
        )
        workload = calibrate_beta_arr(config, 0.9, seed=151).workload
        waits = {}
        for cs in CS_VALUES:
            result = run_algorithms(workload, ("Delayed-LOS",), max_skip_count=cs)
            waits[cs] = result["Delayed-LOS"].mean_wait
        best_cs = min(waits, key=waits.get)
        # Sensitivity above the knee (Figure 6's notion): relative
        # spread of the waits over C_s >= 3 only.
        tail = [w for cs, w in waits.items() if cs >= 3]
        level = sum(tail) / len(tail)
        spread = (max(tail) - min(tail)) / level if level else 0.0
        outcomes[p_small] = {"waits": waits, "best_cs": best_cs, "tail_sensitivity": spread}
        rows.append(
            [p_small, best_cs, round(waits[best_cs], 1), round(waits[0], 1), f"{spread:.1%}"]
        )
    report = format_table(
        ["P_S", "best C_s", "wait @ best", "wait @ C_s=0 (LOS)", "tail sensitivity (C_s>=3)"],
        rows,
    )
    return outcomes, report


def test_cs_map_study(benchmark):
    outcomes, report = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_report(
        "study_cs_map",
        "Study: optimal C_s across the P_S spectrum (Load=0.9)\n\n" + report,
    )
    for p_small, data in outcomes.items():
        waits = data["waits"]
        # The tuned threshold never loses to the LOS end of the family.
        assert waits[data["best_cs"]] <= waits[0], p_small
    # Figure 6's observation at the small-job-heavy end: above the
    # knee (C_s >= 3) the policy is insensitive to the exact threshold.
    assert outcomes[0.8]["tail_sensitivity"] <= 0.25
