"""Study — are the paper's conclusions Lublin-model artifacts?

Every §V experiment draws workloads from the Lublin–Feitelson model.
This study re-runs the core comparison (EASY vs LOS vs Delayed-LOS at
high load) under two structurally different workload generators:

- **Downey (1997)** — log-uniform total work, log-uniform parallelism,
  Poisson arrivals (no daily cycle, no size/runtime hyper-Gamma),
- **Lublin + two-stage sizes** — the paper's own §IV-D setup, as the
  reference point.

Expected shape: the qualitative ranking — DP packing at least matches
EASY, Delayed-LOS at least matches LOS — holds under both models; the
magnitudes may differ (that is the finding).
"""

from __future__ import annotations

from typing import Dict

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.sweep import run_algorithms
from repro.metrics.report import format_table
from repro.workload.downey import calibrate_downey
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

ALGORITHMS = ("EASY", "LOS", "Delayed-LOS")
TARGET_LOAD = 0.9
SEEDS = (161, 171, 181)


def _paper_workload(seed: int):
    config = GeneratorConfig(n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=0.5))
    return calibrate_beta_arr(config, TARGET_LOAD, seed=seed).workload


def _downey_workload(seed: int):
    return calibrate_downey(TARGET_LOAD, n_jobs=BENCH_JOBS, seed=seed)


def run_study():
    rows = []
    outcomes: Dict[str, Dict[str, float]] = {}
    for label, build in (("Lublin/two-stage", _paper_workload), ("Downey", _downey_workload)):
        sums = {name: 0.0 for name in ALGORITHMS}
        for seed in SEEDS:
            workload = build(seed)
            results = run_algorithms(workload, ALGORITHMS, max_skip_count=7)
            for name in ALGORITHMS:
                sums[name] += results[name].mean_wait
        means = {name: total / len(SEEDS) for name, total in sums.items()}
        outcomes[label] = means
        rows.append(
            [label]
            + [round(means[name], 1) for name in ALGORITHMS]
            + [f"{(means['LOS'] - means['Delayed-LOS']) / means['LOS']:+.1%}"]
        )
    report = format_table(
        ["workload model"]
        + [f"{name} wait" for name in ALGORITHMS]
        + ["Delayed-LOS gain vs LOS"],
        rows,
    )
    return outcomes, report


def test_model_sensitivity(benchmark):
    outcomes, report = benchmark.pedantic(run_study, rounds=1, iterations=1)
    save_report(
        "study_model_sensitivity",
        f"Study: workload-model sensitivity (Load={TARGET_LOAD}, "
        f"{len(SEEDS)}-seed means)\n\n" + report,
    )
    for label, means in outcomes.items():
        # The qualitative ranking holds under both generators.
        assert means["Delayed-LOS"] <= 1.03 * means["LOS"], label
        assert means["Delayed-LOS"] <= 1.05 * means["EASY"], label
