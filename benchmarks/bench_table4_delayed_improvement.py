"""Table IV — max % improvement of Delayed-LOS over LOS and EASY.

Derived from the Figure 7 sweep (batch, P_S = 0.2, Load ∈ [0.5, 1]):
for each metric, the maximum per-load-point improvement, exactly as
the paper computes it ("listing mean percentage improvements across
varying loads will not make sense").

Paper reported: utilization 4.1% / 1.52%, waiting time 31.88% /
21.65%, slowdown 30.3% / 20.41% over LOS / EASY.  We assert direction
(positive max improvement), not magnitudes — different workload draws.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, render_improvements, save_report
from repro.experiments.figures import PAPER_LOADS, figure7
from repro.experiments.tables import PAPER_TABLE_IV, improvement_table


def run_table4():
    sweep = figure7(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=7)
    return improvement_table(sweep, "Delayed-LOS", ["LOS", "EASY"])


def test_table4(benchmark):
    measured = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_report(
        "table4_delayed_improvement",
        render_improvements("Table IV: Delayed-LOS over LOS and EASY", measured, PAPER_TABLE_IV),
    )
    # Somewhere in the sweep, Delayed-LOS improves on both baselines in
    # every reported metric.
    for metric, row in measured.items():
        for baseline, value in row.items():
            assert value > 0.0, f"{metric} vs {baseline}: no improvement ({value}%)"
