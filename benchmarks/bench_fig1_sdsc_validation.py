"""Figure 1 — validation: EASY vs LOS on an SDSC-like log.

The paper re-runs the comparison of [7] to validate its LOS
implementation: on a real-log-shaped workload with load varied by
multiplying arrival times by a constant factor, LOS's DP packing beats
EASY on mean job waiting time.

Paper substrate: the real SDSC SP2 log.  Ours: a statistically
equivalent Lublin-model trace on a 128-processor machine (DESIGN.md
§2) with the same arrival-scaling methodology.

Expected shape: LOS mean wait <= EASY mean wait across the sweep.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import figure1

SCALE_FACTORS = (1.6, 1.4, 1.25, 1.1, 1.0)


def run_figure1():
    return figure1(n_jobs=BENCH_JOBS, scale_factors=SCALE_FACTORS, seed=1)


def test_figure1(benchmark):
    sweep = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    save_report(
        "fig1_sdsc_validation",
        render_sweep(sweep, "Figure 1: EASY vs LOS, SDSC-like log (load via arrival scaling)"),
    )
    # The validation claim of Figure 1: LOS outperforms EASY in mean
    # job waiting time on real-log-shaped workloads.
    assert mean_metric(sweep, "LOS", "mean_wait") <= mean_metric(
        sweep, "EASY", "mean_wait"
    )
    # Both schedulers saw the identical offered-load sweep.
    assert sweep.sweep_values == sorted(sweep.sweep_values)
