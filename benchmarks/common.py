"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` regenerates one table or figure of the paper at
full paper scale (``N_J = 500`` jobs per point; override with the
``REPRO_BENCH_JOBS`` environment variable), prints the series the
paper plots plus a paper-vs-measured comparison, and saves the text
report under ``benchmarks/output/``.

The underlying sweeps dispatch every (algorithm × point) run through
:mod:`repro.experiments.parallel`, so benchmarks use all cores by
default; ``REPRO_JOBS=1`` forces the serial path (identical results),
and ``REPRO_CACHE=1`` reuses previously simulated runs from
``.repro_cache/`` so editing one algorithm only re-simulates the
delta.  See docs/performance.md.

Absolute numbers are *not* asserted — our workloads are fresh draws
from the paper's statistical model, not the authors' exact traces.
Only robust directional claims (who wins on average across the sweep)
are checked; see EXPERIMENTS.md for the recorded outcomes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Mapping, Sequence

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.cache import RunCache
from repro.experiments.parallel import resolve_jobs
from repro.experiments.sweep import SweepResult
from repro.metrics.report import format_comparison_table, format_metrics_table

#: Paper scale by default; set REPRO_BENCH_JOBS=100 for quick runs.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "500"))

#: Worker processes the experiment layer will fan runs out over
#: (``REPRO_JOBS`` env var, default: CPU count).
BENCH_WORKERS = resolve_jobs()

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def bench_cache() -> RunCache:
    """The run cache as configured by ``REPRO_CACHE``/``REPRO_CACHE_DIR``."""
    return RunCache.from_env()


def mean_metric(sweep: SweepResult, algorithm: str, metric: str) -> float:
    """Mean of a metric across the sweep (robust direction checks)."""
    series = sweep.metric_series(algorithm, metric)
    return sum(series) / len(series)


def render_sweep(
    sweep: SweepResult,
    title: str,
    metrics: Sequence[str] = ("utilization", "mean_wait", "slowdown"),
) -> str:
    """Figure-style report: tables plus an ASCII plot per metric."""
    parts = [
        f"{'=' * 72}",
        title,
        f"jobs per point: {BENCH_JOBS} (workers: {BENCH_WORKERS})",
        "",
    ]
    parts.append(
        format_metrics_table(sweep.sweep_label, sweep.sweep_values, sweep.rows(),
                             metrics=[m for m in metrics if m != "slowdown"])
    )
    if "slowdown" in metrics:
        rows = {
            name: [{"slowdown": run.slowdown} for run in runs]
            for name, runs in sweep.series.items()
        }
        parts.append("")
        parts.append(
            format_metrics_table(
                sweep.sweep_label, sweep.sweep_values, rows, metrics=["slowdown"]
            )
        )
    for metric in metrics:
        series = {
            name: sweep.metric_series(name, metric) for name in sweep.series
        }
        parts.append("")
        parts.append(
            ascii_plot(
                sweep.sweep_values,
                series,
                title=f"{metric} vs {sweep.sweep_label}",
                height=12,
            )
        )
    return "\n".join(parts)


def render_improvements(
    title: str,
    measured: Mapping[str, Mapping[str, float]],
    paper: Mapping[str, Mapping[str, float]],
) -> str:
    """Tables IV-VII style paper-vs-measured comparison with a
    quantitative fidelity verdict (sign agreement + magnitude ratio)."""
    from repro.experiments.fidelity import score_fidelity

    parts = [
        format_comparison_table(f"{title} — measured (max % improvement)", measured),
        "",
        format_comparison_table(f"{title} — paper reported", dict(paper)),
        "",
        score_fidelity(measured, paper).summary(),
    ]
    return "\n".join(parts)


def save_report(name: str, text: str) -> None:
    """Print the report and persist it under benchmarks/output/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


__all__ = [
    "BENCH_JOBS",
    "BENCH_WORKERS",
    "OUTPUT_DIR",
    "bench_cache",
    "mean_metric",
    "render_improvements",
    "render_sweep",
    "save_report",
]
