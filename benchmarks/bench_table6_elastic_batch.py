"""Table VI — max % improvement of Delayed-LOS-E over LOS-E / EASY-E.

Derived from the Figure 11 batch sweep (elastic, P_S = 0.5, P_E = 0.2,
P_R = 0.1).  Paper reported: utilization 4.93% / 1.78%, waiting time
18.94% / 12.19%, slowdown 18.39% / 11.79%.

The paper notes these improvements are *smaller* than the non-elastic
Table IV figures because runtime elasticity perturbs planned packings.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, render_improvements, save_report
from repro.experiments.figures import PAPER_LOADS, figure11
from repro.experiments.tables import PAPER_TABLE_VI, improvement_table


def run_table6():
    sweep = figure11(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=11)["batch"]
    return improvement_table(sweep, "Delayed-LOS-E", ["LOS-E", "EASY-E"])


def test_table6(benchmark):
    measured = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    save_report(
        "table6_elastic_batch",
        render_improvements(
            "Table VI: Delayed-LOS-E over LOS-E and EASY-E", measured, PAPER_TABLE_VI
        ),
    )
    for metric, row in measured.items():
        for baseline, value in row.items():
            assert value > 0.0, f"{metric} vs {baseline}: no improvement ({value}%)"
