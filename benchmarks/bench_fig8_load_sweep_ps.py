"""Figure 8 — waiting time vs Load for P_S = 0.5 and P_S = 0.8.

As the share of small jobs grows, backfilling opportunities abound and
Delayed-LOS's advantage over EASY narrows ("performance of Delayed-LOS
comes closer to EASY"), while both keep outperforming LOS.

Expected shape: Delayed-LOS <= LOS on mean wait in both mixes, and the
relative Delayed-LOS-vs-EASY gap shrinks from P_S=0.5 to P_S=0.8.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import PAPER_LOADS, figure8


def run_figure8():
    return figure8(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=8)


def test_figure8(benchmark):
    results = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    gaps = {}
    for label, sweep in results.items():
        save_report(
            f"fig8_load_sweep_{label.replace('=', '').replace('.', '')}",
            render_sweep(sweep, f"Figure 8: wait vs Load (batch, {label})",
                         metrics=("mean_wait",)),
        )
        delayed = mean_metric(sweep, "Delayed-LOS", "mean_wait")
        los = mean_metric(sweep, "LOS", "mean_wait")
        easy = mean_metric(sweep, "EASY", "mean_wait")
        # Both mixes: Delayed-LOS at least matches LOS.
        assert delayed <= 1.02 * los, label
        gaps[label] = (easy - delayed) / easy

    # With many small jobs Delayed-LOS and EASY converge: the relative
    # advantage at P_S=0.8 is no larger than at P_S=0.5 plus noise.
    assert gaps["P_S=0.8"] <= gaps["P_S=0.5"] + 0.05, gaps
