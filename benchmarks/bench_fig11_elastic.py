"""Figure 11 — runtime elasticity: the -E algorithm families.

Workloads injected with Elastic Control Commands (P_E = 0.2 ET and
P_R = 0.1 RT per job, §IV-D):

- batch (P_S = 0.5): Delayed-LOS-E vs LOS-E vs EASY-E (feeds Table VI),
- heterogeneous (P_S = P_D = 0.5): Hybrid-LOS-E vs LOS-DE vs EASY-DE
  (feeds Table VII).

Expected shape: the proposed elastic variants still win, but — as the
paper notes — by smaller margins than the non-elastic Tables IV/V,
because on-the-fly kill-by changes perturb the packing the DP planned.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import PAPER_LOADS, figure11


def run_figure11():
    return figure11(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=11)


def test_figure11(benchmark):
    results = benchmark.pedantic(run_figure11, rounds=1, iterations=1)

    batch = results["batch"]
    save_report(
        "fig11_elastic_batch",
        render_sweep(batch, "Figure 11 (batch): ECC workload, P_S=0.5"),
    )
    delayed = mean_metric(batch, "Delayed-LOS-E", "mean_wait")
    assert delayed <= mean_metric(batch, "LOS-E", "mean_wait")
    assert delayed <= mean_metric(batch, "EASY-E", "mean_wait")

    hetero = results["heterogeneous"]
    save_report(
        "fig11_elastic_hetero",
        render_sweep(hetero, "Figure 11 (heterogeneous): ECC workload, P_S=P_D=0.5"),
    )
    hybrid = mean_metric(hetero, "Hybrid-LOS-E", "mean_wait")
    assert hybrid <= mean_metric(hetero, "EASY-DE", "mean_wait")
    assert hybrid <= 1.10 * mean_metric(hetero, "LOS-DE", "mean_wait")

    # ECCs were genuinely processed in every run.
    for sweep in results.values():
        for runs in sweep.series.values():
            for run in runs:
                assert sum(run.ecc_stats.values()) > 0, "no ECCs processed"
