"""Ablation C — the value of Reservation_DP (starvation control).

LOS is built in two stages in [7]: Basic_DP alone (Algorithm 1 there)
packs greedily, but a large head job can be skipped indefinitely while
small jobs flow past it; Reservation_DP adds the shadow reservation
that bounds the head's wait.  This ablation implements a
Basic_DP-*only* scheduler and compares it against Delayed-LOS on the
large-job-heavy mix, reporting tail waiting times — where starvation
shows up.

Expected shape: comparable mean/utilization, but the no-reservation
variant's *maximum* (and high-percentile) wait of large jobs inflates.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import BENCH_JOBS, save_report
from repro.core.base import CycleDecision, Scheduler, SchedulerContext
from repro.core.dp import basic_dp
from repro.core.registry import make_scheduler
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig


class BasicDPOnly(Scheduler):
    """Greedy utilization packing with *no* head-job reservation.

    The first-stage algorithm of [7]: every cycle runs Basic_DP over
    the queue and starts the selected set.  Nothing bounds how long a
    large head job can be overtaken.
    """

    name = "BASIC-DP-ONLY"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        if ctx.free <= 0 or not ctx.batch_queue:
            return CycleDecision.nothing()
        selected = basic_dp(
            ctx.batch_queue.jobs(),
            ctx.free,
            granularity=ctx.machine.granularity,
            lookahead=50,
        )
        return CycleDecision(starts=selected)


def run_ablation():
    config = GeneratorConfig(
        n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=0.5)
    )
    workload = calibrate_beta_arr(config, 0.95, seed=99).workload

    outcomes = {}
    for name, scheduler in (
        ("BASIC-DP-ONLY", BasicDPOnly()),
        ("Delayed-LOS", make_scheduler("Delayed-LOS", max_skip_count=7)),
        ("LOS", make_scheduler("LOS")),
    ):
        metrics = SimulationRunner(workload, scheduler).run()
        waits = np.array([r.wait for r in metrics.records])
        large_waits = np.array([r.wait for r in metrics.records if r.num >= 128])
        outcomes[name] = {
            "metrics": metrics,
            "p95": float(np.percentile(waits, 95)),
            "max": float(waits.max()),
            "large_max": float(large_waits.max()) if large_waits.size else 0.0,
        }
    rows = [
        [
            name,
            round(data["metrics"].utilization, 4),
            round(data["metrics"].mean_wait, 1),
            round(data["p95"], 1),
            round(data["max"], 1),
            round(data["large_max"], 1),
        ]
        for name, data in outcomes.items()
    ]
    report = format_table(
        ["scheduler", "utilization", "mean wait", "p95 wait", "max wait", "max large-job wait"],
        rows,
    )
    return outcomes, report


def test_reservation_ablation(benchmark):
    outcomes, report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report(
        "ablation_reservation",
        "Ablation C: Basic_DP-only vs reservation-based scheduling "
        "(Load=0.95, P_S=0.5)\n\n" + report,
    )
    # The reservation bounds the worst case: Delayed-LOS's maximum
    # large-job wait must not exceed the unprotected variant's.
    assert (
        outcomes["Delayed-LOS"]["large_max"]
        <= outcomes["BASIC-DP-ONLY"]["large_max"] * 1.001
    )
