"""Ablation E — the adaptive algorithm-selection policy (§V-A).

The paper suggests, from Figure 8's observation, "a dynamic, algorithm
selection policy that selects the best performing algorithm among
Delayed-LOS and EASY, for different proportions of small and large
sized jobs".  We implemented it (:class:`repro.core.selector.
AdaptiveSelector`) and here evaluate it across the P_S spectrum
against both fixed policies.

Expected shape: ADAPTIVE tracks the *envelope* — close to Delayed-LOS
where large jobs dominate (low P_S), close to EASY where small jobs
dominate (high P_S), never materially worse than the better fixed
choice.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.sweep import run_algorithms
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

P_SMALL_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
ALGORITHMS = ("EASY", "Delayed-LOS", "ADAPTIVE")


def run_ablation():
    rows = []
    outcomes = {}
    for p_small in P_SMALL_VALUES:
        config = GeneratorConfig(
            n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=p_small)
        )
        workload = calibrate_beta_arr(config, 0.9, seed=123).workload
        results = run_algorithms(workload, ALGORITHMS, max_skip_count=7)
        waits = {name: results[name].mean_wait for name in ALGORITHMS}
        outcomes[p_small] = waits
        rows.append(
            [p_small]
            + [round(waits[name], 1) for name in ALGORITHMS]
            + [min(("EASY", "Delayed-LOS"), key=waits.get)]
        )
    report = format_table(
        ["P_S"] + [f"{n} wait" for n in ALGORITHMS] + ["best fixed"], rows
    )
    return outcomes, report


def test_adaptive_ablation(benchmark):
    outcomes, report = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report(
        "ablation_adaptive",
        "Ablation E: adaptive EASY/Delayed-LOS selection across P_S "
        "(Load=0.9)\n\n" + report,
    )
    for p_small, waits in outcomes.items():
        best = min(waits["EASY"], waits["Delayed-LOS"])
        worst = max(waits["EASY"], waits["Delayed-LOS"])
        # Envelope property: adaptive never materially worse than the
        # worse fixed policy, and within 25% of the better one.
        assert waits["ADAPTIVE"] <= worst * 1.05, (p_small, waits)
        assert waits["ADAPTIVE"] <= best * 1.25, (p_small, waits)
