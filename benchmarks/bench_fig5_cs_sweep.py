"""Figure 5 — metrics vs the maximum skip count C_s (P_S = 0.5).

Batch workload at Load = 0.9 with a balanced size mix.  The paper's
observations this bench reproduces:

- Delayed-LOS outperforms LOS and EASY over the C_s sweep,
- waiting time first decreases with C_s, then stabilizes after a
  slight increase — i.e. there is an interior optimum (≈7-8 in the
  paper), so delaying the head job pays off but unboundedly delaying
  it does not,
- EASY and LOS are flat reference lines (they ignore C_s).
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, mean_metric, render_sweep, save_report
from repro.experiments.figures import figure5

CS_VALUES = tuple(range(1, 21))


def run_figure5():
    return figure5(n_jobs=BENCH_JOBS, cs_values=CS_VALUES, load=0.9, seed=5)


def test_figure5(benchmark):
    sweep = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    save_report(
        "fig5_cs_sweep",
        render_sweep(sweep, "Figure 5: metrics vs C_s (Load=0.9, P_S=0.5)"),
    )

    # Baselines are flat in C_s.
    for baseline in ("EASY", "LOS"):
        waits = sweep.metric_series(baseline, "mean_wait")
        assert max(waits) == min(waits), f"{baseline} must ignore C_s"

    # Delayed-LOS beats both baselines on average over the sweep.
    delayed = mean_metric(sweep, "Delayed-LOS", "mean_wait")
    assert delayed <= mean_metric(sweep, "LOS", "mean_wait")
    assert delayed <= mean_metric(sweep, "EASY", "mean_wait")

    # Interior optimum: the best C_s is neither the first nor beyond
    # the stabilization point, and the curve stabilizes at large C_s
    # (identical decisions once scount never reaches the threshold).
    waits = sweep.metric_series("Delayed-LOS", "mean_wait")
    assert min(waits) < waits[0] or min(waits) < waits[-1]
    assert waits[-1] == waits[-2] == waits[-3], "tail must stabilize"
