"""Replication study — Figure 7 across multiple seeds.

The paper plots a single run per point.  This bench replicates the
Figure 7 load sweep over several seeds and reports mean ± 95% CI per
load point — quantifying how much of the algorithm gaps is signal
versus draw-to-draw noise.

Expected: Delayed-LOS's waiting-time advantage over LOS and EASY is
consistent in the sweep-mean across seeds (lower mean; significance by
non-overlapping CIs is reported but not asserted — it depends on the
seed count).
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.figures import PAPER_LOADS, figure7
from repro.experiments.replicate import format_replicated, replicate_sweep

SEEDS = (7, 17, 27, 37, 47)


def run_replication():
    return replicate_sweep(
        lambda seed: figure7(n_jobs=BENCH_JOBS, loads=PAPER_LOADS, seed=seed),
        seeds=SEEDS,
    )


def test_replicated_figure7(benchmark):
    replicated = benchmark.pedantic(run_replication, rounds=1, iterations=1)
    report = "\n\n".join(
        format_replicated(replicated, metric)
        for metric in ("mean_wait", "utilization", "slowdown")
    )
    gap_los = replicated.significant_gap("Delayed-LOS", "LOS", "mean_wait")
    gap_easy = replicated.significant_gap("Delayed-LOS", "EASY", "mean_wait")
    report += (
        f"\n\nDelayed-LOS vs LOS wait gap significant at 95%: {gap_los}"
        f"\nDelayed-LOS vs EASY wait gap significant at 95%: {gap_easy}"
    )
    save_report(
        "replication_fig7",
        f"Replication: Figure 7 over seeds {SEEDS}\n\n" + report,
    )

    def sweep_mean(algorithm):
        points = replicated.aggregate(algorithm, "mean_wait")
        return sum(p.mean for p in points) / len(points)

    delayed = sweep_mean("Delayed-LOS")
    assert delayed < sweep_mean("LOS")
    assert delayed < sweep_mean("EASY")
