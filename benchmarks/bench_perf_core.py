"""Core performance benchmark — the repo's tracked perf trajectory.

Unlike the ``bench_fig*``/``bench_table*`` scripts (which reproduce
the *paper's* numbers), this benchmark measures the *simulator's* own
speed on canonical scenarios and records it in ``BENCH_core.json`` at
the repository root, so performance changes are visible across PRs:

- per-scenario engine throughput: wall time and events/sec for
  EASY / LOS / Delayed-LOS (batch workload) and Hybrid-LOS-E
  (heterogeneous elastic workload) at two workload scales,
- pipeline throughput: the same batch of runs executed through
  :func:`repro.experiments.parallel.execute_runs` serially
  (``jobs=1``) and in parallel (all cores), with the resulting
  speedup,
- observability overhead: the largest batch scenario re-timed with
  trace export enabled (``trace_out``), reported as a ratio against
  the untraced wall time (docs/observability.md budgets this at ≤5%
  with tracing *disabled* — telemetry alone — and the traced ratio
  documents the full cost of streaming the JSONL file),
- phase attribution (schema 4): the same scenario re-timed with the
  phase-span profiler on (``spans_out``, docs/performance.md) — the
  per-phase self-time shares let ``repro bench-compare`` name the
  phase behind a wall-time regression, and the spans-over-plain ratio
  tracks the profiler's own ≤5% overhead budget,
- (opt-in, ``--scaling-curve``, schema 5) the scaling curve:
  events/sec of the streaming engine at 10k / 30k / 100k jobs in one
  process, so the scaling *exponent* — not just one point — is
  visible in history.  A flat curve (ratio ~1x between the largest
  and smallest point) is the tentpole property: per-event cost that
  does not grow with total job count (docs/scaling.md),
- (opt-in, ``--scale-tier``) streaming-scale runs: 100k- and
  1M-job synthetic streams plus an archive-shaped SWF replay, each
  executed in a subprocess with ``online=True, retain_records=False``
  so peak RSS measures the O(1)-memory path honestly.  The headline
  number is the RSS ratio of the 10x-larger tier over the smaller —
  flat (~1x) means memory is bounded by the live job set, not the
  workload length (docs/scaling.md).

Usage::

    python -m benchmarks.bench_perf_core            # full (paper scale)
    python -m benchmarks.bench_perf_core --quick    # CI smoke (~seconds)
    python -m benchmarks.bench_perf_core --jobs 4 --output /tmp/b.json
    python -m benchmarks.bench_perf_core --scale-tier   # + million-job tier

Wall times are machine-dependent by nature; compare entries produced
on the same machine.  The run cache is bypassed here — this benchmark
always simulates.

Each CLI run also appends one condensed, schema-versioned line to
``benchmarks/history.jsonl`` (git sha + timestamp + host stamped), the
longitudinal record behind ``repro bench-compare`` — pass
``--no-history`` to skip.  Library calls (``run_bench``) only append
when given an explicit ``history`` path, so tests never pollute the
tracked file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.cache import RunCache
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.parallel import (
    RunSpec,
    execute_runs,
    execute_spec,
    resolve_jobs,
    warm_pool,
)
from repro.workload.generator import GeneratorConfig, Workload
from repro.workload.twostage import TwoStageSizeConfig

#: Where the tracked result lands (repo root).
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: The longitudinal record (this directory); see repro.obs.bench_history.
DEFAULT_HISTORY = Path(__file__).resolve().parent / "history.jsonl"

#: Canonical scenario load (the paper's high-contention regime).
TARGET_LOAD = 0.9

BATCH_ALGORITHMS = ("EASY", "LOS", "Delayed-LOS")
ELASTIC_ALGORITHM = "Hybrid-LOS-E"

#: Policy for the streaming scale tier: EASY keeps per-event cost low
#: so the tier measures the engine + streaming machinery, not DP depth.
SCALE_ALGORITHM = "EASY"
SCALE_SEED = 17
#: Jobs used to calibrate β_arr for the scale tier.  The Lublin
#: arrival model is stationary in the load knob, so one cheap
#: calibration transfers to the 100k/1M streams.
SCALE_CALIBRATION_JOBS = 2000

_NO_CACHE = RunCache.disabled()


def scenario_scales(quick: bool) -> Sequence[int]:
    """The workload sizes benchmarked per algorithm.

    Full mode covers three scales — half, base, and double — so the
    trajectory captures how throughput holds up as queues deepen (the
    regime the DP memoization layer targets), not just the paper-scale
    point.
    """
    if quick:
        base = int(os.environ.get("REPRO_BENCH_JOBS", "50"))
        return (base, 2 * base)
    base = int(os.environ.get("REPRO_BENCH_JOBS", "500"))
    return (max(100, base // 2), base, 2 * base)


def _batch_workload(n_jobs: int, seed: int) -> Workload:
    config = GeneratorConfig(n_jobs=n_jobs, size=TwoStageSizeConfig(p_small=0.5))
    return calibrate_beta_arr(config, TARGET_LOAD, seed=seed).workload


def _hetero_elastic_workload(n_jobs: int, seed: int) -> Workload:
    config = GeneratorConfig(
        n_jobs=n_jobs,
        size=TwoStageSizeConfig(p_small=0.5),
        p_dedicated=0.3,
        p_extend=0.2,
        p_reduce=0.1,
    )
    return calibrate_beta_arr(config, TARGET_LOAD, seed=seed).workload


def _time_spec(spec: RunSpec, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall time and events/sec for one run."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        metrics = execute_spec(spec)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        events = metrics.events_processed
    return {
        "wall_time_s": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Streaming scale tier (--scale-tier)
# ----------------------------------------------------------------------
def scale_tier_sizes(quick: bool) -> Sequence[int]:
    """The two synthetic stream sizes, 10x apart so RSS flatness shows."""
    if quick:
        return (10_000, 100_000)
    return (100_000, 1_000_000)


def _scale_config(n_jobs: int, beta_arr: float) -> GeneratorConfig:
    return GeneratorConfig(
        n_jobs=n_jobs, size=TwoStageSizeConfig(p_small=0.5)
    ).with_beta_arr(beta_arr)


def _write_replay_swf(path: Path, n_jobs: int, beta_arr: float, seed: int) -> None:
    """Stream-write a synthetic workload as an archive-shaped SWF log.

    One job at a time, generator to file — the log is produced without
    ever materializing the workload, same as it will be consumed.
    """
    from repro.workload.streaming import SyntheticWorkloadStream
    from repro.workload.swf import SWFRecord

    stream = SyntheticWorkloadStream(_scale_config(n_jobs, beta_arr), seed=seed).stream()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"; MaxProcs: {stream.machine_size}\n")
        for job in stream:
            fh.write(SWFRecord.from_job(job).to_line() + "\n")


def _calibrate_scale_beta() -> "tuple[float, float]":
    """``(beta_arr, achieved_load)`` shared by the scale tier and curve."""
    calibration = calibrate_beta_arr(
        GeneratorConfig(
            n_jobs=SCALE_CALIBRATION_JOBS, size=TwoStageSizeConfig(p_small=0.5)
        ),
        TARGET_LOAD,
        seed=SCALE_SEED,
    )
    return calibration.beta_arr, calibration.achieved_load


# ----------------------------------------------------------------------
# Scaling curve (--scaling-curve, schema 5)
# ----------------------------------------------------------------------
def scaling_curve_sizes(quick: bool) -> Sequence[int]:
    """Three sizes a decade apart (ish), so the exponent is estimable."""
    if quick:
        return (2_000, 6_000, 20_000)
    return (10_000, 30_000, 100_000)


def run_scaling_curve(quick: bool = False) -> Dict:
    """Measure streaming events/sec at three workload sizes.

    Unlike the subprocess-isolated scale tier (which measures RSS),
    the curve runs in-process — it only needs wall time — and exists
    to make the scaling *shape* a tracked quantity:

    - ``throughput_ratio_smallest_over_largest``: events/sec at the
      smallest size over the largest.  ~1.0 means per-event cost is
      flat in total job count; the pre-fix engine scored ~8x here.
    - ``wall_time_exponent``: the slope of log(wall) vs log(events)
      between the endpoints — 1.0 is linear, >1 superlinear.

    ``repro bench-compare`` gates each point's events/sec against the
    best same-host history entry, so a reintroduced scaling cliff
    fails CI at the size where it bites, not just at the tracked
    500-job rows.
    """
    from repro.core.registry import make_scheduler
    from repro.experiments.runner import SimulationRunner
    from repro.workload.streaming import SyntheticWorkloadStream

    beta_arr, achieved_load = _calibrate_scale_beta()
    points: List[Dict] = []
    for n_jobs in scaling_curve_sizes(quick):
        stream = SyntheticWorkloadStream(
            _scale_config(n_jobs, beta_arr), seed=SCALE_SEED
        ).stream()
        runner = SimulationRunner(
            stream,
            make_scheduler(SCALE_ALGORITHM),
            online=True,
            retain_records=False,
        )
        started = time.perf_counter()
        metrics = runner.run()
        elapsed = time.perf_counter() - started
        points.append({
            "n_jobs": n_jobs,
            "events": metrics.events_processed,
            "wall_time_s": round(elapsed, 6),
            "events_per_sec": (
                round(metrics.events_processed / elapsed, 1) if elapsed > 0 else 0.0
            ),
        })

    small, large = points[0], points[-1]
    ratio = (
        round(small["events_per_sec"] / large["events_per_sec"], 3)
        if large["events_per_sec"] > 0
        else 0.0
    )
    exponent = 0.0
    if (
        small["wall_time_s"] > 0
        and large["wall_time_s"] > 0
        and large["events"] > small["events"] > 0
    ):
        import math

        exponent = round(
            math.log(large["wall_time_s"] / small["wall_time_s"])
            / math.log(large["events"] / small["events"]),
            3,
        )
    return {
        "algorithm": SCALE_ALGORITHM,
        "beta_arr": round(beta_arr, 6),
        "calibrated_load": round(achieved_load, 4),
        "points": points,
        "throughput_ratio_smallest_over_largest": ratio,
        "wall_time_exponent": exponent,
    }


def _scale_child(payload: str) -> int:
    """Subprocess entry: run one streaming scenario, print one JSON line.

    Runs in a fresh interpreter so ``ru_maxrss`` reflects this scenario
    alone (the parent's own allocations never inflate it).  The payload
    is a JSON object: ``kind`` ("synthetic" | "swf") plus its
    parameters, ``algorithm``, and an optional ``rlimit_mb`` hard
    address-space cap (used by the CI memory-budget smoke).
    """
    import resource

    params = json.loads(payload)
    rlimit_mb = params.get("rlimit_mb")
    if rlimit_mb:
        limit = int(rlimit_mb) * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    from repro.core.registry import make_scheduler
    from repro.experiments.runner import SimulationRunner
    from repro.workload.streaming import SyntheticWorkloadStream, stream_swf_workload

    if params["kind"] == "synthetic":
        config = _scale_config(int(params["n_jobs"]), float(params["beta_arr"]))
        stream = SyntheticWorkloadStream(config, seed=int(params["seed"])).stream()
    elif params["kind"] == "swf":
        stream = stream_swf_workload(
            params["path"], machine_size=params.get("machine_size")
        )
    else:  # pragma: no cover - protocol misuse
        raise ValueError(f"unknown scale scenario kind {params['kind']!r}")

    runner = SimulationRunner(
        stream,
        make_scheduler(params["algorithm"]),
        online=True,
        retain_records=False,
    )
    started = time.perf_counter()
    metrics = runner.run()
    elapsed = time.perf_counter() - started
    # Linux reports ru_maxrss in KiB.
    peak_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    online = metrics.online
    print(json.dumps({
        "events": metrics.events_processed,
        "wall_time_s": round(elapsed, 6),
        "events_per_sec": (
            round(metrics.events_processed / elapsed, 1) if elapsed > 0 else 0.0
        ),
        "n_jobs_done": online.n_jobs if online is not None else 0,
        "mean_wait": round(online.mean_wait, 6) if online is not None else 0.0,
        "utilization": round(metrics.utilization, 6),
        "offered_load": round(metrics.offered_load, 4),
        "peak_rss_kb": peak_kb,
    }))
    return 0


def _run_scale_child(params: Dict) -> Dict:
    """Launch :func:`_scale_child` in a subprocess and parse its line."""
    import subprocess

    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    pythonpath = [str(repo_root), str(repo_root / "src")]
    if env.get("PYTHONPATH"):
        pythonpath.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(pythonpath)
    proc = subprocess.run(
        [sys.executable, "-m", "benchmarks.bench_perf_core",
         "--scale-child", json.dumps(params)],
        capture_output=True, text=True, env=env, cwd=str(repo_root),
    )
    if proc.returncode != 0:
        detail = proc.stderr.strip() or proc.stdout.strip()
        raise RuntimeError(f"scale child failed ({params.get('kind')}): {detail}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_scale_tier(quick: bool = False, rlimit_mb: Optional[int] = None) -> Dict:
    """Run the streaming scale tier and return its document section.

    Calibrates β_arr once at a small scale, then streams each tier in
    its own subprocess.  The archive replay stream-writes the smaller
    tier to a temporary SWF file and streams it back through the lazy
    reader, exercising the file-ingestion path at scale.
    """
    beta_arr, achieved_load = _calibrate_scale_beta()

    scenarios: List[Dict] = []
    for n_jobs in scale_tier_sizes(quick):
        params: Dict = {
            "kind": "synthetic", "n_jobs": n_jobs, "beta_arr": beta_arr,
            "seed": SCALE_SEED, "algorithm": SCALE_ALGORITHM,
        }
        if rlimit_mb:
            params["rlimit_mb"] = rlimit_mb
        result = _run_scale_child(params)
        scenarios.append({
            "scenario": "synthetic-stream", "algorithm": SCALE_ALGORITHM,
            "n_jobs": n_jobs, **result,
        })

    replay_jobs = scale_tier_sizes(quick)[0]
    with tempfile.TemporaryDirectory() as tmp:
        swf_path = Path(tmp) / "replay.swf"
        _write_replay_swf(swf_path, replay_jobs, beta_arr, seed=SCALE_SEED)
        params = {
            "kind": "swf", "path": str(swf_path), "machine_size": 320,
            "algorithm": SCALE_ALGORITHM,
        }
        if rlimit_mb:
            params["rlimit_mb"] = rlimit_mb
        result = _run_scale_child(params)
    scenarios.append({
        "scenario": "swf-replay", "algorithm": SCALE_ALGORITHM,
        "n_jobs": replay_jobs, **result,
    })

    small, large = scenarios[0], scenarios[1]
    rss_ratio = (
        round(large["peak_rss_kb"] / small["peak_rss_kb"], 3)
        if small["peak_rss_kb"] > 0
        else 0.0
    )
    return {
        "algorithm": SCALE_ALGORITHM,
        "tiers": list(scale_tier_sizes(quick)),
        "beta_arr": round(beta_arr, 6),
        "calibrated_load": round(achieved_load, 4),
        "scenarios": scenarios,
        # The acceptance metric: peak RSS of the 10x-larger synthetic
        # tier over the smaller.  ~1.0 = streaming memory is flat.
        "peak_rss_ratio_large_over_small": rss_ratio,
    }


def run_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    output: Optional[Path] = None,
    history: Optional[Path] = None,
    scale_tier: bool = False,
    scaling_curve: bool = False,
) -> Dict:
    """Run the full benchmark and write/return the JSON document.

    When ``history`` is given, a condensed entry is also appended
    there (see :mod:`repro.obs.bench_history`); None (the default)
    appends nothing.
    """
    scales = scenario_scales(quick)
    workers = resolve_jobs(jobs)
    # Scenario wall times are tens of milliseconds, where scheduler
    # jitter dominates; best-of-5 estimates the interference-free
    # minimum the history comparisons need.
    repeats = 1 if quick else 5

    scenarios: List[Dict] = []
    for n_jobs in scales:
        batch = _batch_workload(n_jobs, seed=11)
        hetero = _hetero_elastic_workload(n_jobs, seed=13)
        for algorithm in BATCH_ALGORITHMS:
            entry = {"algorithm": algorithm, "n_jobs": n_jobs,
                     "offered_load": round(batch.offered_load(), 4)}
            entry.update(_time_spec(RunSpec(batch, algorithm), repeats))
            scenarios.append(entry)
        entry = {"algorithm": ELASTIC_ALGORITHM, "n_jobs": n_jobs,
                 "offered_load": round(hetero.offered_load(), 4)}
        entry.update(_time_spec(RunSpec(hetero, ELASTIC_ALGORITHM), repeats))
        scenarios.append(entry)

    # Pipeline shootout: the same batch of independent runs, dispatched
    # serially vs. over the pool.  Two seeds widen the batch beyond the
    # algorithm count so there is enough fan-out to measure.  Pinned to
    # the base scale (not the new double-scale point) so entries stay
    # comparable across the recorded history.
    pipeline_scale = scales[1] if len(scales) > 2 else scales[-1]
    pipeline_specs = [
        RunSpec(_batch_workload(pipeline_scale, seed=seed), algorithm)
        for seed in (11, 29)
        for algorithm in BATCH_ALGORITHMS
    ]
    started = time.perf_counter()
    serial_results = execute_runs(pipeline_specs, jobs=1, cache=_NO_CACHE)
    serial_s = time.perf_counter() - started
    # Spin the worker pool up *before* the timed parallel section and
    # report the fork cost as its own field: the speedup then measures
    # dispatch throughput, and pool_startup_s shows what the warm pool
    # saves every pipeline call after the first.
    pool_startup_s = (
        warm_pool(min(workers, len(pipeline_specs))) if workers > 1 else 0.0
    )
    started = time.perf_counter()
    parallel_results = execute_runs(pipeline_specs, jobs=workers, cache=_NO_CACHE)
    parallel_s = time.perf_counter() - started
    identical = all(
        s == p for s, p in zip(serial_results, parallel_results)
    )

    # Observability overhead: re-time the heaviest batch scenario with
    # trace export on.  Metrics must be identical (observe-only rule).
    obs_workload = _batch_workload(pipeline_scale, seed=11)
    obs_algorithm = BATCH_ALGORITHMS[-1]
    plain = _time_spec(RunSpec(obs_workload, obs_algorithm), repeats)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "bench.jsonl")
        traced = _time_spec(
            RunSpec(obs_workload, obs_algorithm, trace_out=trace_path), repeats
        )
        trace_bytes = Path(trace_path).stat().st_size
    observability = {
        "algorithm": obs_algorithm,
        "n_jobs": pipeline_scale,
        "untraced_wall_time_s": plain["wall_time_s"],
        "traced_wall_time_s": traced["wall_time_s"],
        "traced_over_untraced": (
            round(traced["wall_time_s"] / plain["wall_time_s"], 3)
            if plain["wall_time_s"] > 0
            else 0.0
        ),
        "trace_bytes": trace_bytes,
    }

    # Phase attribution (schema 4): the same scenario once more with
    # the span profiler on (docs/performance.md).  The per-phase self
    # times let ``repro bench-compare`` name the phase a regression
    # lives in; the spans_over_plain ratio documents the profiler's
    # own overhead against the ≤5% budget.  Aggregate-only mode (no
    # Chrome export) — the mode the budget is defined for; the
    # timeline/export path is the documented expensive opt-in.
    spans_spec = RunSpec(obs_workload, obs_algorithm, spans=True)
    spans_best = float("inf")
    snapshot = None
    for _ in range(repeats):
        started = time.perf_counter()
        spans_metrics = execute_spec(spans_spec)
        spans_best = min(spans_best, time.perf_counter() - started)
        snapshot = spans_metrics.telemetry
    phase_rows: List[Dict] = []
    if snapshot is not None:
        wall = snapshot.timers.get("run_wall_s", 0.0)
        for name in sorted(snapshot.timers):
            if name.startswith("span_") and name.endswith("_self_s"):
                phase = name[len("span_"):-len("_self_s")]
                self_s = snapshot.timers[name]
                phase_rows.append({
                    "phase": phase,
                    "count": snapshot.counters.get(f"span_{phase}", 0),
                    "self_s": round(self_s, 6),
                    "share": round(self_s / wall, 4) if wall > 0 else 0.0,
                })
        phase_rows.sort(key=lambda row: row["self_s"], reverse=True)
    phases = {
        "algorithm": obs_algorithm,
        "n_jobs": pipeline_scale,
        "plain_wall_time_s": plain["wall_time_s"],
        "spans_wall_time_s": round(spans_best, 6),
        "spans_over_plain": (
            round(spans_best / plain["wall_time_s"], 3)
            if plain["wall_time_s"] > 0
            else 0.0
        ),
        "phases": phase_rows,
    }

    document = {
        "schema": 5,
        "benchmark": "benchmarks.bench_perf_core",
        "quick": quick,
        "workers": workers,
        "target_load": TARGET_LOAD,
        "scales": list(scales),
        "scenarios": scenarios,
        "pipeline": {
            "runs": len(pipeline_specs),
            "n_jobs_per_run": pipeline_scale,
            "serial_wall_time_s": round(serial_s, 6),
            "pool_startup_s": round(pool_startup_s, 6),
            "parallel_wall_time_s": round(parallel_s, 6),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else 0.0,
            "parallel_equals_serial": identical,
        },
        "observability": observability,
        "phases": phases,
    }
    if scaling_curve:
        document["scaling_curve"] = run_scaling_curve(quick)
    if scale_tier:
        document["scale"] = run_scale_tier(quick)

    target = Path(output) if output is not None else DEFAULT_OUTPUT
    target.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    if history is not None:
        from repro.obs.bench_history import append_entry

        append_entry(document, history)
    return document


def _print_summary(document: Dict) -> None:
    print(f"perf core benchmark (quick={document['quick']}, "
          f"workers={document['workers']})")
    print(f"{'algorithm':<14} {'n_jobs':>7} {'wall (s)':>10} {'events/s':>12}")
    for entry in document["scenarios"]:
        print(
            f"{entry['algorithm']:<14} {entry['n_jobs']:>7} "
            f"{entry['wall_time_s']:>10.4f} {entry['events_per_sec']:>12.0f}"
        )
    pipe = document["pipeline"]
    print(
        f"pipeline: {pipe['runs']} runs x {pipe['n_jobs_per_run']} jobs — "
        f"serial {pipe['serial_wall_time_s']:.3f}s, "
        f"parallel {pipe['parallel_wall_time_s']:.3f}s "
        f"+ {pipe.get('pool_startup_s', 0.0):.3f}s pool spin-up "
        f"(speedup {pipe['speedup']:.2f}x, "
        f"identical={pipe['parallel_equals_serial']})"
    )
    obs = document["observability"]
    print(
        f"observability: {obs['algorithm']} x {obs['n_jobs']} jobs — "
        f"untraced {obs['untraced_wall_time_s']:.4f}s, "
        f"traced {obs['traced_wall_time_s']:.4f}s "
        f"({obs['traced_over_untraced']:.2f}x, "
        f"{obs['trace_bytes']} trace bytes)"
    )
    phases = document.get("phases")
    if phases:
        hot = ", ".join(
            f"{row['phase']} {row['share']:.0%}" for row in phases["phases"][:3]
        )
        print(
            f"phases: {phases['algorithm']} x {phases['n_jobs']} jobs — "
            f"spans {phases['spans_wall_time_s']:.4f}s "
            f"({phases['spans_over_plain']:.2f}x plain; hottest: {hot})"
        )
    curve = document.get("scaling_curve")
    if curve:
        print(f"scaling curve ({curve['algorithm']}, streaming, in-process):")
        print(f"{'n_jobs':>9} {'wall (s)':>10} {'events/s':>12}")
        for point in curve["points"]:
            print(
                f"{point['n_jobs']:>9} {point['wall_time_s']:>10.2f} "
                f"{point['events_per_sec']:>12.0f}"
            )
        print(
            f"scaling curve: throughput ratio (smallest over largest) = "
            f"{curve['throughput_ratio_smallest_over_largest']:.2f}x, "
            f"wall-time exponent = {curve['wall_time_exponent']:.2f}"
        )
    scale = document.get("scale")
    if scale:
        print(f"scale tier ({scale['algorithm']}, streaming, online metrics):")
        print(f"{'scenario':<18} {'n_jobs':>9} {'wall (s)':>10} "
              f"{'events/s':>12} {'peak RSS (MiB)':>15}")
        for entry in scale["scenarios"]:
            print(
                f"{entry['scenario']:<18} {entry['n_jobs']:>9} "
                f"{entry['wall_time_s']:>10.2f} {entry['events_per_sec']:>12.0f} "
                f"{entry['peak_rss_kb'] / 1024:>15.1f}"
            )
        print(
            f"scale: peak RSS ratio ({scale['tiers'][1]} vs {scale['tiers'][0]} "
            f"jobs) = {scale['peak_rss_ratio_large_over_small']:.2f}x"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_perf_core",
        description="Measure simulator throughput and pipeline speedup.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: small scales, single repetition (~seconds)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the pipeline section (default: "
        "REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help=f"result path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--history", type=str, default=str(DEFAULT_HISTORY),
        help=f"append a condensed entry to this JSONL history "
        f"(default: {DEFAULT_HISTORY}; compare with 'repro bench-compare')",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip the history append (snapshot JSON only)",
    )
    parser.add_argument(
        "--scale-tier", action="store_true",
        help="also run the streaming scale tier (100k + 1M jobs "
        "full, 10k + 100k quick) with peak-RSS measurement",
    )
    parser.add_argument(
        "--scaling-curve", action="store_true",
        help="also record the streaming scaling curve (events/sec at "
        "10k/30k/100k jobs full, 2k/6k/20k quick); bench-compare gates "
        "each point against its best same-host baseline",
    )
    parser.add_argument(
        "--scale-child", type=str, default=None, help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)
    if args.scale_child is not None:
        return _scale_child(args.scale_child)
    document = run_bench(
        quick=args.quick,
        jobs=args.jobs,
        output=Path(args.output) if args.output else None,
        history=None if args.no_history else Path(args.history),
        scale_tier=args.scale_tier,
        scaling_curve=args.scaling_curve,
    )
    _print_summary(document)
    if not args.no_history:
        print(f"history: appended to {args.history}")
    pipeline = document["pipeline"]
    if pipeline["speedup"] < 1.0 and document["workers"] > 1:
        # Advisory, never fatal: a sub-1x speedup on a loaded or
        # few-core box is an environment fact, not a correctness bug.
        print(
            f"WARNING: pipeline speedup {pipeline['speedup']:.2f}x < 1.0 "
            f"with {document['workers']} workers — parallel dispatch is "
            "not paying for itself on this machine",
            file=sys.stderr,
        )
    if not pipeline["parallel_equals_serial"]:
        print("ERROR: parallel metrics diverged from serial metrics", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
