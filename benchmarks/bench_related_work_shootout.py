"""Related-work shootout — §II-B's pre-backfilling baselines.

The paper's survey makes three testable claims about the classic
queue-reordering policies:

- smallest-job-first "performance is poor because jobs that require
  few resources do not necessarily terminate quickly and cause large
  fragmentation" [10],
- largest-job-first "may be expected to cause less fragmentation than
  smallest-job-first" but "large jobs do not necessarily require long
  execution times" [11],
- "both previously mentioned scheduling mechanisms do not necessarily
  perform better than a straightforward FCFS" [5], [13],
- backfilling (EASY) and DP packing then improve on all of them.

This bench runs FCFS, SJF, SMALLEST, LJF, CONSERVATIVE, EASY and
Delayed-LOS on one calibrated workload and reports the full metric
set.  Asserted: the modern policies (EASY, Delayed-LOS) beat plain
FCFS on waiting time, and no reordering baseline beats Delayed-LOS.
"""

from __future__ import annotations

from benchmarks.common import BENCH_JOBS, save_report
from repro.experiments.calibrate import calibrate_beta_arr
from repro.experiments.sweep import run_algorithms
from repro.metrics.report import format_table
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

ALGORITHMS = ("FCFS", "SJF", "SMALLEST", "LJF", "CONSERVATIVE", "EASY", "Delayed-LOS")


def run_shootout():
    config = GeneratorConfig(n_jobs=BENCH_JOBS, size=TwoStageSizeConfig(p_small=0.5))
    workload = calibrate_beta_arr(config, 0.9, seed=141).workload
    results = run_algorithms(workload, ALGORITHMS, max_skip_count=7)
    rows = [
        [
            name,
            round(m.utilization, 4),
            round(m.mean_wait, 1),
            round(m.slowdown, 3),
            round(max(r.wait for r in m.records), 0),
        ]
        for name, m in results.items()
    ]
    report = format_table(
        ["scheduler", "utilization", "mean wait (s)", "slowdown", "max wait (s)"], rows
    )
    return results, report


def test_related_work_shootout(benchmark):
    results, report = benchmark.pedantic(run_shootout, rounds=1, iterations=1)
    save_report(
        "related_work_shootout",
        "Related-work shootout (§II-B baselines; Load=0.9, P_S=0.5)\n\n" + report,
    )
    waits = {name: m.mean_wait for name, m in results.items()}
    max_waits = {
        name: max(r.wait for r in m.records) for name, m in results.items()
    }
    # Backfilling-era policies improve on plain FCFS.
    assert waits["EASY"] <= waits["FCFS"]
    assert waits["Delayed-LOS"] <= waits["FCFS"]
    # The fragmentation-prone reorderers do not beat DP packing on
    # mean wait (§II-B critique of [10], [11]).
    for name in ("SMALLEST", "LJF"):
        assert waits["Delayed-LOS"] <= waits[name] * 1.02, name
    # SJF may win on *mean* wait — the textbook result — but only by
    # starving long jobs: its worst-case wait explodes relative to the
    # reservation-protected policies.
    assert max_waits["SJF"] > 1.5 * max_waits["Delayed-LOS"]
    assert max_waits["SMALLEST"] > 1.5 * max_waits["EASY"]
    # Everyone completed the full workload (no permanent starvation).
    assert all(m.n_jobs == BENCH_JOBS for m in results.values())
