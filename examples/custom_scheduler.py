#!/usr/bin/env python3
"""Plugging a custom scheduling policy into the framework.

The scheduler interface is three small pieces — read a
:class:`SchedulerContext` snapshot, return a :class:`CycleDecision` —
so new policies drop straight into the simulation runner and can be
compared against the paper's algorithms on identical workloads.

This example implements *SJF-backfill*: EASY's structure, but the
backfill scan prefers the shortest candidate rather than the first
fitting one (shortest-job-first, §II-B of the paper's related work).

Run:
    python examples/custom_scheduler.py
"""

import numpy as np

from repro import CWFWorkloadGenerator, GeneratorConfig, run_algorithms
from repro.core import CycleDecision, Scheduler, SchedulerContext
from repro.core.freeze import batch_head_freeze
from repro.experiments.runner import SimulationRunner
from repro.metrics.report import format_table


class SJFBackfill(Scheduler):
    """EASY-style backfill that picks the *shortest* eligible job.

    The head-job guarantee is preserved: backfill candidates must
    still terminate by the head's shadow time or fit the extra
    capacity; among the eligible candidates, the shortest estimated
    runtime wins (instead of queue order).
    """

    name = "SJF-BACKFILL"

    def cycle(self, ctx: SchedulerContext) -> CycleDecision:
        queue = ctx.batch_queue.jobs()
        if not queue:
            return CycleDecision.nothing()
        m = ctx.free
        head = queue[0]
        if head.num <= m:
            return CycleDecision(starts=[head])
        if len(queue) == 1 or m <= 0:
            return CycleDecision.nothing()

        shadow = batch_head_freeze(ctx, head)
        eligible = [
            job
            for job in queue[1:]
            if job.num <= m
            and (ctx.now + job.estimate <= shadow.fret or job.num <= shadow.frec)
        ]
        if not eligible:
            return CycleDecision.nothing()
        shortest = min(eligible, key=lambda job: (job.estimate, job.submit))
        return CycleDecision(starts=[shortest])


def main() -> None:
    config = GeneratorConfig(n_jobs=400)
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(21))
    print(f"workload: {len(workload)} jobs, load {workload.offered_load():.3f}\n")

    # Standard algorithms through the registry...
    results = run_algorithms(workload, ("EASY", "Delayed-LOS"), max_skip_count=7)
    # ...and the custom policy through the same runner.
    results["SJF-BACKFILL"] = SimulationRunner(workload, SJFBackfill()).run()

    rows = [
        [name, round(m.utilization, 4), round(m.mean_wait, 1), round(m.slowdown, 3)]
        for name, m in results.items()
    ]
    print(format_table(["algorithm", "utilization", "mean wait (s)", "slowdown"], rows))
    print(
        "\nNote how shortest-job-first backfilling trades queue fairness "
        "for wait time — and still may lose to DP packing (Delayed-LOS)."
    )


if __name__ == "__main__":
    main()
