#!/usr/bin/env python3
"""Runtime elasticity: users extend and shrink jobs on-the-fly.

Demonstrates the paper's core cloud primitive (§III-C): Elastic
Control Commands (ECCs) that change a job's execution-time requirement
*after submission* — even while it runs.  The example:

1. builds an elastic workload (P_E = 0.2 extensions, P_R = 0.1
   reductions, as in §IV-D),
2. shows a single job's kill-by time moving under an ET command,
3. compares the elastic algorithm variants (EASY-E, LOS-E,
   Delayed-LOS-E), which append the FCFS ECC processor,
4. shows what a non-elastic scheduler does with the same workload
   (drops the commands).

Run:
    python examples/elastic_cloud.py
"""

import numpy as np

from repro import (
    CWFWorkloadGenerator,
    ECC,
    ECCKind,
    GeneratorConfig,
    Job,
    Workload,
    make_scheduler,
    run_algorithms,
    simulate,
)
from repro.metrics.report import format_table


def single_job_demo() -> None:
    """One job, one ET command: watch the kill-by time move."""
    job = Job(job_id=1, submit=0.0, num=320, estimate=600.0)
    extension = ECC(
        job_id=1, issue_time=300.0, kind=ECCKind.EXTEND_TIME, amount=300.0
    )
    workload = Workload(
        jobs=[job], eccs=[extension], machine_size=320, granularity=32
    )

    plain = simulate(workload, make_scheduler("EASY"))
    elastic = simulate(workload, make_scheduler("EASY-E"))
    print("single-job demo (600s job, +300s ET issued at t=300):")
    print(f"  EASY   (drops the ECC): finished at t={plain.records[0].finish:.0f}")
    print(f"  EASY-E (applies it):    finished at t={elastic.records[0].finish:.0f}")
    print()


def fleet_comparison() -> None:
    """Paper-style elastic workload across the -E algorithms."""
    config = GeneratorConfig(n_jobs=400, p_extend=0.2, p_reduce=0.1)
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(11))
    print(
        f"elastic workload: {len(workload)} jobs, {len(workload.eccs)} ECCs, "
        f"offered load {workload.offered_load():.3f}"
    )

    results = run_algorithms(
        workload, ("EASY-E", "LOS-E", "Delayed-LOS-E"), max_skip_count=7
    )
    rows = []
    for name, metrics in results.items():
        applied = sum(
            count
            for outcome, count in metrics.ecc_stats.items()
            if outcome.startswith("applied") or outcome == "terminated-job"
        )
        rows.append(
            [
                name,
                round(metrics.utilization, 4),
                round(metrics.mean_wait, 1),
                round(metrics.slowdown, 3),
                applied,
            ]
        )
    print()
    print(
        format_table(
            ["algorithm", "utilization", "mean wait (s)", "slowdown", "ECCs applied"],
            rows,
        )
    )


def main() -> None:
    single_job_demo()
    fleet_comparison()


if __name__ == "__main__":
    main()
