#!/usr/bin/env python3
"""Space continuity: what the flat BlueGene model hides.

The paper simulates BlueGene/P as a flat processor pool, but real BG
partitions must be contiguous (its own §VI future-work discussion).
This example:

1. schedules a workload on the paper's flat machine with Delayed-LOS,
2. replays the resulting schedule onto a 1-D contiguous-partition
   machine, first-fit,
3. shows where external fragmentation would have broken the schedule,
   and how Krevat-style migration (compaction) repairs it,
4. renders the machine occupancy timeline for visual inspection.

Run:
    python examples/contiguity_study.py
"""

import numpy as np

from repro import (
    CWFWorkloadGenerator,
    GeneratorConfig,
    make_scheduler,
    render_timeline,
    simulate,
)
from repro.cluster.partition import FragmentationError, PartitionedMachine


def replay(metrics, machine_size, granularity, migrate):
    """Replay a finished schedule under the contiguity constraint."""
    events = []
    for record in metrics.records:
        events.append((record.start, 1, "start", record))
        events.append((record.finish, 0, "finish", record))
    events.sort(key=lambda e: (e[0], e[1], e[3].job_id))

    machine = PartitionedMachine(total=machine_size, granularity=granularity)
    failures, migrations = [], 0
    for time, _, kind, record in events:
        if kind == "finish":
            if machine.span_of(record.job_id) is not None:
                machine.release(record.job_id)
            continue
        try:
            machine.allocate(record.job_id, record.num)
        except FragmentationError:
            if migrate:
                migrations += machine.compact()
                machine.allocate(record.job_id, record.num)
            else:
                failures.append((time, record.job_id, record.num))
    return failures, migrations


def main() -> None:
    config = GeneratorConfig(n_jobs=300)
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(61))
    metrics = simulate(workload, make_scheduler("Delayed-LOS", max_skip_count=7))
    print(
        f"flat-machine schedule: {metrics.n_jobs} jobs, "
        f"utilization {metrics.utilization:.3f}, mean wait {metrics.mean_wait:.0f}s\n"
    )

    failures, _ = replay(metrics, workload.machine_size, workload.granularity, migrate=False)
    print(
        f"contiguous replay WITHOUT migration: {len(failures)} allocations "
        f"({len(failures) / metrics.n_jobs:.1%}) blocked by fragmentation"
    )
    for time, job_id, num in failures[:5]:
        print(f"  t={time:>8.0f}s  job {job_id} ({num} procs) had no contiguous run")
    if len(failures) > 5:
        print(f"  ... and {len(failures) - 5} more")

    rescued, migrations = replay(
        metrics, workload.machine_size, workload.granularity, migrate=True
    )
    print(
        f"\ncontiguous replay WITH migration: {len(rescued)} failures, "
        f"{migrations} job migrations performed (Krevat et al. [8]'s result: "
        "migration recovers the flat model's schedule)"
    )

    print("\nmachine occupancy (first 30 jobs):")
    print(render_timeline(metrics.records[:30], workload.machine_size, max_rows=30))


if __name__ == "__main__":
    main()
