#!/usr/bin/env python3
"""Mapping your workload regime: a (P_S × Load) parameter study.

The paper's practical takeaway is regime-dependent: DP packing
(Delayed-LOS) wins where large jobs dominate; EASY catches up where
small jobs abound (Figure 8).  Before adopting a policy you want this
map for *your* job mix — this example sweeps a grid, prints which
algorithm wins each cell, and writes the long-form results to CSV for
further analysis.

Run:
    python examples/parameter_study.py [grid.csv]
"""

import sys

from repro.experiments.grid import GridSpec, run_grid
from repro.metrics.report import format_table

P_SMALL = (0.1, 0.3, 0.5, 0.7, 0.9)
LOADS = (0.7, 0.9)


def main() -> None:
    spec = GridSpec(
        p_small=P_SMALL,
        p_dedicated=(0.0,),
        loads=LOADS,
        cs_values=(7,),
        algorithms=("EASY", "LOS", "Delayed-LOS", "ADAPTIVE"),
        n_jobs=300,
        seed=2012,
    )
    print(f"running {len(spec.cells())} cells x {len(spec.algorithms)} algorithms ...")
    result = run_grid(spec)

    # Winner map: one row per P_S, one column per load.
    rows = []
    for p_small in P_SMALL:
        row = [p_small]
        for load in LOADS:
            row.append(result.best_algorithm(p_small, 0.0, load))
        rows.append(row)
    print()
    print("lowest mean waiting time per cell:")
    print(format_table(["P_S"] + [f"Load={load}" for load in LOADS], rows))

    if len(sys.argv) > 1:
        result.to_csv(sys.argv[1])
        print(f"\nwrote {sys.argv[1]} ({len(result.rows)} rows)")
    print(
        "\nReading: at low P_S (large jobs) the DP packers win; at high "
        "P_S EASY is competitive — the regime map behind the paper's "
        "Figure 8 and the ADAPTIVE policy."
    )


if __name__ == "__main__":
    main()
