#!/usr/bin/env python3
"""Quickstart: generate a workload, compare three schedulers.

Generates a 500-job batch workload with the paper's BlueGene/P
two-stage size model, calibrates it to offered load 0.9, and compares
EASY backfill, LOS and Delayed-LOS on mean utilization, waiting time
and slowdown.

Run:
    python examples/quickstart.py
"""

from repro import GeneratorConfig, calibrate_beta_arr, run_algorithms
from repro.metrics.report import format_table


def main() -> None:
    # The paper's setup: M=320 processors in 32-processor psets,
    # N_J=500 jobs, P_S=0.5 (half small, half large jobs).
    config = GeneratorConfig(n_jobs=500)

    # Calibrate the arrival-rate knob (beta_arr) to offered load 0.9,
    # exactly how the paper sweeps its x-axes.
    calibration = calibrate_beta_arr(config, target_load=0.9, seed=42)
    workload = calibration.workload
    print(
        f"workload: {len(workload)} jobs, offered load "
        f"{workload.offered_load():.3f} (beta_arr={calibration.beta_arr:.4f})"
    )

    # Run all three batch algorithms on the *same* workload.
    results = run_algorithms(
        workload,
        ("EASY", "LOS", "Delayed-LOS"),
        max_skip_count=7,  # the paper's tuned C_s for P_S=0.5
    )

    rows = [
        [
            name,
            round(m.utilization, 4),
            round(m.mean_wait, 1),
            round(m.slowdown, 3),
            round(m.makespan / 3600, 2),
        ]
        for name, m in results.items()
    ]
    print()
    print(
        format_table(
            ["algorithm", "mean utilization", "mean wait (s)", "slowdown", "makespan (h)"],
            rows,
        )
    )

    best = min(results, key=lambda name: results[name].mean_wait)
    print(f"\nlowest mean waiting time: {best}")


if __name__ == "__main__":
    main()
