#!/usr/bin/env python3
"""One-command reproduction of the paper's evaluation section.

Regenerates every figure (1, 5-11) and table (IV-VII) of the paper,
prints the series with ASCII plots, and writes text reports to
``reproduction_output/``.  The same experiments run under
pytest-benchmark in ``benchmarks/`` (with directional assertions);
this script is the interactive front-end.

Run:
    python examples/paper_reproduction.py            # paper scale (500 jobs/point)
    python examples/paper_reproduction.py --jobs 100  # quick pass
"""

import argparse
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.tables import (
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    PAPER_TABLE_VII,
    improvement_table,
)
from repro.metrics.report import format_comparison_table, format_metrics_table


def render_sweep(sweep, title):
    parts = [f"== {title} =="]
    parts.append(
        format_metrics_table(
            sweep.sweep_label, sweep.sweep_values, sweep.rows(),
            metrics=("utilization", "mean_wait"),
        )
    )
    for metric in ("utilization", "mean_wait"):
        series = {name: sweep.metric_series(name, metric) for name in sweep.series}
        parts.append(
            ascii_plot(sweep.sweep_values, series, title=f"{metric} vs {sweep.sweep_label}", height=10)
        )
    return "\n\n".join(parts)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=500, help="jobs per plotted point")
    parser.add_argument(
        "--output", type=str, default="reproduction_output", help="report directory"
    )
    args = parser.parse_args()
    out = Path(args.output)
    out.mkdir(exist_ok=True)
    n = args.jobs
    started = time.perf_counter()

    reports: dict[str, str] = {}

    print("Figure 1 (SDSC validation) ...")
    reports["fig1"] = render_sweep(figures.figure1(n_jobs=n), "Figure 1: EASY vs LOS (SDSC-like)")

    print("Figures 5-6 (C_s sweeps) ...")
    reports["fig5"] = render_sweep(figures.figure5(n_jobs=n), "Figure 5: C_s sweep, P_S=0.5")
    reports["fig6"] = render_sweep(figures.figure6(n_jobs=n), "Figure 6: C_s sweep, P_S=0.8")

    print("Figures 7-8 (batch load sweeps) ...")
    fig7 = figures.figure7(n_jobs=n)
    reports["fig7"] = render_sweep(fig7, "Figure 7: Load sweep, P_S=0.2")
    for label, sweep in figures.figure8(n_jobs=n).items():
        reports[f"fig8_{label}"] = render_sweep(sweep, f"Figure 8: Load sweep, {label}")

    print("Figures 9-10 (heterogeneous) ...")
    fig9 = figures.figure9(n_jobs=n)
    reports["fig9"] = render_sweep(fig9, "Figure 9: heterogeneous, P_D=0.5, P_S=0.2")
    reports["fig10"] = render_sweep(
        figures.figure10(n_jobs=n), "Figure 10: heterogeneous, P_D=0.9, P_S=0.5"
    )

    print("Figure 11 (elastic) ...")
    fig11 = figures.figure11(n_jobs=n)
    reports["fig11_batch"] = render_sweep(fig11["batch"], "Figure 11 (batch, elastic)")
    reports["fig11_hetero"] = render_sweep(
        fig11["heterogeneous"], "Figure 11 (heterogeneous, elastic)"
    )

    print("Tables IV-VII ...")
    tables = [
        ("table4", improvement_table(fig7, "Delayed-LOS", ["LOS", "EASY"]), PAPER_TABLE_IV,
         "Table IV: Delayed-LOS over LOS/EASY"),
        ("table5", improvement_table(fig9, "Hybrid-LOS", ["LOS-D", "EASY-D"]), PAPER_TABLE_V,
         "Table V: Hybrid-LOS over LOS-D/EASY-D"),
        ("table6", improvement_table(fig11["batch"], "Delayed-LOS-E", ["LOS-E", "EASY-E"]),
         PAPER_TABLE_VI, "Table VI: Delayed-LOS-E over LOS-E/EASY-E"),
        ("table7", improvement_table(fig11["heterogeneous"], "Hybrid-LOS-E", ["LOS-DE", "EASY-DE"]),
         PAPER_TABLE_VII, "Table VII: Hybrid-LOS-E over LOS-DE/EASY-DE"),
    ]
    for key, measured, paper, title in tables:
        reports[key] = (
            format_comparison_table(f"{title} — measured", measured)
            + "\n\n"
            + format_comparison_table(f"{title} — paper", dict(paper))
        )

    for key, text in reports.items():
        (out / f"{key}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}")

    elapsed = time.perf_counter() - started
    print(
        f"\nReproduced 9 figures + 4 tables at {n} jobs/point in {elapsed:.1f}s; "
        f"reports in {out}/"
    )


if __name__ == "__main__":
    main()
