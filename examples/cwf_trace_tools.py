#!/usr/bin/env python3
"""Working with Cloud Workload Format (CWF) traces.

Shows the full trace lifecycle:

1. generate a heterogeneous, elastic workload,
2. serialize it to CWF (the paper's Figure 4 SWF extension — requested
   start times in field 19, ECCs in fields 20–21),
3. reload the file and verify the round-trip,
4. print summary statistics of the trace,
5. simulate the reloaded trace.

Run:
    python examples/cwf_trace_tools.py [output.cwf]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    CWFWorkloadGenerator,
    GeneratorConfig,
    Workload,
    make_scheduler,
    simulate,
)
from repro.workload.cwf import parse_cwf_workload
from repro.workload.load import mean_runtime, mean_size


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.mkdtemp()) / "demo.cwf"
    )

    config = GeneratorConfig(
        n_jobs=200, p_dedicated=0.3, p_extend=0.2, p_reduce=0.1
    )
    workload = CWFWorkloadGenerator(config).generate(np.random.default_rng(31))

    # --- write ---------------------------------------------------------
    workload.to_cwf(target)
    print(f"wrote {target} ({target.stat().st_size} bytes)")

    # --- reload and verify ---------------------------------------------
    jobs, eccs = parse_cwf_workload(target)
    reloaded = Workload(
        jobs=jobs,
        eccs=eccs,
        machine_size=workload.machine_size,
        granularity=workload.granularity,
    )
    assert len(reloaded) == len(workload)
    assert len(reloaded.eccs) == len(workload.eccs)
    print("round-trip OK: jobs and ECCs preserved")

    # --- trace statistics ------------------------------------------------
    print(
        f"\ntrace statistics:\n"
        f"  jobs:            {len(reloaded)} "
        f"({len(reloaded.dedicated_jobs)} dedicated)\n"
        f"  ECCs:            {len(reloaded.eccs)}\n"
        f"  mean job size:   {mean_size(reloaded.jobs):.1f} processors\n"
        f"  mean runtime:    {mean_runtime(reloaded.jobs):.0f} s\n"
        f"  offered load:    {reloaded.offered_load():.3f}"
    )

    # --- simulate the reloaded trace -------------------------------------
    metrics = simulate(reloaded, make_scheduler("Hybrid-LOS-E"))
    print(
        f"\nHybrid-LOS-E on the reloaded trace: "
        f"utilization {metrics.utilization:.3f}, "
        f"mean wait {metrics.mean_wait:.0f} s, "
        f"{metrics.dedicated_on_time_rate:.0%} of dedicated slots on time"
    )


if __name__ == "__main__":
    main()
