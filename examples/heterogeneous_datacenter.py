#!/usr/bin/env python3
"""Heterogeneous datacenter: rigid real-time slots + background batch.

The paper's motivating scenario (§I-B): a single HPC scheduler must
serve background simulation jobs (batch, flexible) *and* real-time
data-processing slots (dedicated, rigid start times — e.g. traffic
feeds processed at fixed hours of the day).

This example builds that scenario explicitly — batch jobs drawn from
the statistical model, plus a daily grid of reserved real-time slots —
and compares Hybrid-LOS against the extended baselines EASY-D and
LOS-D on:

- batch job waiting time,
- whether the rigid slots actually started on time.

Run:
    python examples/heterogeneous_datacenter.py
"""

import numpy as np

from repro import (
    CWFWorkloadGenerator,
    GeneratorConfig,
    Job,
    JobKind,
    Workload,
    run_algorithms,
)
from repro.metrics.report import format_table

HOUR = 3600.0


def build_workload(seed: int = 2012) -> Workload:
    """Batch background load + a daily grid of real-time slots."""
    config = GeneratorConfig(n_jobs=400)
    batch = CWFWorkloadGenerator(config).generate(np.random.default_rng(seed))

    # Real-time ingestion slots: every 4 hours, a 96-processor slot
    # must start exactly on the hour and run for 30 minutes.  Each slot
    # is submitted 2 hours ahead of its rigid start.
    horizon = max(job.submit for job in batch.jobs)
    slots = []
    slot_id = 10_000
    start = 4 * HOUR
    while start < horizon:
        slots.append(
            Job(
                job_id=slot_id,
                submit=max(0.0, start - 2 * HOUR),
                num=96,
                estimate=0.5 * HOUR,
                kind=JobKind.DEDICATED,
                requested_start=start,
            )
        )
        slot_id += 1
        start += 4 * HOUR

    return Workload(
        jobs=batch.jobs + slots,
        machine_size=batch.machine_size,
        granularity=batch.granularity,
        description="background batch + daily real-time slots",
    )


def main() -> None:
    workload = build_workload()
    print(
        f"workload: {len(workload.batch_jobs)} batch jobs + "
        f"{len(workload.dedicated_jobs)} real-time slots, "
        f"offered load {workload.offered_load():.3f}"
    )

    results = run_algorithms(
        workload, ("EASY-D", "LOS-D", "Hybrid-LOS"), max_skip_count=7
    )

    rows = []
    for name, metrics in results.items():
        rows.append(
            [
                name,
                round(metrics.utilization, 4),
                round(metrics.mean_wait, 1),
                f"{metrics.dedicated_on_time_rate:.0%}",
                round(metrics.mean_dedicated_delay, 1),
            ]
        )
    print()
    print(
        format_table(
            [
                "algorithm",
                "utilization",
                "mean wait (s)",
                "slots on time",
                "mean slot delay (s)",
            ],
            rows,
        )
    )
    print(
        "\nHybrid-LOS packs flexible batch jobs around the rigid slots "
        "with explicit reservations (Algorithm 2)."
    )


if __name__ == "__main__":
    main()
