#!/usr/bin/env python3
"""Tuning the maximum skip count C_s for your workload mix.

The paper shows (Figures 5-6) that Delayed-LOS's C_s threshold has an
optimum that depends on the workload's packing properties: around 7-8
for balanced mixes (P_S = 0.5), and insensitive above ~3 when small
jobs dominate (P_S = 0.8).  "Formulating a systematic or analytical
methodology to compute the optimal value of C_s ... lies outside the
scope of this paper" — so, like the authors, we tune empirically.

This example sweeps C_s for two job-size mixes and prints the knee,
with EASY and LOS as flat reference lines.

Run:
    python examples/cs_tuning.py
"""

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import cs_sweep
from repro.workload.generator import GeneratorConfig
from repro.workload.twostage import TwoStageSizeConfig

CS_VALUES = (1, 2, 3, 5, 7, 10, 14, 20)


def tune(p_small: float, seed: int) -> None:
    config = ExperimentConfig(
        generator=GeneratorConfig(
            n_jobs=400, size=TwoStageSizeConfig(p_small=p_small)
        ),
        algorithms=("EASY", "LOS", "Delayed-LOS"),
        seed=seed,
    )
    result = cs_sweep(config, CS_VALUES, target_load=0.9)

    waits = {
        name: [m.mean_wait for m in runs] for name, runs in result.series.items()
    }
    print(
        ascii_plot(
            list(result.sweep_values),
            waits,
            title=f"mean waiting time vs C_s (P_S={p_small}, Load≈0.9)",
            y_label="mean wait (s)",
            height=12,
        )
    )
    delayed = waits["Delayed-LOS"]
    best = CS_VALUES[delayed.index(min(delayed))]
    print(f"\n  -> empirical optimum for P_S={p_small}: C_s = {best}\n")


def main() -> None:
    tune(p_small=0.5, seed=51)
    tune(p_small=0.8, seed=52)
    print(
        "Rule of thumb (matching the paper's Figures 5-6): C_s ≈ 7 for\n"
        "balanced mixes, smaller for small-job-heavy mixes where packing\n"
        "opportunities are plentiful anyway."
    )


if __name__ == "__main__":
    main()
