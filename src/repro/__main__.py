"""``python -m repro`` — the umbrella CLI without installed scripts.

CI (and anyone running from a source checkout with ``PYTHONPATH=src``)
gets the full ``repro {sim,resume,trace,report,bench-compare}`` interface
without a ``pip install``.
"""

import sys

from repro.cli import repro_main

if __name__ == "__main__":
    sys.exit(repro_main())
