"""``repro explain`` — why did this job wait?

The write side of decision provenance lives in the runner
(``decisions=True`` / ``--decisions``): whenever a policy passes over
a queued job, a deduplicated ``decision`` record with a reason code
from :data:`repro.core.base.DECISION_REASONS` lands in the
``repro.trace/1`` stream.  This module is the read side: it folds a
job's lifecycle records and its decision records into one annotated
timeline, so "why did job 17 start 4 hours late" is one command
instead of a trace spelunking session::

    repro explain trace.jsonl --job 17

Works on any trace; without decision records the timeline simply has
no pass-over lines (and says so).  See docs/observability.md for the
reason-code catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional, Sequence

from repro.obs.trace_io import read_trace
from repro.sim.trace import TraceRecord

#: Human phrasing per reason code (repro.core.base.DECISION_REASONS).
_REASON_TEXT = {
    "insufficient-free-procs": "not enough free processors",
    "reservation-block": "would delay the head job's reservation",
    "dp-excluded": "DP packing favoured other jobs this cycle",
    "freeze-window": "held back by a dedicated-job freeze window",
    "malleable-shrink-infeasible": "shrinking running jobs could not free enough",
    "fault-backoff": "crashed; waiting out the retry backoff",
}


def _describe(record: TraceRecord) -> str:
    """One human line for a job-lifecycle trace record."""
    kind = record.kind
    data = record.data
    if kind == "arrive":
        extra = ""
        if data.get("requested_start") is not None:
            extra = f", requested start t={data['requested_start']:g}"
        return f"arrives ({data.get('job_kind', 'batch')}, num={data.get('num')}{extra})"
    if kind == "decision":
        reason = str(data.get("reason", "?"))
        return f"passed over: {_REASON_TEXT.get(reason, reason)} [{reason}]"
    if kind == "start":
        return f"starts on {data.get('num')} processors"
    if kind == "finish":
        return "finishes"
    if kind == "promote":
        return f"promoted to the batch head (scount={data.get('scount')})"
    if kind == "cancel":
        return f"cancelled while {data.get('was', '?')}"
    if kind == "ecc" or kind == "ecc-dropped":
        origin = " [scheduler-initiated]" if data.get("origin") == "scheduler" else ""
        outcome = f" -> {data['outcome']}" if "outcome" in data else " dropped"
        amount = data.get("amount")
        return (
            f"ECC {data.get('ecc_kind')}"
            + (f" amount={amount:g}" if isinstance(amount, (int, float)) else "")
            + outcome
            + origin
        )
    if kind == "job-fail":
        return (
            f"attempt {data.get('attempt')} fails ({data.get('reason')}, "
            f"lost {data.get('lost', 0):g} proc-s)"
        )
    if kind == "requeue":
        return f"re-enters the queue (attempt {data.get('attempt')})"
    if kind == "job-failed-permanently":
        return f"fails permanently after {data.get('attempts')} attempts"
    # Unknown/future kinds: render the payload verbatim.
    payload = ", ".join(f"{k}={v}" for k, v in sorted(data.items()) if k != "job")
    return f"{kind} ({payload})" if payload else kind


def explain_job(records: Iterable[TraceRecord], job_id: int) -> str:
    """Render one job's annotated timeline from trace records.

    Returns a multi-line string: the per-event timeline followed by a
    summary (wait before first start, attempts, distinct pass-over
    reasons).  Raises ``ValueError`` when the trace never mentions the
    job.
    """
    everything = list(records)
    mine: List[TraceRecord] = [
        r for r in everything if r.data.get("job") == job_id
    ]
    if not mine:
        raise ValueError(f"trace has no records for job {job_id}")
    trace_has_decisions = any(r.kind == "decision" for r in everything)
    arrive: Optional[float] = None
    first_start: Optional[float] = None
    starts = 0
    reasons: List[str] = []
    lines = [f"job {job_id}:"]
    for record in mine:
        lines.append(f"  t={record.time:<12g} {_describe(record)}")
        if record.kind == "arrive":
            arrive = record.time
        elif record.kind == "start":
            starts += 1
            if first_start is None:
                first_start = record.time
        elif record.kind == "decision":
            reason = str(record.data.get("reason", "?"))
            if reason not in reasons:
                reasons.append(reason)
    summary = []
    if arrive is not None and first_start is not None:
        summary.append(f"waited {first_start - arrive:g}s before first start")
    if starts > 1:
        summary.append(f"{starts} start attempts")
    if reasons:
        summary.append(f"passed over for: {', '.join(reasons)}")
    elif trace_has_decisions:
        summary.append("never passed over")
    else:
        summary.append(
            "no decision records (run with --decisions for pass-over provenance)"
        )
    if summary:
        lines.append("  -- " + "; ".join(s for s in summary if s))
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description=(
            "Render one job's annotated timeline (lifecycle + pass-over "
            "decision provenance) from a repro.trace/1 file."
        ),
    )
    parser.add_argument("trace", help="trace file (repro.trace/1 JSONL)")
    parser.add_argument(
        "--job", type=int, required=True, metavar="N", help="job id to explain"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace = read_trace(args.trace)
    try:
        print(explain_job(trace.records, args.job))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


__all__ = ["build_parser", "explain_job", "main"]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
