"""Per-run telemetry: counters, wall timers, bounded timeseries.

One :class:`Telemetry` registry rides along with every simulation run
and is snapshotted into :attr:`RunMetrics.telemetry
<repro.metrics.records.RunMetrics>` when the run finishes.  It answers
"how hard did the scheduler work" questions that the paper-facing
metrics (utilization, wait, slowdown) deliberately abstract away:
scheduling passes and their wall time, DP cells touched, backfill
scan attempts, ECC commands processed, queue depth over time.  The
counter catalog lives in docs/observability.md.

Two design rules, both load-bearing:

- **Observe-only.** Nothing here is read by any policy; telemetry can
  never change a scheduling decision.  Deterministic counters are
  identical across serial/parallel/traced runs; wall timers are
  inherently machine-dependent, which is why the ``RunMetrics``
  field carries ``compare=False`` — equality (and therefore the
  determinism test suite and the run cache) sees only the paper
  metrics.
- **Near-zero cost.** Instrumented library code (``repro.core.dp``,
  ``repro.core.easy``) reports through the module-level :func:`bump`
  hook, which is one global load plus a ``None`` check when no
  registry is active — cheap enough to leave compiled in everywhere.

The active registry is installed per-run with :func:`activated`
(worker processes each install their own; runs never nest):

>>> telemetry = Telemetry()
>>> with activated(telemetry):
...     bump("dp_cells", 5)
...     bump("dp_cells")
>>> telemetry.counters["dp_cells"]
6
>>> bump("dp_cells")   # no active registry: dropped, not an error
>>> telemetry.counters["dp_cells"]
6
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Per-series sample cap; above it the series is decimated (every
#: other point dropped, sampling stride doubled), so memory stays
#: bounded while coverage stays uniform.  Decimation is a pure
#: function of the event sequence — deterministic across runs.
MAX_SAMPLES = 4096


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable end-of-run view of one registry.

    Attributes:
        counters: Monotonic event counts (deterministic).
        timers: Accumulated wall-clock seconds per timer name
            (machine-dependent; excluded from metric equality).
        series: name -> ((time, value), ...) sampled timeseries,
            decimated past :data:`MAX_SAMPLES` points.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, Tuple[Tuple[float, float], ...]] = field(default_factory=dict)

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's value (``default`` when never bumped)."""
        return self.counters.get(name, default)

    def timer(self, name: str, default: float = 0.0) -> float:
        """One timer's accumulated seconds."""
        return self.timers.get(name, default)

    def series_max(self, name: str, default: float = 0.0) -> float:
        """Peak value of a sampled series (``default`` when empty)."""
        points = self.series.get(name)
        if not points:
            return default
        return max(value for _, value in points)

    def as_columns(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view for tabular export."""
        columns: Dict[str, float] = {}
        columns.update({name: float(count) for name, count in self.counters.items()})
        columns.update(self.timers)
        return columns


def format_snapshot(snapshot: TelemetrySnapshot) -> str:
    """One snapshot as a monospace table (counters, timers, peaks).

    The single rendering used everywhere telemetry reaches a terminal
    — ``repro-sim --telemetry`` and ``tools/profile_simulation.py`` —
    so the two can't drift apart.

    >>> print(format_snapshot(TelemetrySnapshot(
    ...     counters={"sched_passes": 12},
    ...     timers={"run_wall_s": 0.25},
    ...     series={"queue_depth": ((0.0, 1.0), (5.0, 4.0))})))
    kind     name           value
    -------  ------------  ------
    counter  sched_passes      12
    timer    run_wall_s    0.250s
    peak     queue_depth        4
    """
    from repro.metrics.report import format_table

    rows: List[List[object]] = []
    for name in sorted(snapshot.counters):
        rows.append(["counter", name, snapshot.counters[name]])
    for name in sorted(snapshot.timers):
        rows.append(["timer", name, f"{snapshot.timers[name]:.3f}s"])
    for name in sorted(snapshot.series):
        rows.append(["peak", name, f"{snapshot.series_max(name):g}"])
    if not rows:
        return "(empty telemetry snapshot)"
    table = format_table(["kind", "name", "value"], rows)
    # format_table right-justifies; the first two columns read better
    # left-justified for a key/value listing.
    lines = table.splitlines()
    widths = [len(part) for part in lines[1].split("  ")]
    out = []
    for line in lines:
        kind = line[: widths[0]].strip()
        name = line[widths[0] + 2 : widths[0] + 2 + widths[1]].strip()
        value = line[widths[0] + widths[1] + 4 :]
        out.append(f"{kind:<{widths[0]}}  {name:<{widths[1]}}  {value}")
    return "\n".join(out)


class _Series:
    """Bounded timeseries with deterministic stride decimation."""

    __slots__ = ("points", "stride", "_skip", "dropped")

    def __init__(self) -> None:
        self.points: List[Tuple[float, float]] = []
        self.stride = 1
        self._skip = 0
        #: Observations not present in ``points`` — skipped by the
        #: current stride or discarded by a decimation pass.  Lets
        #: readers tell a sparse series from a downsampled one
        #: (surfaced as a ``<name>_samples_dropped`` counter).
        self.dropped = 0

    def add(self, t: float, value: float) -> None:
        if self._skip:
            self._skip -= 1
            self.dropped += 1
            return
        self.points.append((t, value))
        if len(self.points) >= MAX_SAMPLES:
            before = len(self.points)
            del self.points[1::2]
            self.dropped += before - len(self.points)
            self.stride *= 2
        self._skip = self.stride - 1


class Telemetry:
    """Mutable per-run registry of counters, timers and timeseries."""

    __slots__ = ("counters", "timers", "_series")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self._series: Dict[str, _Series] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` on timer ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Context manager accumulating the block's wall time."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def sample(self, name: str, t: float, value: float) -> None:
        """Append a ``(t, value)`` point to series ``name`` (bounded)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = _Series()
        series.add(t, value)

    def series_handle(self, name: str) -> _Series:
        """The mutable series object for ``name`` (creating it empty).

        Hot paths that sample one series thousands of times per run
        hold the handle and call :meth:`_Series.add` directly, skipping
        the per-sample dict lookup.  An empty handle leaves no trace in
        :meth:`snapshot`.
        """
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = _Series()
        return series

    # ------------------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the registry's current state.

        Downsampled series additionally surface a deterministic
        ``<name>_samples_dropped`` counter so readers can tell a
        genuinely sparse series from one the bounded buffer thinned.
        """
        counters = dict(self.counters)
        for name, series in self._series.items():
            if series.dropped:
                counters[f"{name}_samples_dropped"] = (
                    counters.get(f"{name}_samples_dropped", 0) + series.dropped
                )
        return TelemetrySnapshot(
            counters=counters,
            timers={name: value for name, value in self.timers.items()},
            series={
                name: tuple(series.points)
                for name, series in self._series.items()
                if series.points
            },
        )


# ----------------------------------------------------------------------
# Module-level hook for instrumented library code
# ----------------------------------------------------------------------
_ACTIVE: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The registry installed by the innermost :func:`activated`."""
    return _ACTIVE


@contextmanager
def activated(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the active registry for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


def bump(name: str, n: int = 1) -> None:
    """Count ``n`` on the active registry; no-op when none is active.

    This is the hook instrumented hot paths call unconditionally —
    when no run is in flight it costs a global load and a comparison.
    """
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.count(name, n)


__all__ = [
    "MAX_SAMPLES",
    "Telemetry",
    "TelemetrySnapshot",
    "activated",
    "bump",
    "current",
    "format_snapshot",
]
