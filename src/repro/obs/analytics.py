"""Trace analytics: replay, metric recomputation, the correctness oracle.

PR 3 gave traces a write side (``repro.trace/1`` JSONL export); this
module is the read side.  :func:`replay` reconstructs the full run
timeline from the records alone — processor-utilization step function,
queue depth, per-job Gantt spans, ECC episodes — and
:func:`recompute_metrics` derives the paper's §V metrics (mean wait,
mean response, slowdown, bounded slowdown, utilization, makespan) from
that reconstruction, **independently of the simulator's own
accounting**.

The two computations share no code: :class:`~repro.metrics.records.RunMetrics`
aggregates live ``Job`` objects through
:class:`~repro.cluster.accounting.UtilizationTracker`, while this
module sees only the exported event stream.  :func:`cross_validate`
compares them within a float tolerance, which turns every traced run
into a correctness oracle — a mismatch means the trace export, the
runner's bookkeeping, or this replay is wrong, and
``tests/obs/test_analytics.py`` enforces agreement for every
registered algorithm.  Set ``REPRO_TRACE_VALIDATE=1`` to run the
oracle automatically after every traced
:func:`~repro.experiments.parallel.execute_spec` run.

Replay semantics mirror the runner exactly:

- a job's *wait* is its **latest** ``start`` minus its ``arrive`` time
  (after a fault requeue, the final attempt's start is what counts),
- *runtime* is ``finish`` minus that latest start; only jobs with a
  ``finish`` record produce a span (permanently failed and
  queue-cancelled jobs are excluded, as in ``RunMetrics.records``),
- the busy level rises by ``num`` at ``start`` and falls at
  ``finish``/``job-fail`` (a pset eviction releases the allocation at
  the instant of its ``job-fail`` record),
- utilization integrates that step function over
  ``[first arrival, last finish]`` and divides by ``M × span``,
  matching ``UtilizationTracker.mean_utilization(..., until=last_finish)``.

>>> from repro.sim.trace import TraceRecord
>>> records = [
...     TraceRecord(0.0, "arrive", {"job": 1, "num": 160}),
...     TraceRecord(0.0, "start", {"job": 1, "num": 160}),
...     TraceRecord(100.0, "finish", {"job": 1, "num": 160}),
... ]
>>> result = replay(records, meta={"machine_size": 320})
>>> metrics = recompute_metrics(result)
>>> metrics.n_jobs, metrics.utilization, metrics.makespan
(1, 0.5, 100.0)
>>> metrics.mean_wait, metrics.slowdown
(0.0, 1.0)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.records import JobRecord, RunMetrics
from repro.metrics.stats import bounded_slowdown, mean, paper_slowdown
from repro.sim.trace import TraceRecord
from repro.workload.job import JobKind

#: Environment switch: validate every traced ``execute_spec`` run
#: against its own trace (the oracle as a runtime guard, not only a
#: test); off by default to keep traced runs cheap.
ENV_TRACE_VALIDATE = "REPRO_TRACE_VALIDATE"

#: Record kinds that change the busy-processor level.
_ALLOC_KINDS = frozenset({"start"})
_RELEASE_KINDS = frozenset({"finish", "job-fail"})

#: Default oracle tolerance (relative); the acceptance bar of
#: docs/observability.md.
REL_TOLERANCE = 1e-9


class TraceOracleError(ValueError):
    """Trace-recomputed metrics disagree with the simulator's.

    Raised by :func:`assert_consistent`; the message lists every
    mismatching metric with both values.  This is always a bug — in
    the trace export, the runner's accounting, or the replay — never
    an expected condition.
    """


@dataclass(frozen=True)
class ECCEpisode:
    """One elastic command as seen in a trace.

    Attributes:
        time: Instant the command was processed.
        job_id: Target job.
        kind: CWF request type tag (``ET``/``RT``/``EP``/``RP``).
        amount: Requested extension/reduction amount.
        outcome: :class:`~repro.core.elastic.ECCOutcome` value string,
            or ``"dropped-not-elastic"`` for commands a non-elastic
            policy discarded.
        num: Job size after the command (None for traces written
            before the field existed).
        origin: ``"job"`` for workload-submitted commands, or
            ``"scheduler"`` for Malleable-* runtime resizes
            (docs/malleability.md) — both replay identically; the tag
            only attributes who initiated the change.
    """

    time: float
    job_id: int
    kind: str
    amount: float
    outcome: str
    num: Optional[int] = None
    origin: str = "job"

    @property
    def applied(self) -> bool:
        """Whether the command actually modified its job."""
        return self.outcome in ("applied-queued", "applied-running", "terminated-job")


@dataclass(frozen=True)
class TraceMetrics:
    """The paper's §V metrics, recomputed from a trace alone."""

    n_jobs: int
    mean_wait: float
    mean_runtime: float
    mean_response: float
    slowdown: float
    mean_bounded_slowdown: float
    utilization: float
    makespan: float

    def as_row(self) -> Dict[str, float]:
        """Flat dict for tabular reports."""
        return {
            "n_jobs": float(self.n_jobs),
            "utilization": self.utilization,
            "mean_wait": self.mean_wait,
            "mean_runtime": self.mean_runtime,
            "mean_response": self.mean_response,
            "slowdown": self.slowdown,
            "bounded_slowdown": self.mean_bounded_slowdown,
            "makespan": self.makespan,
        }


@dataclass(frozen=True)
class TraceReplay:
    """Full timeline reconstruction of one traced run.

    Attributes:
        meta: The trace header metadata (empty for raw record lists).
        records: Completion records rebuilt from the trace, in
            completion order — the same order ``RunMetrics.records``
            uses, so means accumulate identically.  ``killed`` is not
            reconstructible from the trace and is always False.
        utilization_steps: The busy-processor step function as
            ``(time, level)`` points, one per distinct instant.
        queue_depth: Waiting-job count over time, one point per
            distinct instant the count changed.
        ecc_episodes: Every elastic command in the trace, in order.
        start_time: First arrival (the utilization window's left edge).
        last_finish: Final completion (the window's right edge;
            equals ``start_time`` when nothing completed).
        peak_level: Maximum busy level reached.
        machine_size: ``M`` from the header (None when absent).
        n_trace_records: Records replayed.
    """

    meta: Dict[str, Any]
    records: List[JobRecord]
    utilization_steps: List[Tuple[float, int]]
    queue_depth: List[Tuple[float, int]]
    ecc_episodes: List[ECCEpisode]
    start_time: float
    last_finish: float
    peak_level: int
    machine_size: Optional[int] = None
    n_trace_records: int = 0

    @property
    def span(self) -> float:
        """The metric window ``last_finish - start_time``."""
        return self.last_finish - self.start_time

    def busy_area(self, until: Optional[float] = None) -> float:
        """Busy processor-seconds in ``[start_time, until]``.

        ``until`` defaults to :attr:`last_finish`; the final level is
        assumed to persist past the last step.
        """
        horizon = self.last_finish if until is None else float(until)
        area = 0.0
        previous_time: Optional[float] = None
        previous_level = 0
        for time, level in self.utilization_steps:
            if previous_time is not None:
                area += previous_level * (min(time, horizon) - min(previous_time, horizon))
            previous_time, previous_level = time, level
        if previous_time is not None and horizon > previous_time:
            area += previous_level * (horizon - previous_time)
        return area

    def mean_utilization(self, until: Optional[float] = None) -> float:
        """Mean busy fraction of ``machine_size`` over the window."""
        total = self.machine_size
        horizon = self.last_finish if until is None else float(until)
        span = horizon - self.start_time
        if not total or total <= 0 or span <= 0:
            return 0.0
        return self.busy_area(until=horizon) / (total * span)


@dataclass
class _JobReplayState:
    """Mutable per-job state while scanning the record stream."""

    submit: float = 0.0
    num: int = 0
    kind: JobKind = JobKind.BATCH
    requested_start: Optional[float] = None
    last_start: Optional[float] = None
    running_num: int = 0
    eccs_applied: int = 0
    cancelled_running: bool = False


def replay(
    records: Iterable[TraceRecord], meta: Optional[Mapping[str, Any]] = None
) -> TraceReplay:
    """Reconstruct the full timeline of a traced run.

    Args:
        records: Trace records in file order (time-ordered; use
            ``repro trace --check`` first when in doubt).
        meta: Trace header metadata; ``machine_size`` enables
            utilization.

    Returns:
        A :class:`TraceReplay` with the rebuilt completion records,
        the utilization and queue-depth step functions, and every ECC
        episode.
    """
    meta = dict(meta or {})
    machine_size = meta.get("machine_size")
    machine_size = int(machine_size) if machine_size is not None else None

    jobs: Dict[int, _JobReplayState] = {}
    completed: List[JobRecord] = []
    ecc_episodes: List[ECCEpisode] = []
    utilization_steps: List[Tuple[float, int]] = []
    queue_depth: List[Tuple[float, int]] = []
    level = 0
    peak = 0
    waiting = 0
    start_time: Optional[float] = None
    last_finish: Optional[float] = None
    n = 0

    def observe_level(time: float) -> None:
        if utilization_steps and utilization_steps[-1][0] == time:
            utilization_steps[-1] = (time, level)
        else:
            utilization_steps.append((time, level))

    def observe_queue(time: float) -> None:
        if queue_depth and queue_depth[-1][0] == time:
            queue_depth[-1] = (time, waiting)
        else:
            queue_depth.append((time, waiting))

    for record in records:
        n += 1
        data = record.data
        kind = record.kind
        time = record.time
        if start_time is None:
            start_time = time
        job_id = data.get("job")
        state = jobs.get(int(job_id)) if job_id is not None else None

        if kind == "arrive":
            job_id = int(job_id)
            state = jobs.setdefault(job_id, _JobReplayState())
            state.submit = time
            state.num = int(data.get("num", 0))
            state.kind = (
                JobKind(data["job_kind"]) if "job_kind" in data else JobKind.BATCH
            )
            requested = data.get("requested_start")
            state.requested_start = (
                float(requested) if requested is not None else None
            )
            waiting += 1
            observe_queue(time)
        elif kind == "requeue":
            if state is not None:
                waiting += 1
                observe_queue(time)
        elif kind == "start":
            if state is None:
                state = jobs.setdefault(int(job_id), _JobReplayState())
                state.submit = time
            state.last_start = time
            state.running_num = int(data.get("num", state.num))
            level += state.running_num
            peak = max(peak, level)
            observe_level(time)
            waiting = max(0, waiting - 1)
            observe_queue(time)
        elif kind == "finish":
            if state is not None and state.last_start is not None:
                level -= int(data.get("num", state.running_num))
                observe_level(time)
                last_finish = time
                completed.append(
                    JobRecord(
                        job_id=int(job_id),
                        kind=state.kind,
                        num=int(data.get("num", state.running_num)),
                        submit=state.submit,
                        start=state.last_start,
                        finish=time,
                        requested_start=state.requested_start,
                        eccs_applied=state.eccs_applied,
                        cancelled=state.cancelled_running,
                    )
                )
        elif kind == "job-fail":
            if state is not None and state.last_start is not None:
                level -= int(data.get("num", state.running_num))
                observe_level(time)
                state.last_start = None
        elif kind == "cancel":
            if data.get("was") == "queued":
                waiting = max(0, waiting - 1)
                observe_queue(time)
            elif state is not None:
                state.cancelled_running = True
        elif kind in ("ecc", "ecc-dropped"):
            num = data.get("num")
            episode = ECCEpisode(
                time=time,
                job_id=int(job_id) if job_id is not None else -1,
                kind=str(data.get("ecc_kind", "?")),
                amount=float(data.get("amount", 0.0)),
                outcome=str(data.get("outcome", "dropped-not-elastic")),
                num=int(num) if num is not None else None,
                origin=str(data.get("origin", "job")),
            )
            ecc_episodes.append(episode)
            if state is not None:
                if episode.applied:
                    state.eccs_applied += 1
                if episode.num is not None:
                    if state.last_start is None:
                        state.num = episode.num
                    elif (
                        episode.applied
                        and episode.num != state.running_num
                    ):
                        # Running resize (EP/RP under a malleable
                        # policy, docs/malleability.md): the busy level
                        # steps by the size delta at the command
                        # instant.  Time-ECCs echo the unchanged size,
                        # so only genuine resizes land here.
                        level += episode.num - state.running_num
                        peak = max(peak, level)
                        observe_level(time)
                        state.running_num = episode.num
        # "promote", "node-fail", "node-repair", "job-failed-permanently"
        # change no replayed quantity: promotion moves a job between
        # queues (total waiting unchanged), node events alter capacity
        # placement but not the busy level (evictions release at their
        # own job-fail record).

    if start_time is None:
        start_time = 0.0
    if last_finish is None:
        last_finish = start_time
    return TraceReplay(
        meta=meta,
        records=completed,
        utilization_steps=utilization_steps,
        queue_depth=queue_depth,
        ecc_episodes=ecc_episodes,
        start_time=start_time,
        last_finish=last_finish,
        peak_level=peak,
        machine_size=machine_size,
        n_trace_records=n,
    )


def recompute_metrics(source: "TraceReplay | Sequence[TraceRecord]",
                      meta: Optional[Mapping[str, Any]] = None) -> TraceMetrics:
    """Derive the paper's metrics from a trace, independently.

    Accepts either a prepared :class:`TraceReplay` or raw records plus
    header ``meta``.  Mirrors the :class:`~repro.metrics.records.RunMetrics`
    definitions exactly: means over completion records in completion
    order, the ratio-of-means slowdown, Feitelson bounded slowdown,
    and the exact utilization integral over
    ``[first arrival, last finish]``.
    """
    result = source if isinstance(source, TraceReplay) else replay(source, meta)
    waits = [r.wait for r in result.records]
    runtimes = [r.runtime for r in result.records]
    mean_wait = mean(waits)
    mean_runtime = mean(runtimes)
    return TraceMetrics(
        n_jobs=len(result.records),
        mean_wait=mean_wait,
        mean_runtime=mean_runtime,
        mean_response=mean(w + r for w, r in zip(waits, runtimes)),
        slowdown=paper_slowdown(mean_wait, mean_runtime),
        mean_bounded_slowdown=mean(bounded_slowdown(zip(waits, runtimes))),
        utilization=result.mean_utilization(),
        makespan=result.span,
    )


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------
#: (metric name, RunMetrics attribute) pairs the oracle compares.
ORACLE_METRICS: Tuple[Tuple[str, str], ...] = (
    ("mean_wait", "mean_wait"),
    ("mean_runtime", "mean_runtime"),
    ("mean_response", "mean_response"),
    ("slowdown", "slowdown"),
    ("mean_bounded_slowdown", "mean_bounded_slowdown"),
    ("utilization", "utilization"),
    ("makespan", "makespan"),
)


def cross_validate(
    source: "TraceReplay | Sequence[TraceRecord]",
    metrics: RunMetrics,
    *,
    rel_tol: float = REL_TOLERANCE,
    abs_tol: float = 1e-12,
) -> List[str]:
    """Compare trace-recomputed metrics against simulator metrics.

    Returns a list of human-readable mismatch findings (empty = the
    trace and the simulator agree on every compared metric).  The job
    count is compared exactly; float metrics with
    ``math.isclose(rel_tol, abs_tol)``.
    """
    result = source if isinstance(source, TraceReplay) else replay(source)
    recomputed = recompute_metrics(result)
    findings: List[str] = []
    if recomputed.n_jobs != metrics.n_jobs:
        findings.append(
            f"n_jobs: trace has {recomputed.n_jobs} completions, "
            f"RunMetrics has {metrics.n_jobs}"
        )
    for trace_name, run_name in ORACLE_METRICS:
        ours = getattr(recomputed, trace_name)
        theirs = getattr(metrics, run_name)
        if not math.isclose(ours, theirs, rel_tol=rel_tol, abs_tol=abs_tol):
            findings.append(
                f"{trace_name}: trace recomputes {ours!r}, "
                f"RunMetrics reports {theirs!r} "
                f"(delta {abs(ours - theirs):.3e})"
            )
    return findings


def assert_consistent(
    source: "TraceReplay | Sequence[TraceRecord]",
    metrics: RunMetrics,
    *,
    rel_tol: float = REL_TOLERANCE,
    context: str = "",
) -> None:
    """Hard-error form of :func:`cross_validate`.

    Raises:
        TraceOracleError: when any compared metric disagrees beyond
            ``rel_tol``; the message lists every mismatch.
    """
    findings = cross_validate(source, metrics, rel_tol=rel_tol)
    if findings:
        where = f" [{context}]" if context else ""
        raise TraceOracleError(
            f"trace-recomputed metrics disagree with RunMetrics{where}:\n  "
            + "\n  ".join(findings)
        )


def validate_trace_file(path: str, metrics: RunMetrics, *,
                        rel_tol: float = REL_TOLERANCE) -> None:
    """Read a trace file and run the oracle against ``metrics``.

    Raises:
        TraceOracleError: on any metric mismatch.
        repro.obs.trace_io.TraceReadError: when the file is malformed.
    """
    from repro.obs.trace_io import read_trace

    trace = read_trace(path)
    assert_consistent(
        replay(trace.records, trace.meta), metrics,
        rel_tol=rel_tol, context=str(path),
    )


__all__ = [
    "ECCEpisode",
    "ENV_TRACE_VALIDATE",
    "ORACLE_METRICS",
    "REL_TOLERANCE",
    "TraceMetrics",
    "TraceOracleError",
    "TraceReplay",
    "assert_consistent",
    "cross_validate",
    "recompute_metrics",
    "replay",
    "validate_trace_file",
]
