"""Versioned JSONL export of simulation traces.

A trace file is newline-delimited JSON: one **header** line naming the
schema plus free-form run metadata, then one line per
:class:`~repro.sim.trace.TraceRecord`::

    {"schema": "repro.trace/1", "meta": {"algorithm": "EASY", ...}}
    {"t": 0.0, "kind": "arrive", "data": {"job": 1, "num": 8}}
    {"t": 120.0, "kind": "start", "data": {"job": 1, "num": 8}}

Design rules:

- **Streaming both ways.** :class:`TraceWriter` appends records as the
  simulation produces them (the runner's sink), so memory stays flat
  regardless of run length; :func:`iter_trace` yields records without
  materializing the file.
- **Lossless round-trips.** Times are JSON numbers (``repr``-exact for
  Python floats), payload values are scalars/strings; NumPy scalars
  are converted via ``.item()`` on write.  ``write → read`` returns
  records that compare equal to the originals — enforced by
  ``tests/obs/test_trace_io.py``.
- **Versioned.** The header's ``schema`` field gates readers; an
  unknown version is a :class:`TraceReadError`, never a silent
  misparse.  Malformed lines carry file/line context, mirroring the
  workload parsers (docs/resilience.md); ``strict=False`` skips them.

>>> import io
>>> from repro.sim.trace import TraceRecord
>>> buf = io.StringIO()
>>> with TraceWriter(buf, meta={"algorithm": "EASY"}) as writer:
...     writer.write(TraceRecord(0.0, "arrive", {"job": 1, "num": 8}))
...     writer.write(TraceRecord(120.0, "start", {"job": 1, "num": 8}))
>>> writer.count
2
>>> _ = buf.seek(0)
>>> trace = read_trace(buf)
>>> trace.meta["algorithm"]
'EASY'
>>> trace.records[1] == TraceRecord(120.0, "start", {"job": 1, "num": 8})
True
"""

from __future__ import annotations

import io
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.obs.spans import begin as _span_begin, end as _span_end
from repro.sim.trace import TraceRecord

#: Schema tag written to (and required of) every trace file header.
TRACE_SCHEMA = "repro.trace/1"

#: Buffered-writer drain threshold: records accumulate in memory and
#: land on the stream in ~this many bytes per OS write, cutting the
#: per-record I/O overhead of long traced runs (the bytes produced are
#: identical — buffering only batches them).
FLUSH_BYTES = 64 * 1024

PathOrFile = Union[str, Path, TextIO]


class TraceReadError(ValueError):
    """A trace file failed to parse.

    Attributes:
        source: Name of the offending file (``"<stream>"`` for
            file-like inputs).
        line: 1-based line number, or None when the whole file is at
            fault (e.g. empty input).
    """

    def __init__(self, message: str, *, source: str = "<stream>", line: Optional[int] = None) -> None:
        self.source = source
        self.line = line
        location = source if line is None else f"{source}:{line}"
        super().__init__(f"{location}: {message}")


def _jsonable(value: Any) -> Any:
    """Coerce payload values to JSON-safe types (NumPy scalars → Python)."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bool)):
        return item()
    raise TypeError(f"trace payload value {value!r} is not JSON-serializable")


class TraceWriter:
    """Streaming JSONL writer for trace records.

    Opens the target (path or text stream), writes the header line
    immediately, then one line per :meth:`write`.  Usable as a context
    manager; paths are closed on exit, caller-owned streams are not.

    Args:
        target: Output path or writable text stream.
        meta: Free-form run metadata for the header (algorithm,
            machine size, package version...).  Must be JSON-safe.
    """

    def __init__(self, target: PathOrFile, meta: Optional[Dict[str, Any]] = None) -> None:
        if isinstance(target, (str, Path)):
            Path(target).parent.mkdir(parents=True, exist_ok=True)
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self.count = 0
        self._buf: List[str] = []
        self._buf_bytes = 0
        header = {"schema": TRACE_SCHEMA, "meta": dict(meta or {})}
        self._fh.write(json.dumps(header, separators=(",", ":"), default=_jsonable) + "\n")

    @classmethod
    def resume(cls, target: Union[str, Path], *, offset: int, count: int) -> "TraceWriter":
        """Reopen an interrupted trace file for journaled append-resume.

        ``offset``/``count`` come from a checkpoint's trace journal
        (:mod:`repro.durable.checkpoint`): the file is truncated back
        to ``offset`` — discarding any records written after the
        checkpoint, including a torn final line from a killed writer —
        and appending continues from there.  No header is rewritten;
        the bytes up to ``offset`` are the authoritative prefix, so a
        resumed run's finished file is byte-identical to an
        uninterrupted one.

        Raises:
            FileNotFoundError: when the trace file is gone.
            ValueError: when the file is shorter than ``offset`` (it
                cannot be the file the journal describes).
        """
        path = Path(target)
        size = path.stat().st_size
        if size < offset:
            raise ValueError(
                f"{path}: {size} bytes on disk but the checkpoint journal "
                f"recorded {offset}; refusing to resume a different file"
            )
        raw = open(path, "r+b")
        try:
            raw.truncate(offset)
            raw.seek(0, os.SEEK_END)
        except BaseException:
            raw.close()
            raise
        writer = cls.__new__(cls)
        writer._fh = io.TextIOWrapper(raw, encoding="utf-8", newline="")
        writer._owns_fh = True
        writer.count = count
        writer._buf = []
        writer._buf_bytes = 0
        return writer

    def write(self, record: TraceRecord) -> None:
        """Append one record as a JSONL line.

        Lines accumulate in an in-process buffer and hit the stream in
        ~:data:`FLUSH_BYTES` batches; :meth:`sync` and :meth:`close`
        drain it, so durability points and finished files see every
        record.  The bytes written are identical to unbuffered output.
        """
        line = json.dumps(
            {"t": record.time, "kind": record.kind, "data": record.data},
            separators=(",", ":"),
            default=_jsonable,
        )
        self._buf.append(line + "\n")
        self._buf_bytes += len(line) + 1
        if self._buf_bytes >= FLUSH_BYTES:
            self._drain()
        self.count += 1

    def _drain(self) -> None:
        """Move buffered lines to the underlying stream (one write)."""
        if self._buf:
            self._fh.write("".join(self._buf))
            self._buf.clear()
            self._buf_bytes = 0

    def sync(self) -> int:
        """Flush to stable storage; returns the durable byte length.

        The returned offset is the append position a checkpoint can
        journal: the writer only ever appends, so file size and write
        position coincide.  Only meaningful for path-backed writers.
        """
        token = _span_begin("trace_flush")
        try:
            self._drain()
            self._fh.flush()
            if not self._owns_fh:
                raise ValueError("sync() requires a path-backed TraceWriter")
            fd = self._fh.fileno()
            os.fsync(fd)
            return os.fstat(fd).st_size
        finally:
            _span_end(token)

    def close(self) -> None:
        """Flush and (for path targets) close the underlying file."""
        self._drain()
        if self._owns_fh:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace(
    records: Iterable[TraceRecord],
    target: PathOrFile,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a full trace in one call; returns the record count."""
    with TraceWriter(target, meta=meta) as writer:
        for record in records:
            writer.write(record)
        return writer.count


@dataclass(frozen=True)
class TraceFile:
    """A fully parsed trace: header metadata plus all records.

    ``truncated`` is True when the file ended in a torn final line (a
    crashed writer); every complete record before it was recovered.
    """

    meta: Dict[str, Any]
    records: List[TraceRecord] = field(default_factory=list)
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.records)


def _parse_header(line: str, source: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceReadError(f"malformed header: {exc}", source=source, line=1) from None
    if not isinstance(header, dict) or "schema" not in header:
        raise TraceReadError(
            "first line is not a trace header (missing 'schema')", source=source, line=1
        )
    if header["schema"] != TRACE_SCHEMA:
        raise TraceReadError(
            f"unsupported trace schema {header['schema']!r} "
            f"(this reader understands {TRACE_SCHEMA!r})",
            source=source,
            line=1,
        )
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise TraceReadError("header 'meta' must be an object", source=source, line=1)
    return meta


def _parse_record(line: str, source: str, lineno: int) -> TraceRecord:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceReadError(f"malformed record: {exc}", source=source, line=lineno) from None
    if not isinstance(payload, dict):
        raise TraceReadError("record line is not an object", source=source, line=lineno)
    try:
        time = payload["t"]
        kind = payload["kind"]
    except KeyError as exc:
        raise TraceReadError(f"record missing field {exc}", source=source, line=lineno) from None
    data = payload.get("data", {})
    if (
        not isinstance(time, (int, float))
        or isinstance(time, bool)
        or not isinstance(kind, str)
        or not isinstance(data, dict)
    ):
        raise TraceReadError(
            "record fields have wrong types (want t: number, kind: string, data: object)",
            source=source,
            line=lineno,
        )
    return TraceRecord(time=float(time), kind=kind, data=data)


def _warn_truncated(source: str, lineno: int) -> None:
    warnings.warn(
        f"{source}:{lineno}: truncated final line (crashed writer?); "
        "recovered every complete record before it",
        RuntimeWarning,
        stacklevel=3,
    )


def iter_trace(source: PathOrFile, *, strict: bool = True) -> Iterator[TraceRecord]:
    """Stream records from a trace file after validating its header.

    A torn **final** line — one that fails to parse *and* lacks its
    terminating newline, the signature a killed writer leaves — is
    never an error: every complete record before it is yielded and a
    ``RuntimeWarning`` reports the truncation (docs/resilience.md).

    Args:
        source: Input path or readable text stream.
        strict: When True (default), a malformed *interior* record
            raises :class:`TraceReadError` with file/line context;
            when False, malformed record lines are skipped (a bad
            header always raises — without it nothing is trustworthy).
    """
    if isinstance(source, (str, Path)):
        name = str(source)
        fh: TextIO = open(source, "r", encoding="utf-8")
        owns = True
    else:
        name = "<stream>"
        fh = source
        owns = False
    try:
        first = fh.readline()
        if not first:
            raise TraceReadError("empty file (no header)", source=name)
        _parse_header(first, name)
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                yield _parse_record(line, name, lineno)
            except TraceReadError:
                if not line.endswith("\n"):
                    # Only the file's very last line can lack its
                    # newline: a torn write, not corruption.
                    _warn_truncated(name, lineno)
                    return
                if strict:
                    raise
    finally:
        if owns:
            fh.close()


def read_meta(source: PathOrFile) -> Dict[str, Any]:
    """Parse and return only the header metadata of a trace file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            first = fh.readline()
        name = str(source)
    else:
        first = source.readline()
        name = "<stream>"
    if not first:
        raise TraceReadError("empty file (no header)", source=name)
    return _parse_header(first, name)


def read_trace(source: PathOrFile, *, strict: bool = True) -> TraceFile:
    """Parse a whole trace file into a :class:`TraceFile`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_trace(fh, strict=strict)
    name = getattr(source, "name", "<stream>")
    first = source.readline()
    if not first:
        raise TraceReadError("empty file (no header)", source=str(name))
    meta = _parse_header(first, str(name))
    records: List[TraceRecord] = []
    truncated = False
    for lineno, line in enumerate(source, start=2):
        if not line.strip():
            continue
        try:
            records.append(_parse_record(line, str(name), lineno))
        except TraceReadError:
            if not line.endswith("\n"):
                _warn_truncated(str(name), lineno)
                truncated = True
                break
            if strict:
                raise
    return TraceFile(meta=meta, records=records, truncated=truncated)


__all__ = [
    "TRACE_SCHEMA",
    "TraceFile",
    "TraceReadError",
    "TraceWriter",
    "iter_trace",
    "read_meta",
    "read_trace",
    "write_trace",
]
