"""Benchmark history: longitudinal perf tracking and regression diffs.

``BENCH_core.json`` is a snapshot — every ``bench_perf_core`` run
overwrites it, so the repo's perf *trajectory* was invisible.  This
module gives it a past: :func:`append_entry` condenses each benchmark
document into one schema-versioned JSONL line in
``benchmarks/history.jsonl`` (git sha, UTC timestamp and hostname
stamped), and :func:`compare` diffs the newest entry against the best
prior result per ``(algorithm, n_jobs)`` scenario, flagging any wall
time above a configurable regression threshold.  The ``repro
bench-compare`` subcommand prints that diff as a table; CI runs it
with ``--strict --threshold 2.0``, so a scenario slower than 2x its
best same-host baseline fails the build.

Wall times are machine-dependent, so baselines prefer entries from the
same host when any exist; cross-host entries are still kept — they
carry the events/sec trend — but only used as a fallback baseline.

>>> entry = condense({"schema": 2, "quick": True, "workers": 2,
...     "scenarios": [{"algorithm": "EASY", "n_jobs": 50,
...                    "wall_time_s": 0.1, "events_per_sec": 9000.0}],
...     "pipeline": {"speedup": 1.7},
...     "observability": {"traced_over_untraced": 1.02}},
...     git_sha="abc1234", timestamp="2026-01-01T00:00:00Z", host="ci")
>>> slower = dict(entry, scenarios=[dict(entry["scenarios"][0],
...                                      wall_time_s=0.25)])
>>> report = compare(slower, [entry], threshold=2.0)
>>> report.regressions
['EASY x50: 0.25s vs 0.1s baseline (2.50x > 2x threshold)']
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Version tag of each history line; bump on breaking shape changes.
HISTORY_SCHEMA = "repro.bench-history/1"

#: Default location (repo layout: benchmarks/history.jsonl).
DEFAULT_HISTORY = Path(__file__).resolve().parents[3] / "benchmarks" / "history.jsonl"

#: A scenario's wall time must exceed baseline × threshold to count
#: as a regression (wall clocks are noisy; 1.5x is well past jitter).
DEFAULT_THRESHOLD = 1.5


def git_sha() -> str:
    """Short HEAD sha of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def utc_now() -> str:
    """Current UTC time as a compact ISO-8601 string."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def condense(
    document: Mapping[str, Any],
    *,
    git_sha: str,
    timestamp: str,
    host: str,
) -> Dict[str, Any]:
    """One history line from a full ``bench_perf_core`` document.

    Keeps exactly what longitudinal comparison needs: per-scenario
    wall time and events/sec, the pipeline speedup (and, schema 5,
    its ``pool_startup_s`` spin-up cost), the observability overhead
    ratio — plus provenance (sha, time, host, quick flag).  Documents
    carrying a ``scale`` section (``--scale-tier`` runs) additionally
    contribute condensed streaming scenarios with peak RSS, the
    substrate of ``repro bench-compare --memory``; documents carrying
    a ``phases`` section (schema 4) contribute the per-phase
    self-time shares, so a wall-time regression can be attributed to
    the phase whose share grew; documents carrying a
    ``scaling_curve`` section (schema 5, ``--scaling-curve``)
    contribute the per-size events/sec points that :func:`compare`
    gates on — the tripwire against a reintroduced scaling cliff.
    """
    entry: Dict[str, Any] = {
        "schema": HISTORY_SCHEMA,
        "timestamp": timestamp,
        "git_sha": git_sha,
        "host": host,
        "quick": bool(document.get("quick", False)),
        "workers": int(document.get("workers", 0)),
        "scenarios": [
            {
                "algorithm": s["algorithm"],
                "n_jobs": int(s["n_jobs"]),
                "wall_time_s": float(s["wall_time_s"]),
                "events_per_sec": float(s.get("events_per_sec", 0.0)),
            }
            for s in document.get("scenarios", [])
        ],
        "pipeline": {
            "speedup": float(document.get("pipeline", {}).get("speedup", 0.0)),
            "pool_startup_s": float(
                document.get("pipeline", {}).get("pool_startup_s", 0.0)
            ),
        },
        "observability": {
            "traced_over_untraced": float(
                document.get("observability", {}).get("traced_over_untraced", 0.0)
            )
        },
    }
    scale = document.get("scale")
    if scale:
        entry["scale"] = {
            "peak_rss_ratio": float(
                scale.get("peak_rss_ratio_large_over_small", 0.0)
            ),
            "scenarios": [
                {
                    "scenario": s["scenario"],
                    "n_jobs": int(s["n_jobs"]),
                    "wall_time_s": float(s["wall_time_s"]),
                    "events_per_sec": float(s.get("events_per_sec", 0.0)),
                    "peak_rss_kb": int(s.get("peak_rss_kb", 0)),
                }
                for s in scale.get("scenarios", [])
            ],
        }
    curve = document.get("scaling_curve")
    if curve:
        entry["scaling_curve"] = {
            "algorithm": str(curve.get("algorithm", "")),
            "points": [
                {
                    "n_jobs": int(p["n_jobs"]),
                    "wall_time_s": float(p["wall_time_s"]),
                    "events_per_sec": float(p.get("events_per_sec", 0.0)),
                }
                for p in curve.get("points", [])
            ],
            "throughput_ratio": float(
                curve.get("throughput_ratio_smallest_over_largest", 0.0)
            ),
            "wall_time_exponent": float(curve.get("wall_time_exponent", 0.0)),
        }
    phases = document.get("phases")
    if phases:
        entry["phases"] = {
            "algorithm": str(phases.get("algorithm", "")),
            "n_jobs": int(phases.get("n_jobs", 0)),
            "spans_over_plain": float(phases.get("spans_over_plain", 0.0)),
            "shares": {
                str(row["phase"]): float(row.get("share", 0.0))
                for row in phases.get("phases", [])
            },
        }
    return entry


def append_entry(
    document: Mapping[str, Any],
    history: "Path | str" = DEFAULT_HISTORY,
) -> Dict[str, Any]:
    """Stamp, condense and append one benchmark run to the history.

    Creates the file (and parent directory) on first use; returns the
    appended entry.
    """
    import platform

    entry = condense(
        document,
        git_sha=git_sha(),
        timestamp=utc_now(),
        host=platform.node() or "unknown",
    )
    from repro.durable.atomic import append_durable

    append_durable(Path(history), json.dumps(entry, sort_keys=True) + "\n")
    return entry


def read_history(history: "Path | str" = DEFAULT_HISTORY) -> List[Dict[str, Any]]:
    """All history entries in file (= chronological) order.

    Blank lines are skipped; entries with an unrecognized ``schema``
    are skipped too (forward compatibility).  A malformed line — the
    torn tail of a benchmark run killed mid-append, or manual editing
    gone wrong — is skipped with a ``RuntimeWarning``: one damaged line
    must not take down every ``bench-compare`` after it.
    """
    import warnings

    path = Path(history)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            warnings.warn(
                f"{path}:{number}: skipping malformed history line: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if isinstance(entry, dict) and entry.get("schema") == HISTORY_SCHEMA:
            entries.append(entry)
    return entries


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
#: A scenario's identity across entries.
_Key = Tuple[str, int]


@dataclass(frozen=True)
class ScenarioDiff:
    """Latest vs. baseline for one ``(algorithm, n_jobs)`` scenario."""

    algorithm: str
    n_jobs: int
    latest_wall_s: float
    baseline_wall_s: Optional[float]
    baseline_sha: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """latest / baseline wall time (None without a baseline)."""
        if self.baseline_wall_s is None or self.baseline_wall_s <= 0:
            return None
        return self.latest_wall_s / self.baseline_wall_s


@dataclass(frozen=True)
class ThroughputDiff:
    """Latest vs. baseline events/sec for one streaming scenario.

    Covers the scale-tier scenarios and the scaling-curve points —
    the sizes where a reintroduced scaling cliff actually bites.
    Unlike wall time (which grows with workload size by construction),
    events/sec is size-normalized, so it diffs directly against the
    *best* prior value.
    """

    scenario: str
    n_jobs: int
    latest_eps: float
    baseline_eps: Optional[float]
    baseline_sha: str = ""

    @property
    def slowdown(self) -> Optional[float]:
        """baseline / latest events/sec (>1 = slower than baseline)."""
        if not self.baseline_eps or self.latest_eps <= 0:
            return None
        return self.baseline_eps / self.latest_eps


@dataclass(frozen=True)
class MemoryDiff:
    """Latest vs. baseline peak RSS for one streaming scale scenario."""

    scenario: str
    n_jobs: int
    latest_rss_kb: int
    baseline_rss_kb: Optional[int]
    baseline_sha: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """latest / baseline peak RSS (None without a baseline)."""
        if not self.baseline_rss_kb:
            return None
        return self.latest_rss_kb / self.baseline_rss_kb


@dataclass(frozen=True)
class BenchComparison:
    """Result of :func:`compare`: per-scenario diffs plus verdicts."""

    diffs: List[ScenarioDiff]
    threshold: float
    n_history: int
    regressions: List[str] = field(default_factory=list)
    #: Events/sec diffs of streaming scenarios (scale tier + scaling
    #: curve).  These GATE: a point slower than baseline/threshold
    #: lands in ``regressions`` and fails ``--strict`` — the tripwire
    #: for scaling cliffs that the small tracked rows cannot see.
    throughput_diffs: List[ThroughputDiff] = field(default_factory=list)
    #: Peak-RSS diffs of streaming scale scenarios (``memory=True``
    #: compares with ``scale`` sections in history).  Warnings are
    #: advisory — RSS depends on allocator and interpreter build, so a
    #: memory growth never fails the build (``ok`` ignores it).
    memory_diffs: List[MemoryDiff] = field(default_factory=list)
    memory_warnings: List[str] = field(default_factory=list)
    #: Phase attribution (schema-4 entries): which phase's self-time
    #: share grew most vs. the previous entry with phase data — the
    #: first place to look when a wall-time regression is flagged.
    phase_note: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """The diff as a monospace table plus a verdict line."""
        from repro.metrics.report import format_table

        rows: List[List[object]] = []
        for diff in self.diffs:
            ratio = diff.ratio
            rows.append([
                diff.algorithm,
                diff.n_jobs,
                diff.latest_wall_s,
                diff.baseline_wall_s if diff.baseline_wall_s is not None else "-",
                f"{ratio:.2f}x" if ratio is not None else "-",
                diff.baseline_sha or "-",
                ("REGRESSION" if ratio is not None and ratio > self.threshold
                 else "ok" if ratio is not None else "no baseline"),
            ])
        table = format_table(
            ["algorithm", "n_jobs", "latest (s)", "baseline (s)",
             "ratio", "baseline sha", "status"],
            rows,
        )
        verdict = (
            f"bench-compare: OK — no scenario above {self.threshold:g}x "
            f"of its baseline ({self.n_history} history entries)"
            if self.ok
            else f"bench-compare: {len(self.regressions)} regression(s) "
            f"above {self.threshold:g}x"
        )
        parts = [table, verdict]
        if self.throughput_diffs:
            rows = []
            for diff in self.throughput_diffs:
                slowdown = diff.slowdown
                rows.append([
                    diff.scenario,
                    diff.n_jobs,
                    f"{diff.latest_eps:.0f}",
                    f"{diff.baseline_eps:.0f}" if diff.baseline_eps else "-",
                    f"{slowdown:.2f}x" if slowdown is not None else "-",
                    diff.baseline_sha or "-",
                    ("REGRESSION"
                     if slowdown is not None and slowdown > self.threshold
                     else "ok" if slowdown is not None else "no baseline"),
                ])
            parts.append(format_table(
                ["scenario", "n_jobs", "latest (ev/s)", "baseline (ev/s)",
                 "slowdown", "baseline sha", "status"],
                rows,
            ))
        if self.phase_note:
            parts.append(self.phase_note)
        if self.memory_diffs:
            rows = []
            for diff in self.memory_diffs:
                ratio = diff.ratio
                rows.append([
                    diff.scenario,
                    diff.n_jobs,
                    f"{diff.latest_rss_kb / 1024:.1f}",
                    (f"{diff.baseline_rss_kb / 1024:.1f}"
                     if diff.baseline_rss_kb else "-"),
                    f"{ratio:.2f}x" if ratio is not None else "-",
                    diff.baseline_sha or "-",
                    ("WARN" if any(diff.scenario in w and f"x{diff.n_jobs}" in w
                                   for w in self.memory_warnings)
                     else "ok" if ratio is not None else "no baseline"),
                ])
            parts.append(format_table(
                ["scenario", "n_jobs", "RSS (MiB)", "baseline (MiB)",
                 "ratio", "baseline sha", "status"],
                rows,
            ))
            parts.extend(
                f"warning (non-blocking): {w}" for w in self.memory_warnings
            )
        return "\n".join(parts)


def _scenario_map(entry: Mapping[str, Any]) -> Dict[_Key, Dict[str, Any]]:
    return {
        (s["algorithm"], int(s["n_jobs"])): s
        for s in entry.get("scenarios", [])
    }


def _scale_map(entry: Mapping[str, Any]) -> Dict[_Key, Dict[str, Any]]:
    return {
        (s["scenario"], int(s["n_jobs"])): s
        for s in entry.get("scale", {}).get("scenarios", [])
    }


def _throughput_map(entry: Mapping[str, Any]) -> Dict[_Key, float]:
    """Streaming events/sec per ``(scenario, n_jobs)`` in one entry.

    Pools the subprocess-isolated scale tier and the in-process
    scaling curve; curve points are keyed under ``"scaling-curve"``.
    """
    out: Dict[_Key, float] = {}
    for s in entry.get("scale", {}).get("scenarios", []):
        out[(str(s["scenario"]), int(s["n_jobs"]))] = float(
            s.get("events_per_sec", 0.0)
        )
    for p in entry.get("scaling_curve", {}).get("points", []):
        out[("scaling-curve", int(p["n_jobs"]))] = float(
            p.get("events_per_sec", 0.0)
        )
    return out


def compare(
    latest: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    memory: bool = False,
    memory_threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff ``latest`` against the best prior run of each scenario.

    The baseline for a scenario is the *fastest* prior wall time,
    taken from same-host entries when the history has any (wall clocks
    don't compare across machines), otherwise from the whole history.
    Scenarios absent from history get no verdict.

    Streaming throughput is always gated too: every scale-tier
    scenario and scaling-curve point in ``latest`` is compared on
    events/sec against the best prior value for the same
    ``(scenario, n_jobs)``; a point slower than baseline/threshold
    counts as a regression exactly like a tracked-row wall time.

    With ``memory=True``, streaming scale scenarios (entries carrying
    a ``scale`` section) are additionally diffed on peak RSS against
    the *smallest* prior footprint; growth beyond ``memory_threshold``
    produces a warning, never a failing verdict — RSS varies with
    allocator and interpreter build, so it informs rather than gates.
    """
    host = latest.get("host")
    same_host = [e for e in history if e.get("host") == host]
    pool = same_host if same_host else list(history)

    best: Dict[_Key, Tuple[float, str]] = {}
    for entry in pool:
        for key, scenario in _scenario_map(entry).items():
            wall = float(scenario["wall_time_s"])
            if key not in best or wall < best[key][0]:
                best[key] = (wall, str(entry.get("git_sha", "")))

    diffs: List[ScenarioDiff] = []
    regressions: List[str] = []
    for key, scenario in _scenario_map(latest).items():
        algorithm, n_jobs = key
        latest_wall = float(scenario["wall_time_s"])
        baseline = best.get(key)
        diff = ScenarioDiff(
            algorithm=algorithm,
            n_jobs=n_jobs,
            latest_wall_s=latest_wall,
            baseline_wall_s=baseline[0] if baseline else None,
            baseline_sha=baseline[1] if baseline else "",
        )
        diffs.append(diff)
        ratio = diff.ratio
        if ratio is not None and ratio > threshold:
            regressions.append(
                f"{algorithm} x{n_jobs}: {latest_wall:g}s vs "
                f"{baseline[0]:g}s baseline "
                f"({ratio:.2f}x > {threshold:g}x threshold)"
            )

    # Streaming throughput (scale tier + scaling curve): gate each
    # point's events/sec against the best same-host baseline.  Wall
    # time cannot be compared across sizes, but events/sec can — and
    # these are the sizes where a scaling cliff shows up first.
    throughput_diffs: List[ThroughputDiff] = []
    best_eps: Dict[_Key, Tuple[float, str]] = {}
    for entry in pool:
        for key, eps in _throughput_map(entry).items():
            if eps > 0 and (key not in best_eps or eps > best_eps[key][0]):
                best_eps[key] = (eps, str(entry.get("git_sha", "")))
    for key, eps in _throughput_map(latest).items():
        name, n_jobs = key
        baseline = best_eps.get(key)
        diff = ThroughputDiff(
            scenario=name,
            n_jobs=n_jobs,
            latest_eps=eps,
            baseline_eps=baseline[0] if baseline else None,
            baseline_sha=baseline[1] if baseline else "",
        )
        throughput_diffs.append(diff)
        slowdown = diff.slowdown
        if slowdown is not None and slowdown > threshold:
            regressions.append(
                f"{name} x{n_jobs}: {eps:g} events/s vs "
                f"{baseline[0]:g} baseline "
                f"({slowdown:.2f}x slower > {threshold:g}x threshold)"
            )

    memory_diffs: List[MemoryDiff] = []
    memory_warnings: List[str] = []
    if memory:
        best_rss: Dict[_Key, Tuple[int, str]] = {}
        for entry in pool:
            for key, scenario in _scale_map(entry).items():
                rss = int(scenario.get("peak_rss_kb", 0))
                if rss > 0 and (key not in best_rss or rss < best_rss[key][0]):
                    best_rss[key] = (rss, str(entry.get("git_sha", "")))
        for key, scenario in _scale_map(latest).items():
            name, n_jobs = key
            latest_rss = int(scenario.get("peak_rss_kb", 0))
            baseline = best_rss.get(key)
            diff = MemoryDiff(
                scenario=name,
                n_jobs=n_jobs,
                latest_rss_kb=latest_rss,
                baseline_rss_kb=baseline[0] if baseline else None,
                baseline_sha=baseline[1] if baseline else "",
            )
            memory_diffs.append(diff)
            ratio = diff.ratio
            if ratio is not None and ratio > memory_threshold:
                memory_warnings.append(
                    f"{name} x{n_jobs}: peak RSS {latest_rss / 1024:.1f} MiB vs "
                    f"{baseline[0] / 1024:.1f} MiB baseline "
                    f"({ratio:.2f}x > {memory_threshold:g}x)"
                )

    # Phase attribution: against the newest prior entry carrying phase
    # data for the same scenario, name the phase whose self-time share
    # grew most — where to start reading when a regression is flagged.
    phase_note: Optional[str] = None
    latest_phases = latest.get("phases")
    if latest_phases:
        key_alg = str(latest_phases.get("algorithm", ""))
        key_jobs = int(latest_phases.get("n_jobs", 0))
        prior_phases = next(
            (
                e["phases"] for e in reversed(pool)
                if e.get("phases")
                and str(e["phases"].get("algorithm", "")) == key_alg
                and int(e["phases"].get("n_jobs", 0)) == key_jobs
            ),
            None,
        )
        if prior_phases is not None:
            shares = {
                str(k): float(v)
                for k, v in latest_phases.get("shares", {}).items()
            }
            prev_shares = {
                str(k): float(v)
                for k, v in prior_phases.get("shares", {}).items()
            }
            deltas = {
                name: shares.get(name, 0.0) - prev_shares.get(name, 0.0)
                for name in set(shares) | set(prev_shares)
            }
            if deltas:
                grew = max(sorted(deltas), key=lambda name: deltas[name])
                phase_note = (
                    f"phase attribution ({key_alg} x{key_jobs}): largest "
                    f"self-time share increase is '{grew}' "
                    f"({prev_shares.get(grew, 0.0):.1%} -> "
                    f"{shares.get(grew, 0.0):.1%}; spans overhead "
                    f"{float(latest_phases.get('spans_over_plain', 0.0)):.2f}x)"
                )

    return BenchComparison(
        diffs=diffs,
        threshold=threshold,
        n_history=len(history),
        regressions=regressions,
        throughput_diffs=throughput_diffs,
        memory_diffs=memory_diffs,
        memory_warnings=memory_warnings,
        phase_note=phase_note,
    )


# ----------------------------------------------------------------------
# CLI: ``repro bench-compare``
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro bench-compare`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro bench-compare",
        description="Diff the newest benchmark history entry against the "
        "best prior run per scenario (benchmarks/history.jsonl; appended "
        "by benchmarks/bench_perf_core.py).",
    )
    parser.add_argument(
        "--history", default=str(DEFAULT_HISTORY), metavar="FILE",
        help=f"history JSONL file (default: {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD, metavar="X",
        help="flag scenarios slower than X times their baseline "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on any regression (default: report only; the CI "
        "job passes --strict --threshold 2.0)",
    )
    parser.add_argument(
        "--memory", action="store_true",
        help="also diff peak RSS of streaming scale scenarios "
        "(--scale-tier runs); growth beyond the threshold warns but "
        "never fails — RSS is allocator- and build-dependent",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro bench-compare``; returns the exit code."""
    args = build_parser().parse_args(argv)
    try:
        entries = read_history(args.history)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not entries:
        print(f"no benchmark history at {args.history} — run "
              "'python -m benchmarks.bench_perf_core' to record one")
        return 0
    latest, prior = entries[-1], entries[:-1]
    print(
        f"latest: {latest.get('git_sha', '?')} at "
        f"{latest.get('timestamp', '?')} on {latest.get('host', '?')} "
        f"(quick={latest.get('quick')})"
    )
    if not prior:
        print("only one history entry — nothing to compare against yet")
        return 0
    result = compare(
        latest, prior, threshold=args.threshold, memory=args.memory
    )
    print(result.render())
    if args.memory and not result.memory_diffs:
        print("(--memory: no scale-tier scenarios in the latest entry — "
              "run 'python -m benchmarks.bench_perf_core --scale-tier')")
    if args.strict and not result.ok:
        return 1
    return 0


__all__ = [
    "BenchComparison",
    "DEFAULT_HISTORY",
    "DEFAULT_THRESHOLD",
    "HISTORY_SCHEMA",
    "MemoryDiff",
    "ScenarioDiff",
    "ThroughputDiff",
    "append_entry",
    "compare",
    "condense",
    "git_sha",
    "main",
    "read_history",
]
