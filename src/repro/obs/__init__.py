"""Observability: trace export, run telemetry, sweep progress.

The simulation and experiment layers compute plenty of diagnostic
signal — every state transition lands in a
:class:`~repro.sim.trace.TraceLog`, the run cache counts hits and
misses, schedulers burn measurable work in DP tables and backfill
scans — but before this package none of it left the process.
``repro.obs`` is the layer that gets it out, without ever feeding
back: **observability must not change scheduling decisions**, and a
traced run produces `RunMetrics` identical to an untraced one (the
determinism tests in ``tests/obs/`` enforce both).

Nine modules:

- :mod:`repro.obs.trace_io` — a versioned JSONL schema for
  :class:`~repro.sim.trace.TraceRecord` with a streaming writer and
  reader; round-trips are lossless.
- :mod:`repro.obs.telemetry` — a per-run counters/timers/timeseries
  registry attached to :class:`~repro.metrics.records.RunMetrics`;
  hot-path hooks cost one global load when inactive.
- :mod:`repro.obs.spans` — hierarchical phase spans over the engine
  loop and scheduler hot paths: per-phase self/cumulative wall time
  folded into telemetry, a Chrome trace-event export
  (Perfetto/chrome://tracing), and the ``repro profile`` hot-spot
  table.  Zero-cost when no recorder is active.
- :mod:`repro.obs.explain` — decision provenance: renders the
  ``decision`` records (why a queued job was passed over) plus the
  job's lifecycle into the ``repro explain --job N`` timeline.
- :mod:`repro.obs.progress` — per-run progress events (done/total,
  cache hits vs. cold runs, ETA) emitted by the parallel executor,
  always from the parent process, a terminal reporter, and the
  end-of-sweep summary collector.
- :mod:`repro.obs.inspect` — filtering/summarizing exported traces:
  per-job timelines, transition counts, invariant spot-checks
  (lifecycle, occupancy, elastic-policy size deltas); the engine
  behind the ``repro trace`` subcommand.
- :mod:`repro.obs.analytics` — the read side of tracing: replays a
  trace into timelines, recomputes the paper's §V metrics from the
  event stream alone, and cross-validates them against the
  simulator's :class:`~repro.metrics.records.RunMetrics` (the
  correctness oracle; ``REPRO_TRACE_VALIDATE=1`` arms it per run).
- :mod:`repro.obs.report` — ``repro report``: one or more traces (or
  a sweep directory) rendered into a self-contained Markdown/HTML
  report with comparison tables and charts.
- :mod:`repro.obs.bench_history` — the benchmark's longitudinal
  record (``benchmarks/history.jsonl``) and the ``repro
  bench-compare`` regression diff.

See docs/observability.md for the trace schema, the counter catalog,
the oracle's semantics and overhead numbers.
"""

from repro.obs.analytics import (
    ECCEpisode,
    TraceMetrics,
    TraceOracleError,
    TraceReplay,
    assert_consistent,
    cross_validate,
    recompute_metrics,
    replay,
    validate_trace_file,
)
from repro.obs.bench_history import (
    HISTORY_SCHEMA,
    BenchComparison,
    append_entry,
    compare,
    read_history,
)

from repro.obs.inspect import (
    TraceCheck,
    TraceSummary,
    check_trace,
    job_timeline,
    summarize,
)
from repro.obs.progress import (
    ProgressEvent,
    ProgressReporter,
    ProgressSummary,
    ProgressTracker,
    format_duration,
)
from repro.obs.explain import explain_job
from repro.obs.spans import (
    PHASES,
    SpanRecorder,
    phase_table,
)
from repro.obs.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    activated,
    bump,
    current,
    format_snapshot,
)
from repro.obs.trace_io import (
    TRACE_SCHEMA,
    TraceFile,
    TraceReadError,
    TraceWriter,
    iter_trace,
    read_trace,
    write_trace,
)

def __getattr__(name: str):
    # repro.obs.report pulls in repro.experiments, whose core imports
    # reach back into repro.obs.telemetry — an eager import here would
    # cycle.  PEP 562 lazy loading breaks the loop without changing
    # the public surface.
    if name == "build_report":
        from repro.obs.report import build_report

        return build_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BenchComparison",
    "ECCEpisode",
    "HISTORY_SCHEMA",
    "PHASES",
    "ProgressEvent",
    "ProgressReporter",
    "ProgressSummary",
    "ProgressTracker",
    "SpanRecorder",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceCheck",
    "TraceFile",
    "TraceMetrics",
    "TraceOracleError",
    "TraceReadError",
    "TraceReplay",
    "TraceSummary",
    "TraceWriter",
    "activated",
    "append_entry",
    "assert_consistent",
    "build_report",
    "bump",
    "check_trace",
    "compare",
    "cross_validate",
    "current",
    "explain_job",
    "format_duration",
    "format_snapshot",
    "iter_trace",
    "job_timeline",
    "phase_table",
    "read_history",
    "read_trace",
    "recompute_metrics",
    "replay",
    "summarize",
    "validate_trace_file",
    "write_trace",
]
