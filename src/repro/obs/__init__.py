"""Observability: trace export, run telemetry, sweep progress.

The simulation and experiment layers compute plenty of diagnostic
signal — every state transition lands in a
:class:`~repro.sim.trace.TraceLog`, the run cache counts hits and
misses, schedulers burn measurable work in DP tables and backfill
scans — but before this package none of it left the process.
``repro.obs`` is the layer that gets it out, without ever feeding
back: **observability must not change scheduling decisions**, and a
traced run produces `RunMetrics` identical to an untraced one (the
determinism tests in ``tests/obs/`` enforce both).

Four modules:

- :mod:`repro.obs.trace_io` — a versioned JSONL schema for
  :class:`~repro.sim.trace.TraceRecord` with a streaming writer and
  reader; round-trips are lossless.
- :mod:`repro.obs.telemetry` — a per-run counters/timers/timeseries
  registry attached to :class:`~repro.metrics.records.RunMetrics`;
  hot-path hooks cost one global load when inactive.
- :mod:`repro.obs.progress` — per-run progress events (done/total,
  cache hits vs. cold runs, ETA) emitted by the parallel executor,
  always from the parent process, and a terminal reporter.
- :mod:`repro.obs.inspect` — filtering/summarizing exported traces:
  per-job timelines, transition counts, invariant spot-checks; the
  engine behind the ``repro trace`` subcommand.

See docs/observability.md for the trace schema, the counter catalog
and overhead numbers.
"""

from repro.obs.inspect import (
    TraceCheck,
    TraceSummary,
    check_trace,
    job_timeline,
    summarize,
)
from repro.obs.progress import (
    ProgressEvent,
    ProgressReporter,
    ProgressTracker,
    format_duration,
)
from repro.obs.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    activated,
    bump,
    current,
)
from repro.obs.trace_io import (
    TRACE_SCHEMA,
    TraceFile,
    TraceReadError,
    TraceWriter,
    iter_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "ProgressTracker",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceCheck",
    "TraceFile",
    "TraceReadError",
    "TraceSummary",
    "TraceWriter",
    "activated",
    "bump",
    "check_trace",
    "current",
    "format_duration",
    "iter_trace",
    "job_timeline",
    "read_trace",
    "summarize",
    "write_trace",
]
