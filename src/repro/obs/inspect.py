"""Inspect exported traces: summaries, timelines, invariant checks.

The analysis engine behind the ``repro trace <file>`` subcommand.
Everything operates on plain sequences of
:class:`~repro.sim.trace.TraceRecord`, so the same functions work on
an in-memory :class:`~repro.sim.trace.TraceLog` and on a JSONL file
streamed through :func:`repro.obs.trace_io.iter_trace`.

Three views:

- :func:`summarize` — whole-trace shape: record/transition counts per
  kind, the time span, distinct jobs seen.
- :func:`job_timeline` — one job's records in time order (what the
  scheduler did to it, attempt by attempt).
- :func:`check_trace` — invariant spot-checks *on the export itself*:
  time ordering, per-job lifecycle legality (no start before arrival,
  no double start, finish only while running), and — when the header
  names a machine size — that traced allocations never exceed it.
  A non-empty finding list means either a corrupted trace or a
  scheduler bug; the simulator's own audits should have caught the
  latter first.

>>> from repro.sim.trace import TraceRecord
>>> records = [
...     TraceRecord(0.0, "arrive", {"job": 1, "num": 8}),
...     TraceRecord(10.0, "start", {"job": 1, "num": 8}),
...     TraceRecord(70.0, "finish", {"job": 1, "num": 8}),
... ]
>>> summary = summarize(records)
>>> summary.kind_counts["start"], summary.n_jobs, summary.span
(1, 1, 70.0)
>>> check_trace(records, machine_size=320)
[]
>>> for finding in check_trace(records[::-1]):   # reversed: all wrong
...     print(finding)
record 2: time 10 precedes 70
record 3: time 0 precedes 10
job 1: 'finish' at t=70 but job is not running
job 1: 'start' at t=10 but job is not waiting
job 1: 'arrive' at t=0 but job was already seen
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.trace import TraceRecord

#: Record kinds that begin a job's waiting phase.
_WAIT_KINDS = {"arrive", "requeue", "promote"}
#: Record kinds that end an attempt and free the job's processors.
_RELEASE_KINDS = {"finish", "job-fail"}


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate shape of one trace."""

    n_records: int
    t_min: float
    t_max: float
    kind_counts: Dict[str, int] = field(default_factory=dict)
    n_jobs: int = 0

    @property
    def span(self) -> float:
        """Traced time span (0 for empty traces)."""
        return self.t_max - self.t_min

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.n_records} records over t=[{self.t_min:g}, {self.t_max:g}] "
            f"(span {self.span:g}s), {self.n_jobs} jobs",
            "transitions:",
        ]
        width = max((len(kind) for kind in self.kind_counts), default=0)
        for kind in sorted(self.kind_counts):
            lines.append(f"  {kind:<{width}}  {self.kind_counts[kind]}")
        return "\n".join(lines)


def _job_of(record: TraceRecord) -> Optional[int]:
    job = record.data.get("job")
    return int(job) if job is not None else None


def summarize(records: Iterable[TraceRecord]) -> TraceSummary:
    """Count transitions per kind and measure the traced span."""
    kind_counts: Dict[str, int] = {}
    jobs = set()
    n = 0
    t_min = float("inf")
    t_max = float("-inf")
    for record in records:
        n += 1
        kind_counts[record.kind] = kind_counts.get(record.kind, 0) + 1
        t_min = min(t_min, record.time)
        t_max = max(t_max, record.time)
        job = _job_of(record)
        if job is not None:
            jobs.add(job)
    if n == 0:
        t_min = t_max = 0.0
    return TraceSummary(
        n_records=n, t_min=t_min, t_max=t_max, kind_counts=kind_counts, n_jobs=len(jobs)
    )


def job_timeline(records: Iterable[TraceRecord], job_id: int) -> List[TraceRecord]:
    """All records touching ``job_id``, in trace order."""
    return [r for r in records if _job_of(r) == job_id]


def filter_records(
    records: Iterable[TraceRecord],
    *,
    kinds: Optional[Sequence[str]] = None,
    job_id: Optional[int] = None,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> List[TraceRecord]:
    """Records matching every given filter (None = don't filter)."""
    wanted = set(kinds) if kinds else None
    out = []
    for r in records:
        if wanted is not None and r.kind not in wanted:
            continue
        if job_id is not None and _job_of(r) != job_id:
            continue
        if t0 is not None and r.time < t0:
            continue
        if t1 is not None and r.time > t1:
            continue
        out.append(r)
    return out


@dataclass(frozen=True)
class TraceCheck:
    """Result of :func:`check_trace`: findings plus what was checked."""

    findings: List[str]
    n_records: int
    peak_occupancy: int

    @property
    def ok(self) -> bool:
        return not self.findings


def check_trace(
    records: Sequence[TraceRecord], machine_size: Optional[int] = None
) -> List[str]:
    """Spot-check trace invariants; returns human-readable findings.

    Checks (empty list = all pass):

    - record times are non-decreasing,
    - per job: ``start`` only while waiting (after ``arrive`` or
      ``requeue``), ``finish``/``job-fail`` only while running, at
      most one ``arrive``,
    - with ``machine_size``: the sum of running jobs' ``num`` never
      exceeds it (``start`` allocates; ``finish``/``job-fail``
      release),
    - elastic-policy invariants (on traces whose ``ecc`` records carry
      the post-command ``num``): every applied expand/shrink maps to a
      matching allocation delta — ``EP`` never shrinks a job, ``RP``
      never grows one, time-dimension commands (``ET``/``RT``) never
      change size, *job-origin* resource commands never apply to a
      running job (scheduler-origin records from the Malleable-*
      policies are the sanctioned exception: they resize running jobs,
      and occupancy tracking follows the new allocation), and a job
      starts/releases exactly its traced size — no job ever exceeds
      ``machine_size``, and a ``terminated-job`` outcome is followed
      by that job's ``finish`` at the same instant.
    """
    return _check(records, machine_size).findings


def _check(
    records: Sequence[TraceRecord], machine_size: Optional[int] = None
) -> TraceCheck:
    findings: List[str] = []
    previous_time: Optional[float] = None
    for index, record in enumerate(records, start=1):
        if previous_time is not None and record.time < previous_time:
            findings.append(
                f"record {index}: time {record.time:g} precedes {previous_time:g}"
            )
        previous_time = record.time

    # Per-job lifecycle state machine: absent -> waiting -> running.
    state: Dict[int, str] = {}
    # Elastic invariants: traced size per job (arrive num, updated by
    # applied ECCs), processors actually held, pending terminations.
    size: Dict[int, int] = {}
    held: Dict[int, int] = {}
    must_finish_at: Dict[int, float] = {}
    occupancy = 0
    peak = 0
    for record in records:
        job = _job_of(record)
        kind = record.kind
        time = record.time
        if job is None:
            continue
        if kind == "arrive":
            if job in state:
                findings.append(
                    f"job {job}: 'arrive' at t={time:g} but job was already seen"
                )
            state.setdefault(job, "waiting")
            if "num" in record.data:
                size[job] = int(record.data["num"])
        elif kind in _WAIT_KINDS:  # requeue / promote
            state[job] = "waiting"
        elif kind == "start":
            if state.get(job) != "waiting":
                findings.append(
                    f"job {job}: 'start' at t={time:g} but job is not waiting"
                )
            state[job] = "running"
            num = int(record.data.get("num", 0))
            if job in size and num != size[job]:
                findings.append(
                    f"job {job}: starts with {num} procs at t={time:g} but its "
                    f"traced size (arrive + applied ECCs) is {size[job]}"
                )
            held[job] = num
            occupancy += num
            peak = max(peak, occupancy)
            if machine_size is not None and occupancy > machine_size:
                findings.append(
                    f"t={time:g}: traced occupancy {occupancy} exceeds "
                    f"machine size {machine_size}"
                )
        elif kind in _RELEASE_KINDS:
            if state.get(job) != "running":
                findings.append(
                    f"job {job}: {kind!r} at t={time:g} but job is not running"
                )
            else:
                num = int(record.data.get("num", 0))
                allocated = held.pop(job, num)
                if num != allocated:
                    findings.append(
                        f"job {job}: releases {num} procs at t={time:g} "
                        f"but held {allocated}"
                    )
                occupancy -= allocated
            state[job] = "done" if kind == "finish" else "failed"
            if kind == "finish" and job in must_finish_at:
                expected = must_finish_at.pop(job)
                if time != expected:
                    findings.append(
                        f"job {job}: terminated by an ECC at t={expected:g} "
                        f"but finished at t={time:g}"
                    )
        elif kind == "cancel" and record.data.get("was") == "queued":
            state[job] = "cancelled"
        elif kind == "ecc":
            before = held.get(job)
            findings.extend(
                _check_ecc(
                    record, job, state, size, machine_size, must_finish_at, held
                )
            )
            after = held.get(job)
            if before is not None and after is not None and after != before:
                # A scheduler-initiated resize moved processors while
                # the job ran; occupancy follows the new allocation.
                occupancy += after - before
                peak = max(peak, occupancy)
                if machine_size is not None and occupancy > machine_size:
                    findings.append(
                        f"t={time:g}: traced occupancy {occupancy} exceeds "
                        f"machine size {machine_size}"
                    )
    for job, expected in sorted(must_finish_at.items()):
        findings.append(
            f"job {job}: terminated by an ECC at t={expected:g} but never finished"
        )
    return TraceCheck(findings=findings, n_records=len(records), peak_occupancy=peak)


#: ECC outcomes that actually modified the target job.
_ECC_APPLIED = {"applied-queued", "applied-running", "terminated-job"}
#: Resource (processor-dimension) vs. time-dimension command tags.
_ECC_RESOURCE = {"EP", "RP"}
_ECC_TIME = {"ET", "RT", "S"}


def _check_ecc(
    record: TraceRecord,
    job: int,
    state: Dict[int, str],
    size: Dict[int, int],
    machine_size: Optional[int],
    must_finish_at: Dict[int, float],
    held: Dict[int, int],
) -> List[str]:
    """Elastic-policy invariants for one applied ``ecc`` record.

    Skips silently when the record predates the post-command ``num``
    field (older traces) — the size-delta checks need it.

    Scheduler-initiated records (``"origin": "scheduler"``, written by
    the Malleable-* policies; docs/malleability.md) follow the same
    EP/RP direction invariants as job-origin ones, but are *allowed*
    to resize a running job — that is their entire point — so they
    update ``held`` instead of raising the fixed-once-started finding.
    """
    data = record.data
    outcome = str(data.get("outcome", ""))
    if outcome == "terminated-job":
        must_finish_at[job] = record.time
    if outcome not in _ECC_APPLIED:
        return []
    ecc_kind = str(data.get("ecc_kind", "?"))
    new_num = data.get("num")
    if new_num is None:
        # Legacy trace: the job's size is no longer known after an
        # applied resource command — stop checking it for this job.
        if ecc_kind in _ECC_RESOURCE:
            size.pop(job, None)
        return []
    new_num = int(new_num)
    findings: List[str] = []
    old_num = size.get(job)
    at = f"at t={record.time:g}"
    if old_num is not None:
        if ecc_kind == "EP" and new_num < old_num:
            findings.append(
                f"job {job}: applied EP {at} shrank size {old_num} -> {new_num}"
            )
        elif ecc_kind == "RP" and new_num > old_num:
            findings.append(
                f"job {job}: applied RP {at} grew size {old_num} -> {new_num}"
            )
        elif ecc_kind in _ECC_TIME and new_num != old_num:
            findings.append(
                f"job {job}: time-dimension {ecc_kind} {at} changed size "
                f"{old_num} -> {new_num}"
            )
    scheduler_origin = data.get("origin") == "scheduler"
    if ecc_kind in _ECC_RESOURCE and state.get(job) == "running":
        if scheduler_origin:
            # Runtime malleability: the job's allocation changes now.
            if job in held:
                held[job] = new_num
        else:
            findings.append(
                f"job {job}: resource ECC {ecc_kind} applied {at} while the "
                "job is running (sizes are fixed once started)"
            )
    if machine_size is not None and new_num > machine_size:
        findings.append(
            f"job {job}: ECC {at} grows size to {new_num}, exceeding "
            f"machine size {machine_size}"
        )
    size[job] = new_num
    return findings


# ----------------------------------------------------------------------
# CLI: ``repro trace <file>``
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro trace`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Filter, summarize and sanity-check exported JSONL traces "
        "(written by --trace-out; schema in docs/observability.md).",
    )
    parser.add_argument("file", help="trace file (JSONL, repro.trace/1 schema)")
    parser.add_argument(
        "--kind", nargs="+", default=None, metavar="K",
        help="only records of these kinds (e.g. start finish job-fail)",
    )
    parser.add_argument(
        "--job", type=int, default=None, metavar="ID",
        help="only records touching this job (a per-job timeline)",
    )
    parser.add_argument(
        "--since", type=float, default=None, metavar="T", help="only records with time >= T"
    )
    parser.add_argument(
        "--until", type=float, default=None, metavar="T", help="only records with time <= T"
    )
    parser.add_argument(
        "--records", action="store_true",
        help="print the (filtered) records themselves, not just the summary",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N records (with --records)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run invariant spot-checks; exit 1 when any fail",
    )
    parser.add_argument(
        "--no-strict", action="store_true",
        help="skip malformed record lines instead of failing",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro trace``; returns the exit code."""
    from repro.obs.trace_io import TraceReadError, read_trace

    args = build_parser().parse_args(argv)
    try:
        trace = read_trace(args.file, strict=not args.no_strict)
    except (OSError, TraceReadError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    meta = trace.meta
    if meta:
        described = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
        print(f"meta: {described}")

    records = filter_records(
        trace.records, kinds=args.kind, job_id=args.job, t0=args.since, t1=args.until
    )
    filtered = len(records) != len(trace.records)
    if filtered:
        print(f"filter matched {len(records)} of {len(trace.records)} records")

    print(summarize(records).render())

    if args.records or args.job is not None:
        shown = records if args.limit is None else records[: args.limit]
        for record in shown:
            print(repr(record))
        if len(shown) < len(records):
            print(f"... {len(records) - len(shown)} more (raise --limit)")

    if args.check:
        if filtered:
            print("note: invariants are checked on the full trace, not the filter")
        machine_size = meta.get("machine_size")
        result = _check(
            trace.records, int(machine_size) if machine_size is not None else None
        )
        if result.ok:
            print(
                f"checks: OK ({result.n_records} records, "
                f"peak traced occupancy {result.peak_occupancy})"
            )
        else:
            for finding in result.findings:
                print(f"CHECK FAILED: {finding}")
            return 1
    return 0


__all__ = [
    "TraceCheck",
    "TraceSummary",
    "check_trace",
    "filter_records",
    "job_timeline",
    "main",
    "summarize",
]
