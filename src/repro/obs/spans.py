"""Hierarchical phase spans: where does the wall time actually go?

Flat telemetry counters (:mod:`repro.obs.telemetry`) say *how often*
the scheduler worked; spans say *where the time went* — per engine/
scheduler phase, with self vs. cumulative attribution and an optional
Chrome trace-event export loadable in Perfetto or ``chrome://tracing``.
The instrumented phases (the :data:`PHASES` catalog) cover the hot
paths ROADMAP item 1 asks to profile: event dispatch, the scheduling
cycle, the DP solve, the EASY backfill scan, capacity-profile
rebuilds, ECC application, checkpoint saves and trace flushes.

Design rules, mirroring the telemetry module:

- **Zero cost when off.**  Hot paths call the module-level
  :func:`begin`/:func:`end` hooks (or read the runner's cached
  recorder attribute); with no recorder :func:`activated`, that is one
  global load plus a ``None`` check.  The engine goes further: its
  inner loop is only instrumented when a recorder is active at
  ``run()`` entry, so the per-event cost when disabled is exactly
  zero.
- **Observe-only.**  Spans never feed back into scheduling; traces are
  byte-identical with spans on or off (CI enforces this across the
  registry).
- **Bounded.**  The Chrome event buffer caps at :data:`MAX_EVENTS`
  entries; later spans still aggregate into the per-phase totals but
  drop from the export, counted by ``events_dropped`` (surfaced as the
  ``span_events_dropped`` telemetry counter).
- **Cheap by default.**  The per-span timeline is only kept when the
  recorder is built with ``timeline=True`` (a Chrome export was
  requested); the default aggregate-only mode skips the per-span tuple
  build entirely, and the engine batches its per-event accounting into
  a single :meth:`SpanRecorder.add_bulk` call per ``run()`` so the
  hottest phase pays two clock reads per event, not a begin/end pair.

>>> recorder = SpanRecorder()
>>> with activated(recorder):
...     outer = begin("schedule_cycle")
...     inner = begin("dp_solve")
...     end(inner)
...     end(outer)
>>> sorted(recorder.phases)
['dp_solve', 'schedule_cycle']
>>> recorder.phases["schedule_cycle"][0]   # count
1
>>> begin("dp_solve") is None              # no active recorder: free
True
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple, Union

#: Canonical instrumented-phase names.  The counter-catalog checker
#: (``tools/check_counter_catalog.py``) expands the dynamic
#: ``span_<phase>`` / ``span_<phase>_s`` / ``span_<phase>_self_s``
#: telemetry families from this tuple, so a new ``begin("...")`` site
#: must add its phase here (and to docs/observability.md) or the docs
#: CI job fails.
PHASES = (
    "event",
    "schedule_cycle",
    "dp_solve",
    "backfill",
    "profile_rebuild",
    "ecc_apply",
    "checkpoint_save",
    "trace_flush",
)

#: Chrome-event buffer cap; past it spans still aggregate but drop
#: from the export (see module docstring).
MAX_EVENTS = 200_000


class SpanRecorder:
    """Collects hierarchical phase spans for one run.

    Nesting is a plain stack: :meth:`begin` pushes an entry and
    returns it, :meth:`end` pops it, so callers hold the token and
    never pay a name lookup.  Per phase name the recorder keeps
    ``[count, cumulative_s, self_s]`` where *self* excludes time spent
    in child spans — the number a profiler sorts by.

    Attributes:
        phases: phase name -> ``[count, cumulative_s, self_s]``.
        events: Bounded ``(name, start_s, duration_s, depth)`` tuples
            for the Chrome export; ``start_s`` is relative to the
            recorder's creation.  Only populated in ``timeline`` mode.
        events_dropped: Spans aggregated but not exported (buffer cap).
        timeline: Whether per-span tuples are kept for the Chrome
            export.  Off by default: aggregate-only mode is what the
            ≤5%-overhead budget is measured against, and it also lets
            the engine use batched event accounting (:meth:`add_bulk`).
        root_child: Cumulative duration of spans closed at stack depth
            zero.  In aggregate mode the engine does not push an
            ``"event"`` span per dispatch; spans opened inside event
            actions therefore close as stack roots, and the engine
            reads this accumulator's delta across its loop to subtract
            child time from the batched event self time.
    """

    __slots__ = (
        "phases",
        "events",
        "events_dropped",
        "max_events",
        "timeline",
        "root_child",
        "_stack",
        "_origin",
    )

    def __init__(self, max_events: int = MAX_EVENTS, timeline: bool = False) -> None:
        self.phases: Dict[str, List[float]] = {}
        self.events: List[Tuple[str, float, float, int]] = []
        self.events_dropped = 0
        self.max_events = max_events
        self.timeline = timeline
        self.root_child = 0.0
        # Open-span stack of [name, start, child_time] entries; end()
        # folds a span's duration into its parent's child_time so self
        # time falls out by subtraction.
        self._stack: List[List[object]] = []
        self._origin = perf_counter()

    # ------------------------------------------------------------------
    def begin(self, name: str) -> List[object]:
        """Open a span; returns the token :meth:`end` expects back."""
        entry: List[object] = [name, perf_counter(), 0.0]
        self._stack.append(entry)
        return entry

    def begin_at(self, name: str, start: float) -> List[object]:
        """:meth:`begin` with a caller-supplied ``perf_counter`` stamp.

        Hot sites that already read the clock for their own accounting
        (the runner's scheduling-cycle wall-time counter) pass the same
        stamp here and to :meth:`end_at`, halving the clock reads a
        span costs them.
        """
        entry: List[object] = [name, start, 0.0]
        self._stack.append(entry)
        return entry

    def end(self, entry: List[object]) -> None:
        """Close the innermost span (must be ``begin``'s return)."""
        self.end_at(entry, perf_counter())

    def end_at(self, entry: List[object], now: float) -> None:
        """:meth:`end` with a caller-supplied ``perf_counter`` stamp."""
        stack = self._stack
        stack.pop()
        name, start, child = entry
        duration = now - start  # type: ignore[operator]
        agg = self.phases.get(name)  # type: ignore[arg-type]
        if agg is None:
            self.phases[name] = [1, duration, duration - child]  # type: ignore[index,operator]
        else:
            agg[0] += 1
            agg[1] += duration
            agg[2] += duration - child  # type: ignore[operator]
        if stack:
            stack[-1][2] += duration  # type: ignore[operator]
        else:
            self.root_child += duration  # type: ignore[operator]
        if self.timeline:
            if len(self.events) < self.max_events:
                self.events.append(
                    (name, start - self._origin, duration, len(stack))  # type: ignore[arg-type]
                )
            else:
                self.events_dropped += 1

    def add_bulk(self, name: str, count: int, cumulative: float, self_time: float) -> None:
        """Fold a pre-measured batch of same-name spans into the totals.

        The engine's aggregate-mode loop times event dispatches with
        plain clock reads and registers them here once per ``run()``
        call — no per-event stack traffic.  ``self_time`` is the
        caller's cumulative minus whatever child time it attributes to
        the batch (the engine uses the :attr:`root_child` delta).
        """
        if count <= 0:
            return
        agg = self.phases.get(name)
        if agg is None:
            self.phases[name] = [count, cumulative, self_time]
        else:
            agg[0] += count
            agg[1] += cumulative
            agg[2] += self_time

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context-manager convenience for non-hot-path callers."""
        token = self.begin(name)
        try:
            yield
        finally:
            self.end(token)

    # ------------------------------------------------------------------
    def fold_into(self, telemetry) -> None:
        """Aggregate per-phase totals into a Telemetry registry.

        Per phase ``p``: counter ``span_<p>`` (entries), timers
        ``span_<p>_s`` (cumulative) and ``span_<p>_self_s`` (self).
        ``span_events_dropped`` counts spans missing from the Chrome
        export.  All names live in the docs/observability.md catalog.
        """
        for name, (count, cumulative, self_time) in sorted(self.phases.items()):
            telemetry.count(f"span_{name}", int(count))
            telemetry.add_time(f"span_{name}_s", cumulative)
            telemetry.add_time(f"span_{name}_self_s", self_time)
        if self.events_dropped:
            telemetry.count("span_events_dropped", self.events_dropped)

    def chrome_trace(self) -> Dict[str, object]:
        """The recorder as a Chrome trace-event JSON document.

        Complete (``"X"``) events on one pid/tid with microsecond
        timestamps; Perfetto/``chrome://tracing`` reconstruct the
        nesting from the timestamps alone.
        """
        return {
            "traceEvents": [
                {
                    "name": name,
                    "ph": "X",
                    "ts": round(start * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                }
                for name, start, duration, _depth in self.events
            ],
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, target: Union[str, Path]) -> None:
        """Write the :meth:`chrome_trace` document as compact JSON.

        Serialized by hand rather than ``json.dump``: the document is
        one fixed-schema array, and direct ``%``-formatting writes it
        nearly an order of magnitude faster, which keeps the export
        from dominating small profiled runs.  Phase names are escaped
        through ``json.dumps`` (memoized — there are only a handful).
        """
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        quoted: Dict[str, str] = {}
        parts = []
        for name, start, duration, _depth in self.events:
            qname = quoted.get(name)
            if qname is None:
                qname = quoted[name] = json.dumps(name)
            parts.append(
                '{"name":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":0}'
                % (qname, start * 1e6, duration * 1e6)
            )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"traceEvents":[')
            fh.write(",".join(parts))
            fh.write('],"displayTimeUnit":"ms"}\n')


def phase_table(snapshot, total_key: str = "run_wall_s") -> str:
    """Per-phase hot-spot table from a telemetry snapshot.

    Reads the ``span_*`` names :meth:`SpanRecorder.fold_into` wrote —
    so it works on any :class:`~repro.obs.telemetry.TelemetrySnapshot`
    (a finished run's ``metrics.telemetry``), no recorder required.
    Rows sort by self time, the profiler's ordering; the share column
    is self time over the ``total_key`` timer when present.

    >>> from repro.obs.telemetry import Telemetry
    >>> telemetry = Telemetry()
    >>> recorder = SpanRecorder()
    >>> token = recorder.begin("dp_solve"); recorder.end(token)
    >>> recorder.fold_into(telemetry)
    >>> print(phase_table(telemetry.snapshot()).splitlines()[0])
    phase     count  cum (s)  self (s)  self %
    """
    from repro.metrics.report import format_table

    phases = []
    for name, count in snapshot.counters.items():
        if not name.startswith("span_") or name == "span_events_dropped":
            continue
        phase = name[len("span_") :]
        phases.append(
            (
                phase,
                count,
                snapshot.timers.get(f"span_{phase}_s", 0.0),
                snapshot.timers.get(f"span_{phase}_self_s", 0.0),
            )
        )
    if not phases:
        return "(no span telemetry; run with spans enabled)"
    total = snapshot.timers.get(total_key, 0.0)
    if total <= 0.0:
        total = sum(self_time for _, _, _, self_time in phases)
    phases.sort(key=lambda row: row[3], reverse=True)
    rows = [
        [
            phase,
            count,
            f"{cumulative:.4f}",
            f"{self_time:.4f}",
            f"{(self_time / total if total else 0.0):.1%}",
        ]
        for phase, count, cumulative, self_time in phases
    ]
    table = format_table(["phase", "count", "cum (s)", "self (s)", "self %"], rows)
    # format_table right-justifies; phase names read better flush left.
    lines = table.splitlines()
    width = len(lines[1].split("  ")[0])
    return "\n".join(
        f"{line[:width].strip():<{width}}{line[width:]}" for line in lines
    )


# ----------------------------------------------------------------------
# Module-level hook for instrumented library code
# ----------------------------------------------------------------------
_ACTIVE: Optional[SpanRecorder] = None


def current() -> Optional[SpanRecorder]:
    """The recorder installed by the innermost :func:`activated`."""
    return _ACTIVE


@contextmanager
def activated(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Install ``recorder`` as the active recorder for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def begin(name: str) -> Optional[List[object]]:
    """Open a span on the active recorder; ``None`` when none is active.

    The hook instrumented library code calls unconditionally — one
    global load plus a comparison when no recorder is installed.
    """
    recorder = _ACTIVE
    if recorder is None:
        return None
    return recorder.begin(name)


def end(token: Optional[List[object]]) -> None:
    """Close a span opened by :func:`begin` (no-op on a ``None`` token)."""
    if token is not None:
        recorder = _ACTIVE
        if recorder is not None:
            recorder.end(token)


__all__ = [
    "MAX_EVENTS",
    "PHASES",
    "SpanRecorder",
    "activated",
    "begin",
    "current",
    "end",
    "phase_table",
]
