"""Sweep progress: per-run events with cache-hit accounting and ETA.

A long ``--parallel`` sweep used to print nothing until it finished.
This module defines the progress protocol the executor
(:mod:`repro.experiments.parallel`) speaks: a
:class:`ProgressTracker` owned by the **parent process** turns each
completed run into a :class:`ProgressEvent`, and any callable can
consume those events — :class:`ProgressReporter` renders them as
status lines on a terminal.

Fork-pool safety is structural, not accidental: workers never see the
tracker or the callback (neither is pickled into a
:class:`~repro.experiments.parallel.RunSpec`), so events fire exactly
once per run, in the parent, in submission order.

**ETA semantics**: cache hits are counted separately and treated as
free; the estimate is ``mean cold-run wall time × runs remaining``,
and is ``None`` until the first cold run completes.  Serial-retry
events (a worker crashed or timed out and the run re-executed in the
parent, docs/resilience.md) are flagged so reporters can surface the
degradation.

>>> events = []
>>> clock = iter([0.0, 0.0, 2.0, 4.0]).__next__
>>> tracker = ProgressTracker(total=3, callback=events.append, clock=clock)
>>> tracker.hit()                   # cache hit at t=0
>>> tracker.ran()                   # cold run finished at t=2
>>> tracker.ran(retried=True)       # serial retry finished at t=4
>>> [(e.kind, e.done, e.total) for e in events]
[('hit', 1, 3), ('run', 2, 3), ('retry', 3, 3)]
>>> events[1].eta_s                 # one cold run took 2s; one run left
2.0
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO


@dataclass(frozen=True)
class ProgressEvent:
    """One run of a batch completed (from cache, fresh, or by retry).

    Attributes:
        kind: ``"hit"`` (served from the run cache), ``"run"``
            (simulated), or ``"retry"`` (simulated serially in the
            parent after a worker crash/timeout).
        done: Runs completed so far, this one included.
        total: Runs in the batch.
        cached: ``done`` runs that were cache hits.
        fresh: ``done`` runs that were actually simulated (includes
            retries).
        retried: ``fresh`` runs that needed the serial-retry path.
        elapsed_s: Wall seconds since the batch started.
        eta_s: Estimated seconds to completion (None until the first
            cold run finishes; assumes remaining runs are cold).
    """

    kind: str
    done: int
    total: int
    cached: int
    fresh: int
    retried: int
    elapsed_s: float
    eta_s: Optional[float]


class ProgressTracker:
    """Parent-side accounting that turns run completions into events.

    Args:
        total: Number of runs in the batch.
        callback: Receives one :class:`ProgressEvent` per completion.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        total: int,
        callback: Callable[[ProgressEvent], None],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self._callback = callback
        self._clock = clock
        self._started = clock()
        self._cached = 0
        self._fresh = 0
        self._retried = 0

    # ------------------------------------------------------------------
    def hit(self) -> None:
        """One run was served from the run cache."""
        self._cached += 1
        self._emit("hit")

    def ran(self, retried: bool = False) -> None:
        """One run was simulated (``retried``: on the serial-retry path)."""
        self._fresh += 1
        if retried:
            self._retried += 1
        self._emit("retry" if retried else "run")

    # ------------------------------------------------------------------
    def _emit(self, kind: str) -> None:
        done = self._cached + self._fresh
        elapsed = self._clock() - self._started
        eta: Optional[float] = None
        if self._fresh > 0:
            remaining = self.total - done
            eta = (elapsed / self._fresh) * remaining
        self._callback(
            ProgressEvent(
                kind=kind,
                done=done,
                total=self.total,
                cached=self._cached,
                fresh=self._fresh,
                retried=self._retried,
                elapsed_s=elapsed,
                eta_s=eta,
            )
        )


def format_duration(seconds: float) -> str:
    """Compact human duration: ``4.2s``, ``2m07s``, ``1h02m``.

    >>> format_duration(4.21)
    '4.2s'
    >>> format_duration(127)
    '2m07s'
    >>> format_duration(3725)
    '1h02m'
    """
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def format_event(event: ProgressEvent) -> str:
    """One status line for ``event``.

    >>> format_event(ProgressEvent("run", 3, 12, 2, 1, 0, 4.2, 12.8))
    'runs 3/12 (2 cached, 1 simulated) elapsed 4.2s eta 12.8s'
    """
    line = (
        f"runs {event.done}/{event.total} "
        f"({event.cached} cached, {event.fresh} simulated)"
    )
    if event.retried:
        line += f" [{event.retried} serial-retried]"
    line += f" elapsed {format_duration(event.elapsed_s)}"
    if event.eta_s is not None:
        line += f" eta {format_duration(event.eta_s)}"
    return line


class ProgressReporter:
    """Renders progress events as status lines on a stream.

    On a TTY, lines overwrite each other (carriage return); on plain
    streams (CI logs, files) each event is its own line.  Serial-retry
    events are always written on their own line so the warning is
    never overwritten.

    Args:
        stream: Output stream; defaults to ``sys.stderr``.
        label: Optional prefix naming the batch (e.g. the sweep).
    """

    def __init__(self, stream: Optional[TextIO] = None, label: str = "") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._dirty = False

    def __call__(self, event: ProgressEvent) -> None:
        line = format_event(event)
        if self.label:
            line = f"{self.label}: {line}"
        if event.kind == "retry":
            line += "  (worker crash/timeout; retried serially)"
        if self._tty and event.kind != "retry":
            self.stream.write("\r" + line)
            self._dirty = True
            if event.done == event.total:
                self.stream.write("\n")
                self._dirty = False
        else:
            if self._dirty:
                self.stream.write("\n")
                self._dirty = False
            self.stream.write(line + "\n")
        self.stream.flush()


class ProgressSummary:
    """Silently collects events into end-of-batch totals.

    The CLI always installs one of these (optionally forwarding to a
    :class:`ProgressReporter` when ``--progress`` is on), so the final
    sweep summary — cached vs. simulated runs, serial retries, cache
    hit rate — is printed even on otherwise-quiet runs.

    >>> summary = ProgressSummary()
    >>> summary(ProgressEvent("hit", 1, 3, 1, 0, 0, 0.0, None))
    >>> summary(ProgressEvent("run", 2, 3, 1, 1, 0, 2.0, 2.0))
    >>> summary(ProgressEvent("retry", 3, 3, 1, 2, 1, 4.0, 0.0))
    >>> summary.render()
    'sweep: 3 runs in 4.0s (1 cached, 2 simulated, 1 serial-retried; 33% cache hit rate)'
    """

    def __init__(
        self, forward: Optional[Callable[[ProgressEvent], None]] = None
    ) -> None:
        self.last: Optional[ProgressEvent] = None
        self._forward = forward

    def __call__(self, event: ProgressEvent) -> None:
        self.last = event
        if self._forward is not None:
            self._forward(event)

    def render(
        self,
        hit_rate: Optional[float] = None,
        samples_dropped: Optional[int] = None,
    ) -> str:
        """The end-of-sweep summary line.

        Args:
            hit_rate: Cache hit rate to report; defaults to
                ``cached / done`` from the events (pass
                ``CacheStats.hit_rate`` for the cache's own view,
                which also counts lookups outside this batch).
            samples_dropped: Total telemetry ``*_samples_dropped``
                across the batch's runs; reported when positive so
                bounded-series truncation (docs/observability.md) is
                visible without ``--telemetry``.
        """
        event = self.last
        if event is None:
            return "sweep: no runs"
        if hit_rate is None:
            hit_rate = event.cached / event.done if event.done else 0.0
        parts = [f"{event.cached} cached", f"{event.fresh} simulated"]
        if event.retried:
            parts.append(f"{event.retried} serial-retried")
        if samples_dropped:
            parts.append(f"{samples_dropped} telemetry samples dropped")
        return (
            f"sweep: {event.done} runs in {format_duration(event.elapsed_s)} "
            f"({', '.join(parts)}; {hit_rate:.0%} cache hit rate)"
        )


__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "ProgressSummary",
    "ProgressTracker",
    "format_duration",
    "format_event",
]
