"""Self-contained run reports from exported traces: ``repro report``.

Turns one or more ``repro.trace/1`` files (or a sweep directory of
them) into a single Markdown or HTML document: a cross-trace
comparison table, per-trace §V metrics recomputed by the
:mod:`~repro.obs.analytics` replay, invariant check results, ECC
episode counts, and charts.  Everything is built from pieces the repo
already has — :func:`repro.metrics.report.format_table` for tables,
:func:`repro.metrics.timeline.render_timeline` /
:func:`~repro.metrics.timeline.occupancy_sparkline` for occupancy,
:func:`repro.experiments.ascii_plot.ascii_plot` for queue-depth
curves — so the report and the benchmark harness can never drift
apart.  The HTML flavour embeds the same text blocks plus inline SVG
step charts; it references no external assets, so the single output
file is the whole artifact (CI uploads it as-is).

Typical use::

    repro sim --algorithms EASY LOS --trace-out runs/run.jsonl
    repro report runs/ -o report.md
    repro report runs/run.EASY.jsonl runs/run.LOS.jsonl --html -o report.html
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from html import escape
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.ascii_plot import ascii_plot
from repro.metrics.report import format_table
from repro.metrics.timeline import occupancy_sparkline, render_timeline
from repro.obs.analytics import TraceMetrics, TraceReplay, recompute_metrics, replay
from repro.obs.inspect import check_trace
from repro.obs.trace_io import read_trace

#: Render per-job Gantt rows only for runs at most this large; bigger
#: runs get the sparkline alone (a 5000-row Gantt helps nobody).
TIMELINE_JOB_LIMIT = 60

#: Columns of the cross-trace comparison table, in order.
COMPARISON_COLUMNS = (
    "n_jobs",
    "utilization",
    "mean_wait",
    "slowdown",
    "bounded_slowdown",
    "makespan",
)


@dataclass(frozen=True)
class TraceSection:
    """One analyzed trace: everything a report section needs."""

    label: str
    path: str
    result: TraceReplay
    metrics: TraceMetrics
    findings: List[str]

    @property
    def ok(self) -> bool:
        """Whether the invariant spot-checks all passed."""
        return not self.findings


def collect_traces(paths: Sequence[str]) -> List[str]:
    """Expand the CLI inputs into a sorted list of trace files.

    Directories contribute every ``*.jsonl`` inside them (a sweep
    directory); plain paths pass through.  Raises ``FileNotFoundError``
    for missing inputs and ``ValueError`` when nothing matches.
    """
    files: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(str(p) for p in path.glob("*.jsonl"))
            if not found:
                raise ValueError(f"no *.jsonl traces in directory {raw!r}")
            files.extend(found)
        elif path.exists():
            files.append(str(path))
        else:
            raise FileNotFoundError(f"no such trace: {raw!r}")
    if not files:
        raise ValueError("no trace files given")
    return files


def analyze_trace(path: str) -> TraceSection:
    """Read, replay, recompute and spot-check one trace file."""
    trace = read_trace(path)
    machine_size = trace.meta.get("machine_size")
    findings = check_trace(
        trace.records, int(machine_size) if machine_size is not None else None
    )
    result = replay(trace.records, trace.meta)
    label = str(trace.meta.get("algorithm") or Path(path).stem)
    return TraceSection(
        label=label,
        path=path,
        result=result,
        metrics=recompute_metrics(result),
        findings=findings,
    )


def _unique_labels(sections: Sequence[TraceSection]) -> List[TraceSection]:
    """Disambiguate duplicate labels by appending the file stem."""
    counts: Dict[str, int] = {}
    for section in sections:
        counts[section.label] = counts.get(section.label, 0) + 1
    out = []
    for section in sections:
        if counts[section.label] > 1:
            section = TraceSection(
                label=f"{section.label} ({Path(section.path).stem})",
                path=section.path,
                result=section.result,
                metrics=section.metrics,
                findings=section.findings,
            )
        out.append(section)
    return out


def comparison_table(sections: Sequence[TraceSection]) -> str:
    """The cross-trace table (one row per trace), monospace."""
    headers = ["trace"] + list(COMPARISON_COLUMNS)
    rows = []
    for section in sections:
        row = section.metrics.as_row()
        rows.append([section.label] + [row[c] for c in COMPARISON_COLUMNS])
    return format_table(headers, rows)


def _ecc_summary(section: TraceSection) -> str:
    """One line describing the trace's elastic activity."""
    episodes = section.result.ecc_episodes
    if not episodes:
        return "no elastic (ECC) activity"
    applied = sum(1 for e in episodes if e.applied)
    kinds: Dict[str, int] = {}
    for episode in episodes:
        kinds[episode.kind] = kinds.get(episode.kind, 0) + 1
    shape = ", ".join(f"{k}={kinds[k]}" for k in sorted(kinds))
    scheduler = sum(1 for e in episodes if e.origin == "scheduler")
    by_origin = f"; {scheduler} scheduler-initiated" if scheduler else ""
    return f"{len(episodes)} ECC episodes ({applied} applied; {shape}{by_origin})"


def _queue_depth_plot(section: TraceSection, *, width: int = 64) -> Optional[str]:
    """Queue depth over time as an ASCII chart (None when flat-empty)."""
    points = section.result.queue_depth
    if len(points) < 2:
        return None
    times = [t for t, _ in points]
    depths = [float(d) for _, d in points]
    return ascii_plot(
        times,
        {"queue depth": depths},
        width=width,
        height=10,
        title=f"queue depth vs time — {section.label}",
    )


def _check_line(section: TraceSection) -> str:
    if section.ok:
        return (
            f"invariants: OK ({section.result.n_trace_records} records, "
            f"peak busy {section.result.peak_level})"
        )
    return "invariants: {} FAILED — {}".format(
        len(section.findings), "; ".join(section.findings[:3])
    )


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def render_markdown(sections: Sequence[TraceSection], *, title: str) -> str:
    """The full report as GitHub-flavoured Markdown (self-contained)."""
    sections = _unique_labels(sections)
    lines = [
        f"# {title}",
        "",
        f"{len(sections)} trace(s) analyzed by `repro report` "
        "(metrics recomputed from the event stream alone; "
        "see docs/observability.md).",
        "",
        "## Comparison",
        "",
        "```",
        comparison_table(sections),
        "```",
        "",
    ]
    for section in sections:
        lines += _markdown_section(section)
    return "\n".join(lines)


def _markdown_section(section: TraceSection) -> List[str]:
    result = section.result
    meta = result.meta
    machine = result.machine_size
    lines = [
        f"## {section.label}",
        "",
        f"- trace: `{section.path}`",
        f"- {_check_line(section)}",
        f"- {_ecc_summary(section)}",
    ]
    if meta.get("faulty"):
        lines.append("- fault injection was active during this run")
    lines += [
        "",
        "```",
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in section.metrics.as_row().items()],
        ),
        "```",
        "",
    ]
    if result.records and machine:
        if len(result.records) <= TIMELINE_JOB_LIMIT:
            chart = render_timeline(result.records, machine, max_rows=TIMELINE_JOB_LIMIT)
        else:
            chart = (
                f"occupancy ({len(result.records)} jobs)\n|"
                + occupancy_sparkline(result.records, machine)
                + "|"
            )
        lines += ["```", chart, "```", ""]
    queue_plot = _queue_depth_plot(section)
    if queue_plot:
        lines += ["```", queue_plot, "```", ""]
    return lines


# ----------------------------------------------------------------------
# HTML (single file, no external assets)
# ----------------------------------------------------------------------
_HTML_STYLE = """
body { font-family: sans-serif; max-width: 72em; margin: 1em auto; padding: 0 1em; }
pre { background: #f6f8fa; padding: 0.8em; overflow-x: auto; line-height: 1.2; }
h1 { border-bottom: 2px solid #ddd; } h2 { border-bottom: 1px solid #eee; }
.bad { color: #b00; font-weight: bold; } .ok { color: #080; }
svg { background: #fcfcfc; border: 1px solid #eee; }
figcaption { font-size: 0.85em; color: #555; }
""".strip()


def _svg_steps(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 560,
    height: int = 120,
    color: str = "#2266bb",
    caption: str = "",
) -> str:
    """A step function as an inline SVG polyline (self-contained)."""
    if len(points) < 2:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_max = max(max(ys), 1.0)
    x_span = (x_max - x_min) or 1.0
    pad = 4
    coords: List[str] = []
    previous_y: Optional[float] = None
    for x, y in points:
        px = pad + (x - x_min) / x_span * (width - 2 * pad)
        py = height - pad - y / y_max * (height - 2 * pad)
        if previous_y is not None:
            prev_py = height - pad - previous_y / y_max * (height - 2 * pad)
            coords.append(f"{px:.1f},{prev_py:.1f}")  # horizontal run, then step
        coords.append(f"{px:.1f},{py:.1f}")
        previous_y = y
    polyline = " ".join(coords)
    return (
        f'<figure><svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{polyline}"/></svg>'
        f"<figcaption>{escape(caption)} (peak {y_max:g})</figcaption></figure>"
    )


def render_html(sections: Sequence[TraceSection], *, title: str) -> str:
    """The full report as a single self-contained HTML document."""
    sections = _unique_labels(sections)
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>{len(sections)} trace(s) analyzed by <code>repro report</code>; "
        "metrics recomputed from the event stream alone "
        "(docs/observability.md).</p>",
        "<h2>Comparison</h2>",
        f"<pre>{escape(comparison_table(sections))}</pre>",
    ]
    for section in sections:
        parts += _html_section(section)
    parts.append("</body></html>")
    return "\n".join(parts)


def _html_section(section: TraceSection) -> List[str]:
    result = section.result
    status = (
        f'<span class="ok">{escape(_check_line(section))}</span>'
        if section.ok
        else f'<span class="bad">{escape(_check_line(section))}</span>'
    )
    parts = [
        f"<h2>{escape(section.label)}</h2>",
        f"<p><code>{escape(section.path)}</code><br>{status}<br>"
        f"{escape(_ecc_summary(section))}</p>",
        "<pre>{}</pre>".format(
            escape(
                format_table(
                    ["metric", "value"],
                    [[k, v] for k, v in section.metrics.as_row().items()],
                )
            )
        ),
    ]
    machine = result.machine_size
    if result.records and machine:
        if len(result.records) <= TIMELINE_JOB_LIMIT:
            chart = render_timeline(result.records, machine, max_rows=TIMELINE_JOB_LIMIT)
        else:
            chart = "|" + occupancy_sparkline(result.records, machine) + "|"
        parts.append(f"<pre>{escape(chart)}</pre>")
    if len(result.utilization_steps) >= 2:
        parts.append(
            _svg_steps(
                [(t, float(level)) for t, level in result.utilization_steps],
                caption=f"busy processors over time — {section.label}",
            )
        )
    if len(result.queue_depth) >= 2:
        parts.append(
            _svg_steps(
                [(t, float(d)) for t, d in result.queue_depth],
                color="#bb4422",
                caption=f"queue depth over time — {section.label}",
            )
        )
    return parts


def build_report(
    paths: Sequence[str], *, html: bool = False, title: str = "Trace analytics report"
) -> str:
    """Analyze ``paths`` (files and/or sweep directories) into one report."""
    sections = [analyze_trace(path) for path in collect_traces(paths)]
    render = render_html if html else render_markdown
    return render(sections, title=title)


# ----------------------------------------------------------------------
# CLI: ``repro report``
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro report`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Build a self-contained Markdown/HTML report from "
        "exported JSONL traces or a sweep directory of them.",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="trace files and/or directories containing *.jsonl traces",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the report here (default: stdout)",
    )
    parser.add_argument(
        "--html", action="store_true",
        help="emit a single self-contained HTML document instead of Markdown",
    )
    parser.add_argument(
        "--title", default="Trace analytics report", help="report heading"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro report``; returns the exit code."""
    from repro.obs.trace_io import TraceReadError

    args = build_parser().parse_args(argv)
    try:
        report = build_report(args.paths, html=args.html, title=args.title)
    except (OSError, ValueError, TraceReadError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


__all__ = [
    "TIMELINE_JOB_LIMIT",
    "TraceSection",
    "analyze_trace",
    "build_report",
    "collect_traces",
    "comparison_table",
    "main",
    "render_html",
    "render_markdown",
]
