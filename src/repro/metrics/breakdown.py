"""Per-class metric breakdowns.

The paper's explanations constantly reason about job *classes* —
"when there are a lot of large sized jobs ... the large sized jobs
will not be tightly packed and very few small jobs will be available
to fill in the holes" (§V-A) — but reports only whole-run means.
This module computes the per-class statistics those explanations
predict, so the mechanism behind a result can be inspected:

- by size class (small ≤ 96 processors vs large, the paper's BG/P
  boundary — configurable),
- by kind (batch vs dedicated),
- by outcome (killed at kill-by vs completed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.metrics.records import JobRecord
from repro.metrics.stats import mean, paper_slowdown
from repro.workload.job import JobKind


@dataclass(frozen=True)
class ClassStats:
    """Aggregates for one class of jobs."""

    label: str
    n_jobs: int
    mean_wait: float
    mean_runtime: float
    slowdown: float
    max_wait: float
    total_work: float  # processor-seconds executed

    @classmethod
    def from_records(cls, label: str, records: Sequence[JobRecord]) -> "ClassStats":
        """Aggregate a record subset (empty subsets allowed)."""
        waits = [r.wait for r in records]
        runtimes = [r.runtime for r in records]
        mean_wait = mean(waits)
        mean_runtime = mean(runtimes)
        return cls(
            label=label,
            n_jobs=len(records),
            mean_wait=mean_wait,
            mean_runtime=mean_runtime,
            slowdown=paper_slowdown(mean_wait, mean_runtime),
            max_wait=max(waits, default=0.0),
            total_work=sum(r.num * r.runtime for r in records),
        )


def breakdown(
    records: Sequence[JobRecord],
    classifier: Callable[[JobRecord], str],
) -> Dict[str, ClassStats]:
    """Group records by ``classifier`` and aggregate each group."""
    groups: Dict[str, List[JobRecord]] = {}
    for record in records:
        groups.setdefault(classifier(record), []).append(record)
    return {
        label: ClassStats.from_records(label, group)
        for label, group in sorted(groups.items())
    }


def by_size_class(
    records: Sequence[JobRecord], small_threshold: int = 96
) -> Dict[str, ClassStats]:
    """Small vs large jobs (the paper's P_S boundary by default)."""
    return breakdown(
        records,
        lambda r: "small" if r.num <= small_threshold else "large",
    )


def by_kind(records: Sequence[JobRecord]) -> Dict[str, ClassStats]:
    """Batch vs dedicated jobs."""
    return breakdown(
        records,
        lambda r: "dedicated" if r.kind is JobKind.DEDICATED else "batch",
    )


def by_outcome(records: Sequence[JobRecord]) -> Dict[str, ClassStats]:
    """Killed-at-estimate vs naturally completed jobs."""
    return breakdown(records, lambda r: "killed" if r.killed else "completed")


def format_breakdown(groups: Dict[str, ClassStats], title: str = "") -> str:
    """Monospace table of a breakdown."""
    from repro.metrics.report import format_table

    rows = [
        [
            stats.label,
            stats.n_jobs,
            round(stats.mean_wait, 1),
            round(stats.mean_runtime, 1),
            round(stats.slowdown, 3),
            round(stats.max_wait, 1),
        ]
        for stats in groups.values()
    ]
    table = format_table(
        ["class", "jobs", "mean wait", "mean runtime", "slowdown", "max wait"], rows
    )
    return f"{title}\n{table}" if title else table


__all__ = [
    "ClassStats",
    "breakdown",
    "by_kind",
    "by_outcome",
    "by_size_class",
    "format_breakdown",
]
