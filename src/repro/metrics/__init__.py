"""Performance metrics (§V).

The paper reports *mean values* of system utilization, job waiting
time and slowdown, with slowdown defined as the ratio of means
``(mean_wait + mean_runtime) / mean_runtime``.  We compute those
exactly (:mod:`repro.metrics.stats`), collect per-job records during
simulation (:mod:`repro.metrics.records`), and format comparison
tables (:mod:`repro.metrics.report`).
"""

from repro.metrics.online import (
    OnlineAggregator,
    OnlineSummary,
    P2Quantile,
    cross_validate_online,
)
from repro.metrics.records import FailureRecord, JobRecord, RunMetrics
from repro.metrics.stats import (
    bounded_slowdown,
    improvement_percent,
    max_improvement,
    mean,
    paper_slowdown,
    per_job_slowdowns,
)
from repro.metrics.report import format_comparison_table, format_metrics_table

__all__ = [
    "FailureRecord",
    "JobRecord",
    "OnlineAggregator",
    "OnlineSummary",
    "P2Quantile",
    "RunMetrics",
    "bounded_slowdown",
    "cross_validate_online",
    "format_comparison_table",
    "format_metrics_table",
    "improvement_percent",
    "max_improvement",
    "mean",
    "paper_slowdown",
    "per_job_slowdowns",
]
