"""Per-job records and per-run aggregate metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.metrics.queue_stats import QueueSummary
from repro.metrics.stats import (
    bounded_slowdown,
    mean,
    paper_slowdown,
    per_job_slowdowns,
)
from repro.workload.job import Job, JobKind, JobState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.metrics.online import OnlineSummary
    from repro.obs.telemetry import TelemetrySnapshot


@dataclass(frozen=True)
class JobRecord:
    """Immutable completion record of one job.

    Extracted from the mutable :class:`~repro.workload.job.Job` when
    it finishes, so metrics never depend on later mutation.
    """

    job_id: int
    kind: JobKind
    num: int
    submit: float
    start: float
    finish: float
    requested_start: Optional[float] = None
    eccs_applied: int = 0
    killed: bool = False
    #: True when the user cancelled the job while it was running.
    cancelled: bool = False

    @property
    def wait(self) -> float:
        """Queueing delay in seconds."""
        return self.start - self.submit

    @property
    def runtime(self) -> float:
        """Realized runtime in seconds."""
        return self.finish - self.start

    @property
    def dedicated_delay(self) -> Optional[float]:
        """Start lateness vs. the rigid requested start (dedicated only)."""
        if self.requested_start is None:
            return None
        return max(0.0, self.start - self.requested_start)

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        """Snapshot a finished job."""
        if job.start_time is None or job.finish_time is None:
            raise ValueError(f"job {job.job_id} has not completed")
        return cls(
            job_id=job.job_id,
            kind=job.kind,
            num=job.num,
            submit=job.submit,
            start=job.start_time,
            finish=job.finish_time,
            requested_start=job.requested_start,
            eccs_applied=job.ecc_count,
            killed=job.killed,
            cancelled=job.state is JobState.CANCELLED,
        )


@dataclass(frozen=True)
class CancellationRecord:
    """A job withdrawn from the queue before it ever started.

    SWF logs mark these with status 5; they consume queue capacity but
    no processors, so they are excluded from wait/runtime statistics
    (standard practice in backfilling studies) and reported separately.
    """

    job_id: int
    kind: JobKind
    num: int
    submit: float
    cancelled_at: float

    @property
    def queued_for(self) -> float:
        """How long the job sat in the queue before withdrawal."""
        return self.cancelled_at - self.submit


@dataclass(frozen=True)
class FailureRecord:
    """A job that exhausted its retry budget (fault injection).

    Permanently failed jobs never complete, so they have no
    :class:`JobRecord`; their story — attempts consumed, processor-
    seconds of work thrown away — is reported separately, like
    cancellations.

    Attributes:
        job_id: The job.
        kind: Batch or dedicated.
        num: Requested processors.
        submit: Original submission time.
        failed_at: Instant of the final, budget-exhausting failure.
        attempts: Total attempts consumed (``max_retries + 1``).
        lost_work: Cumulative processor-seconds of discarded partial
            execution across all the job's attempts.
        reason: Cause of the final failure (``"crash"`` for a
            job-level fault, ``"evicted"`` for a pset failure).
    """

    job_id: int
    kind: JobKind
    num: int
    submit: float
    failed_at: float
    attempts: int
    lost_work: float
    reason: str


@dataclass
class RunMetrics:
    """Aggregates of one simulation run (one plotted point in §V).

    Attributes:
        algorithm: Registry name of the policy.
        machine_size: ``M``.
        records: Completion records of every finished job.
        utilization: Mean utilization over the run window (exact
            integral; see :class:`repro.cluster.UtilizationTracker`).
        makespan: First submission to last completion.
        offered_load: The paper's Load of the input workload.
        ecc_stats: Outcome counts from the ECC processor (empty for
            non-elastic runs).
        events_processed: Discrete events the simulator fired during
            the run (0 for hand-built metrics); the numerator of the
            perf benchmark's events/sec throughput figure.
    """

    algorithm: str
    machine_size: int
    records: List[JobRecord]
    utilization: float
    makespan: float
    offered_load: float = 0.0
    ecc_stats: Dict[str, int] = field(default_factory=dict)
    events_processed: int = 0
    #: Time-averaged queue dynamics (None for hand-built metrics).
    queue: Optional[QueueSummary] = None
    #: Jobs withdrawn from the queue before starting (SWF status 5).
    cancelled_records: List["CancellationRecord"] = field(default_factory=list)
    # --- resilience (docs/resilience.md; all zero on fault-free runs) ---
    #: Jobs that exhausted their retry budget and never completed.
    failed_records: List["FailureRecord"] = field(default_factory=list)
    #: Processor-seconds of partial execution discarded by failures and
    #: evictions (after any checkpoint credit).
    lost_work: float = 0.0
    #: Times any job re-entered the batch queue after a failure.
    requeue_count: int = 0
    #: Seconds the machine spent with >= 1 pset offline.
    degraded_time: float = 0.0
    #: Pset failures injected during the run.
    node_failures: int = 0
    # --- observability (docs/observability.md) ---
    #: Run telemetry: counters, wall timers, queue-depth timeseries.
    #: ``compare=False`` is load-bearing: the timers are wall-clock and
    #: therefore machine-dependent, while `RunMetrics` equality is the
    #: repo's determinism contract (serial == parallel == traced) and
    #: must see only the scheduling outcomes.  None for hand-built
    #: metrics and entries cached before this field existed.
    telemetry: Optional["TelemetrySnapshot"] = field(
        default=None, compare=False, repr=False
    )
    #: O(1)-memory online aggregate (:mod:`repro.metrics.online`),
    #: populated by runs with ``online=True``.  ``compare=False`` like
    #: ``telemetry``: whether online aggregation ran is an
    #: observability choice, not a scheduling outcome, and streamed
    #: runs with ``retain_records=False`` must still compare equal to
    #: nothing-dropped runs on the fields both populate.  With
    #: ``retain_records=False`` the ``records`` list is empty and this
    #: summary is the only per-job statistics source.
    online: Optional["OnlineSummary"] = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Number of completed jobs."""
        return len(self.records)

    @property
    def n_cancelled(self) -> int:
        """Jobs withdrawn from the queue before starting."""
        return len(self.cancelled_records)

    @property
    def failed_jobs(self) -> int:
        """Jobs that permanently failed (retry budget exhausted)."""
        return len(self.failed_records)

    @property
    def mean_wait(self) -> float:
        """Mean job waiting time (seconds)."""
        return mean([r.wait for r in self.records])

    @property
    def mean_runtime(self) -> float:
        """Mean realized runtime (seconds)."""
        return mean([r.runtime for r in self.records])

    @property
    def slowdown(self) -> float:
        """The paper's slowdown: ``(mean wait + mean runtime) / mean runtime``."""
        return paper_slowdown(self.mean_wait, self.mean_runtime)

    @property
    def mean_per_job_slowdown(self) -> float:
        """Mean of per-job slowdowns ``(wait + run) / run`` (extra metric)."""
        return mean(
            per_job_slowdowns(
                [(r.wait, r.runtime) for r in self.records]
            )
        )

    @property
    def mean_response(self) -> float:
        """Mean response time ``wait + runtime`` (seconds)."""
        return mean(r.wait + r.runtime for r in self.records)

    @property
    def mean_bounded_slowdown(self) -> float:
        """Mean Feitelson bounded slowdown (10 s threshold).

        Cross-validated against the trace-recomputed value by the
        observability oracle (:mod:`repro.obs.analytics`).
        """
        return mean(bounded_slowdown((r.wait, r.runtime) for r in self.records))

    # ------------------------------------------------------------------
    # Heterogeneous extras
    # ------------------------------------------------------------------
    def dedicated_records(self) -> List[JobRecord]:
        """Records of dedicated jobs only."""
        return [r for r in self.records if r.kind is JobKind.DEDICATED]

    @property
    def dedicated_on_time_rate(self) -> float:
        """Fraction of dedicated jobs started at their requested time."""
        dedicated = self.dedicated_records()
        if not dedicated:
            return 1.0
        on_time = sum(1 for r in dedicated if (r.dedicated_delay or 0.0) == 0.0)
        return on_time / len(dedicated)

    @property
    def mean_dedicated_delay(self) -> float:
        """Mean start lateness of dedicated jobs (0 when none)."""
        dedicated = self.dedicated_records()
        return mean([r.dedicated_delay or 0.0 for r in dedicated])

    def as_row(self) -> Dict[str, float]:
        """Flat dict for tabular reports."""
        return {
            "utilization": self.utilization,
            "mean_wait": self.mean_wait,
            "slowdown": self.slowdown,
            "mean_runtime": self.mean_runtime,
            "makespan": self.makespan,
            "offered_load": self.offered_load,
            "n_jobs": float(self.n_jobs),
            "failed_jobs": float(self.failed_jobs),
            "requeue_count": float(self.requeue_count),
            "lost_work": self.lost_work,
            "degraded_time": self.degraded_time,
            "node_failures": float(self.node_failures),
        }


__all__ = ["CancellationRecord", "FailureRecord", "JobRecord", "RunMetrics"]
