"""Exporting results: CSV and JSON for records, runs and sweeps.

Downstream analysis (pandas, R, gnuplot) wants flat files, not Python
objects.  Everything here is stdlib-only (``csv``/``json``) and
streams through writers, so exports scale to large sweeps.

Telemetry (docs/observability.md): runs that carry a
:class:`~repro.obs.telemetry.TelemetrySnapshot` can export it — JSON
always includes it, CSV adds ``tm_``-prefixed columns on request
(``telemetry=True``), keeping the default schema stable for existing
consumers.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, TextIO, Union

from repro.metrics.records import JobRecord, RunMetrics

PathOrFile = Union[str, Path, TextIO]

#: Prefix of opt-in telemetry columns in per-run CSVs.
TELEMETRY_PREFIX = "tm_"

#: Column order of the per-job CSV schema.
JOB_RECORD_FIELDS = (
    "job_id",
    "kind",
    "num",
    "submit",
    "start",
    "finish",
    "wait",
    "runtime",
    "requested_start",
    "dedicated_delay",
    "eccs_applied",
    "killed",
)

#: Column order of the per-run CSV schema.
RUN_FIELDS = (
    "algorithm",
    "machine_size",
    "n_jobs",
    "offered_load",
    "utilization",
    "mean_wait",
    "mean_runtime",
    "slowdown",
    "makespan",
)


def _open(target: PathOrFile, write_fn) -> None:
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8", newline="") as fh:
            write_fn(fh)
    else:
        write_fn(target)


def _record_row(record: JobRecord) -> dict:
    return {
        "job_id": record.job_id,
        "kind": record.kind.value,
        "num": record.num,
        "submit": record.submit,
        "start": record.start,
        "finish": record.finish,
        "wait": record.wait,
        "runtime": record.runtime,
        "requested_start": (
            "" if record.requested_start is None else record.requested_start
        ),
        "dedicated_delay": (
            "" if record.dedicated_delay is None else record.dedicated_delay
        ),
        "eccs_applied": record.eccs_applied,
        "killed": record.killed,
    }


def records_to_csv(records: Iterable[JobRecord], target: PathOrFile) -> None:
    """Write per-job completion records as CSV."""

    def write(fh: TextIO) -> None:
        writer = csv.DictWriter(fh, fieldnames=JOB_RECORD_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(_record_row(record))

    _open(target, write)


def _run_row(metrics: RunMetrics) -> dict:
    return {
        "algorithm": metrics.algorithm,
        "machine_size": metrics.machine_size,
        "n_jobs": metrics.n_jobs,
        "offered_load": metrics.offered_load,
        "utilization": metrics.utilization,
        "mean_wait": metrics.mean_wait,
        "mean_runtime": metrics.mean_runtime,
        "slowdown": metrics.slowdown,
        "makespan": metrics.makespan,
    }


def _telemetry_columns(metrics: RunMetrics) -> Dict[str, float]:
    """``tm_``-prefixed flat telemetry columns (empty when untracked)."""
    snapshot = metrics.telemetry
    if snapshot is None:
        return {}
    columns = {
        TELEMETRY_PREFIX + name: value
        for name, value in snapshot.as_columns().items()
    }
    for name in snapshot.series:
        columns[f"{TELEMETRY_PREFIX}{name}_peak"] = snapshot.series_max(name)
    return columns


def _telemetry_fieldnames(rows: Sequence[Dict[str, float]]) -> List[str]:
    """Sorted union of telemetry columns across all exported runs."""
    names = set()
    for row in rows:
        names.update(row)
    return sorted(names)


def runs_to_csv(
    runs: Iterable[RunMetrics], target: PathOrFile, *, telemetry: bool = False
) -> None:
    """Write run aggregates (one row per run) as CSV.

    ``telemetry=True`` appends ``tm_``-prefixed counter/timer columns
    (docs/observability.md); runs without telemetry leave them blank.
    """
    if not telemetry:

        def write(fh: TextIO) -> None:
            writer = csv.DictWriter(fh, fieldnames=RUN_FIELDS)
            writer.writeheader()
            for run in runs:
                writer.writerow(_run_row(run))

        _open(target, write)
        return

    runs = list(runs)
    extra_rows = [_telemetry_columns(run) for run in runs]
    extra_fields = _telemetry_fieldnames(extra_rows)

    def write_telemetry(fh: TextIO) -> None:
        writer = csv.DictWriter(
            fh, fieldnames=(*RUN_FIELDS, *extra_fields), restval=""
        )
        writer.writeheader()
        for run, extra in zip(runs, extra_rows):
            writer.writerow({**_run_row(run), **extra})

    _open(target, write_telemetry)


def sweep_to_csv(sweep, target: PathOrFile, *, telemetry: bool = False) -> None:
    """Write a :class:`~repro.experiments.sweep.SweepResult` as long-form CSV.

    Columns: sweep label, sweep value, algorithm, then the run fields —
    one row per (sweep point, algorithm).  ``telemetry=True`` appends
    ``tm_``-prefixed columns as in :func:`runs_to_csv`.
    """
    all_runs = [run for runs in sweep.series.values() for run in runs]
    extra_fields: List[str] = []
    if telemetry:
        extra_fields = _telemetry_fieldnames(
            [_telemetry_columns(run) for run in all_runs]
        )

    def write(fh: TextIO) -> None:
        fieldnames = (sweep.sweep_label, *RUN_FIELDS, *extra_fields)
        writer = csv.DictWriter(fh, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for algorithm, runs in sweep.series.items():
            for value, run in zip(sweep.sweep_values, runs):
                row = _run_row(run)
                row[sweep.sweep_label] = value
                if telemetry:
                    row.update(_telemetry_columns(run))
                writer.writerow(row)

    _open(target, write)


def run_to_json(metrics: RunMetrics, target: PathOrFile, indent: int = 2) -> None:
    """Write one run (aggregates + every job record) as JSON."""
    payload = {
        **_run_row(metrics),
        "ecc_stats": metrics.ecc_stats,
        "dedicated_on_time_rate": metrics.dedicated_on_time_rate,
        "mean_dedicated_delay": metrics.mean_dedicated_delay,
        "records": [
            {k: (None if v == "" else v) for k, v in _record_row(r).items()}
            for r in metrics.records
        ],
    }
    if metrics.telemetry is not None:
        payload["telemetry"] = {
            "counters": dict(metrics.telemetry.counters),
            "timers": dict(metrics.telemetry.timers),
            "series": {
                name: [list(point) for point in points]
                for name, points in metrics.telemetry.series.items()
            },
        }

    def write(fh: TextIO) -> None:
        json.dump(payload, fh, indent=indent)
        fh.write("\n")

    _open(target, write)


__all__ = [
    "JOB_RECORD_FIELDS",
    "RUN_FIELDS",
    "TELEMETRY_PREFIX",
    "records_to_csv",
    "run_to_json",
    "runs_to_csv",
    "sweep_to_csv",
]
