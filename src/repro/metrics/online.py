"""O(1)-memory online aggregation of the paper's SV metrics.

At archive scale (100k–1M jobs) retaining a :class:`JobRecord` per
completion dominates memory.  :class:`OnlineAggregator` consumes
completion records one at a time and keeps only scalars: running sums
for every mean the paper reports, a P² estimator for the p95 waiting
time, and per-class (batch/dedicated) breakdowns.

Two accuracy regimes, both load-bearing for the test-suite:

- **Means are exact.**  Sums accumulate in completion order — the same
  order and the same left-to-right float additions
  :class:`~repro.metrics.records.RunMetrics` performs over its record
  list — so ``mean_wait``/``mean_runtime``/``mean_response``/
  ``mean_bounded_slowdown`` (and the derived ratio-of-means slowdown)
  are *bitwise identical* to the exact per-record path, not merely
  close.  The cross-validation tolerance of 1e-9 is therefore slack,
  not a requirement.
- **Quantiles are estimates.**  The p95 wait uses the Jain & Chlamtac
  P² algorithm (five markers, O(1) memory, no samples retained).  It
  is exact up to five observations and approximate beyond; the
  documented tolerance is :data:`P2_REL_TOLERANCE` relative error
  against the same-definition exact quantile on well-behaved (unimodal,
  finite-variance) wait distributions, which the property tests
  enforce across seeds.  Adversarial distributions can exceed it —
  anything needing certified quantiles must replay records or traces.

The exact per-record path stays the oracle: eager runs keep building
``RunMetrics.records``, and :func:`cross_validate_online` mirrors
:func:`repro.obs.analytics.cross_validate` so CI can assert the two
pipelines agree on every run (docs/scaling.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.metrics.records import JobRecord, RunMetrics
from repro.metrics.stats import paper_slowdown
from repro.workload.job import JobKind

#: Documented relative tolerance of the P² p95 estimate vs the exact
#: quantile (same interpolation definition) on well-behaved wait
#: distributions.  Enforced by tests/metrics/test_online.py.
P2_REL_TOLERANCE = 0.15

#: Feitelson bounded-slowdown threshold (seconds) — must match
#: :func:`repro.metrics.stats.bounded_slowdown`.
_BSLD_THRESHOLD = 10.0


def exact_quantile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation quantile (numpy's default definition).

    The same definition :class:`P2Quantile` converges to; used by the
    oracle side of the quantile cross-validation tests.  Returns 0.0
    for an empty sequence.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {p}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = p * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Five markers track the minimum, the p/2, p and (1+p)/2 quantiles
    and the maximum; marker heights move by parabolic (falling back to
    linear) interpolation as observations arrive.  Memory is O(1) and
    each observation costs O(1).

    Exact while fewer than five observations have been seen (the
    estimate then interpolates the sorted sample directly).
    """

    __slots__ = ("p", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rates = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    # ------------------------------------------------------------------
    def observe(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(float(x))
            if self.count == 5:
                heights.sort()
            return

        positions = self._positions
        # Locate the marker cell containing x, adjusting extremes.
        if x < heights[0]:
            heights[0] = float(x)
            cell = 0
        elif x >= heights[4]:
            heights[4] = float(x)
            cell = 3
        else:
            cell = 0
            while x >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        for index, rate in enumerate(self._rates):
            desired[index] += rate

        # Nudge the three interior markers toward their desired
        # positions, moving heights by the P² parabolic formula and
        # falling back to linear when the parabola would de-sort them.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        return heights[i] + step / (positions[i + 1] - positions[i - 1]) * (
            (positions[i] - positions[i - 1] + step)
            * (heights[i + 1] - heights[i])
            / (positions[i + 1] - positions[i])
            + (positions[i + 1] - positions[i] - step)
            * (heights[i] - heights[i - 1])
            / (positions[i] - positions[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        j = i + int(step)
        return heights[i] + step * (heights[j] - heights[i]) / (
            positions[j] - positions[i]
        )

    # ------------------------------------------------------------------
    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return exact_quantile(self._heights, self.p)
        return self._heights[2]


@dataclass(frozen=True)
class ClassSummary:
    """Per-:class:`~repro.workload.job.JobKind` completion breakdown."""

    n_jobs: int
    mean_wait: float
    mean_runtime: float

    def as_row(self) -> Dict[str, float]:
        """Flat dict for tabular reports."""
        return {
            "n_jobs": float(self.n_jobs),
            "mean_wait": self.mean_wait,
            "mean_runtime": self.mean_runtime,
        }


@dataclass(frozen=True)
class OnlineSummary:
    """End-of-run view of an :class:`OnlineAggregator`.

    The scalar aggregates a streaming run reports instead of (or
    alongside) the per-record :class:`~repro.metrics.records.RunMetrics`
    list.  ``utilization``/``makespan`` are stamped by the runner from
    its (already O(1)) utilization tracker.
    """

    n_jobs: int
    mean_wait: float
    mean_runtime: float
    mean_response: float
    slowdown: float
    mean_bounded_slowdown: float
    mean_per_job_slowdown: float
    p95_wait: float
    utilization: float
    makespan: float
    mean_dedicated_delay: float
    dedicated_on_time_rate: float
    by_class: Dict[str, ClassSummary] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        """Flat dict for tabular reports."""
        return {
            "n_jobs": float(self.n_jobs),
            "mean_wait": self.mean_wait,
            "mean_runtime": self.mean_runtime,
            "mean_response": self.mean_response,
            "slowdown": self.slowdown,
            "mean_bounded_slowdown": self.mean_bounded_slowdown,
            "p95_wait": self.p95_wait,
            "utilization": self.utilization,
            "makespan": self.makespan,
        }


class _ClassAccumulator:
    __slots__ = ("count", "wait_sum", "runtime_sum")

    def __init__(self) -> None:
        self.count = 0
        self.wait_sum = 0.0
        self.runtime_sum = 0.0


class OnlineAggregator:
    """Streaming accumulator of the paper's SV metrics, O(1) memory.

    Feed completion records in completion order with :meth:`observe`;
    read back with :meth:`summary`.  See the module docstring for the
    exact-vs-estimated contract.
    """

    __slots__ = (
        "count",
        "_wait_sum",
        "_runtime_sum",
        "_response_sum",
        "_bsld_sum",
        "_pjsd_sum",
        "_p95_wait",
        "_by_kind",
        "_dedicated_delay_sum",
        "_dedicated_on_time",
    )

    def __init__(self) -> None:
        self.count = 0
        self._wait_sum = 0.0
        self._runtime_sum = 0.0
        self._response_sum = 0.0
        self._bsld_sum = 0.0
        self._pjsd_sum = 0.0
        self._p95_wait = P2Quantile(0.95)
        self._by_kind: Dict[JobKind, _ClassAccumulator] = {}
        self._dedicated_delay_sum = 0.0
        self._dedicated_on_time = 0

    # ------------------------------------------------------------------
    def observe(self, record: JobRecord) -> None:
        """Fold one completion record into every aggregate."""
        wait = record.wait
        runtime = record.runtime
        self.count += 1
        self._wait_sum += wait
        self._runtime_sum += runtime
        self._response_sum += wait + runtime
        # Same per-job terms as repro.metrics.stats.bounded_slowdown /
        # per_job_slowdowns, accumulated instead of listed.
        response = wait + runtime
        bsld = response / (runtime if runtime > _BSLD_THRESHOLD else _BSLD_THRESHOLD)
        self._bsld_sum += bsld if bsld > 1.0 else 1.0
        self._pjsd_sum += response / (runtime if runtime > 1.0 else 1.0)
        self._p95_wait.observe(wait)
        acc = self._by_kind.get(record.kind)
        if acc is None:
            acc = self._by_kind[record.kind] = _ClassAccumulator()
        acc.count += 1
        acc.wait_sum += wait
        acc.runtime_sum += runtime
        if record.kind is JobKind.DEDICATED:
            delay = record.dedicated_delay or 0.0
            self._dedicated_delay_sum += delay
            if delay == 0.0:
                self._dedicated_on_time += 1

    def observe_all(self, records: Iterable[JobRecord]) -> None:
        """Fold an iterable of records (tests / oracle replays)."""
        for record in records:
            self.observe(record)

    # ------------------------------------------------------------------
    @property
    def mean_wait(self) -> float:
        """Running mean waiting time (exact)."""
        return self._wait_sum / self.count if self.count else 0.0

    @property
    def mean_runtime(self) -> float:
        """Running mean realized runtime (exact)."""
        return self._runtime_sum / self.count if self.count else 0.0

    @property
    def p95_wait(self) -> float:
        """P² estimate of the 95th-percentile wait."""
        return self._p95_wait.value()

    def summary(self, *, utilization: float = 0.0, makespan: float = 0.0) -> OnlineSummary:
        """Freeze the aggregates (runner supplies the tracker scalars)."""
        n = self.count
        dedicated = self._by_kind.get(JobKind.DEDICATED)
        n_dedicated = dedicated.count if dedicated is not None else 0
        return OnlineSummary(
            n_jobs=n,
            mean_wait=self.mean_wait,
            mean_runtime=self.mean_runtime,
            mean_response=self._response_sum / n if n else 0.0,
            slowdown=paper_slowdown(self.mean_wait, self.mean_runtime),
            mean_bounded_slowdown=self._bsld_sum / n if n else 0.0,
            mean_per_job_slowdown=self._pjsd_sum / n if n else 0.0,
            p95_wait=self.p95_wait,
            utilization=utilization,
            makespan=makespan,
            mean_dedicated_delay=(
                self._dedicated_delay_sum / n_dedicated if n_dedicated else 0.0
            ),
            dedicated_on_time_rate=(
                self._dedicated_on_time / n_dedicated if n_dedicated else 1.0
            ),
            by_class={
                kind.value: ClassSummary(
                    n_jobs=acc.count,
                    mean_wait=acc.wait_sum / acc.count,
                    mean_runtime=acc.runtime_sum / acc.count,
                )
                for kind, acc in self._by_kind.items()
            },
        )


# ----------------------------------------------------------------------
# Cross-validation against the exact per-record oracle
# ----------------------------------------------------------------------
#: (OnlineSummary attribute, RunMetrics attribute) pairs compared by
#: :func:`cross_validate_online` — the streaming analogue of
#: :data:`repro.obs.analytics.ORACLE_METRICS`.
ONLINE_ORACLE_METRICS = (
    ("mean_wait", "mean_wait"),
    ("mean_runtime", "mean_runtime"),
    ("mean_response", "mean_response"),
    ("slowdown", "slowdown"),
    ("mean_bounded_slowdown", "mean_bounded_slowdown"),
    ("mean_per_job_slowdown", "mean_per_job_slowdown"),
    ("utilization", "utilization"),
    ("makespan", "makespan"),
)


def cross_validate_online(
    summary: OnlineSummary,
    metrics: RunMetrics,
    *,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> List[str]:
    """Compare online aggregates against exact-record ``RunMetrics``.

    Mirrors :func:`repro.obs.analytics.cross_validate`: returns
    human-readable mismatch findings (empty = the two pipelines agree).
    The job count is compared exactly; float metrics with
    ``math.isclose``.  The P² p95 is *not* compared here — it has its
    own documented tolerance (:data:`P2_REL_TOLERANCE`) and oracle.
    """
    findings: List[str] = []
    if summary.n_jobs != metrics.n_jobs:
        findings.append(
            f"n_jobs: online saw {summary.n_jobs} completions, "
            f"RunMetrics has {metrics.n_jobs}"
        )
    for online_name, run_name in ONLINE_ORACLE_METRICS:
        ours = getattr(summary, online_name)
        theirs = getattr(metrics, run_name)
        if not math.isclose(ours, theirs, rel_tol=rel_tol, abs_tol=abs_tol):
            findings.append(
                f"{online_name}: online computes {ours!r}, "
                f"RunMetrics reports {theirs!r} "
                f"(delta {abs(ours - theirs):.3e})"
            )
    return findings


def assert_online_consistent(
    summary: OnlineSummary,
    metrics: RunMetrics,
    *,
    rel_tol: float = 1e-9,
    context: str = "",
) -> None:
    """Hard-error form of :func:`cross_validate_online`.

    Raises:
        ValueError: when any compared metric disagrees; the message
            lists every mismatch.
    """
    findings = cross_validate_online(summary, metrics, rel_tol=rel_tol)
    if findings:
        where = f" [{context}]" if context else ""
        raise ValueError(
            f"online metrics disagree with exact RunMetrics{where}:\n  "
            + "\n  ".join(findings)
        )


__all__ = [
    "ClassSummary",
    "OnlineAggregator",
    "OnlineSummary",
    "ONLINE_ORACLE_METRICS",
    "P2Quantile",
    "P2_REL_TOLERANCE",
    "assert_online_consistent",
    "cross_validate_online",
    "exact_quantile",
]
