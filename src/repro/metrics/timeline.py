"""Text timeline (Gantt-style) rendering of a simulation.

Turns completion records into a terminal-friendly occupancy chart:
one row per job (start → finish bar) plus a machine-occupancy sparkline
— invaluable for eyeballing packing decisions when developing policies.

Example output::

    t = 0 .. 1200 s, 10 columns of 120 s
    #12  32p |   ████      |
    #13  64p |     ██████  |
    busy %   | 259 999 741 |
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.metrics.records import JobRecord

#: Eight-level block characters for the occupancy sparkline.
_SPARK = " ▁▂▃▄▅▆▇█"


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


def render_timeline(
    records: Sequence[JobRecord],
    machine_size: int,
    *,
    width: int = 72,
    max_rows: int = 40,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Render job spans and machine occupancy as text.

    Args:
        records: Completion records (any order).
        machine_size: ``M``, for the occupancy percentage.
        width: Chart width in character cells.
        max_rows: At most this many job rows (earliest starts first;
            a summary line notes the rest).
        t0 / t1: Window bounds; default to the records' extent.

    Returns:
        The multi-line chart; a placeholder string when empty.

    >>> render_timeline([], machine_size=320)
    '(no completed jobs)'
    """
    if not records:
        return "(no completed jobs)"
    ordered = sorted(records, key=lambda r: (r.start, r.job_id))
    lo = min(r.submit for r in ordered) if t0 is None else t0
    hi = max(r.finish for r in ordered) if t1 is None else t1
    span = hi - lo
    if span <= 0:
        return "(degenerate window)"
    cell = span / width

    def col(time: float) -> int:
        return int(_clamp((time - lo) / cell, 0, width - 1))

    lines = [f"t = {lo:g} .. {hi:g} s, {width} columns of {cell:.1f} s"]
    shown = ordered[:max_rows]
    id_width = max(len(str(r.job_id)) for r in shown)
    for record in shown:
        bar = [" "] * width
        start_col, end_col = col(record.start), col(record.finish)
        for index in range(start_col, max(start_col, end_col) + 1):
            bar[index] = "█"
        wait_col = col(record.submit)
        for index in range(wait_col, start_col):
            bar[index] = "·"  # queueing delay
        tag = "D" if record.requested_start is not None else " "
        lines.append(
            f"#{record.job_id:<{id_width}} {record.num:>4}p{tag}|{''.join(bar)}|"
        )
    if len(ordered) > max_rows:
        lines.append(f"... {len(ordered) - max_rows} more jobs not shown")

    lines.append("busy      |" + occupancy_sparkline(ordered, machine_size, width=width) + "|")
    return "\n".join(lines)


def occupancy_sparkline(
    records: Sequence[JobRecord],
    machine_size: int,
    *,
    width: int = 72,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Machine occupancy over time as a block-character sparkline.

    Each cell shows the *time-averaged* busy fraction of its window,
    computed exactly from the job spans (no sampling).
    """
    if not records or machine_size <= 0:
        return " " * width
    lo = min(r.submit for r in records) if t0 is None else t0
    hi = max(r.finish for r in records) if t1 is None else t1
    span = hi - lo
    if span <= 0:
        return " " * width
    cell = span / width
    busy = [0.0] * width  # processor-seconds per cell
    for record in records:
        start, finish = max(record.start, lo), min(record.finish, hi)
        if finish <= start:
            continue
        first = int(_clamp((start - lo) / cell, 0, width - 1))
        last = int(_clamp((finish - lo) / cell, 0, width - 1))
        for index in range(first, last + 1):
            cell_lo = lo + index * cell
            cell_hi = cell_lo + cell
            overlap = min(finish, cell_hi) - max(start, cell_lo)
            if overlap > 0:
                busy[index] += record.num * overlap
    capacity = machine_size * cell
    chars: List[str] = []
    for value in busy:
        fraction = _clamp(value / capacity, 0.0, 1.0)
        chars.append(_SPARK[int(round(fraction * (len(_SPARK) - 1)))])
    return "".join(chars)


__all__ = ["occupancy_sparkline", "render_timeline"]
