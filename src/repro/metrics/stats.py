"""Statistical helpers for the paper's metrics.

Pinned definitions:

- *slowdown* (§V): the ratio of means
  ``(mean wait + mean runtime) / mean runtime``, **not** the mean of
  per-job ratios.  Both are provided; the paper's tables use the
  former.
- *maximum % improvement* (Tables IV–VII): improvements are computed
  per load point and the maximum over the sweep is reported, because
  "the improvements are not uniform over the entire variation in
  load" (§V-A).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (empty run)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def paper_slowdown(mean_wait: float, mean_runtime: float) -> float:
    """The paper's slowdown fraction (ratio of means).

    Returns 1.0 (no slowdown) for a degenerate zero-runtime run.

    >>> paper_slowdown(100.0, 50.0)
    3.0
    >>> paper_slowdown(0.0, 400.0)
    1.0
    """
    if mean_runtime <= 0:
        return 1.0
    return (mean_wait + mean_runtime) / mean_runtime


def per_job_slowdowns(pairs: Iterable[Tuple[float, float]]) -> List[float]:
    """Per-job slowdowns ``(wait + run) / run`` for (wait, run) pairs.

    Zero-runtime jobs are guarded with a 1-second floor, the usual
    convention in the backfilling literature.
    """
    out = []
    for wait, runtime in pairs:
        denom = max(1.0, runtime)
        out.append((wait + runtime) / denom)
    return out


def bounded_slowdown(
    pairs: Iterable[Tuple[float, float]], threshold: float = 10.0
) -> List[float]:
    """Bounded slowdown (Feitelson): short jobs do not dominate.

    ``max(1, (wait + run) / max(run, threshold))`` per job.
    """
    out = []
    for wait, runtime in pairs:
        out.append(max(1.0, (wait + runtime) / max(runtime, threshold)))
    return out


def improvement_percent(ours: float, baseline: float, higher_is_better: bool) -> float:
    """Percentage improvement of ``ours`` over ``baseline``.

    For higher-is-better metrics (utilization): ``(ours - base)/base``.
    For lower-is-better metrics (wait, slowdown): ``(base - ours)/base``.
    Positive = we improved.  Returns 0.0 for a zero baseline.

    >>> round(improvement_percent(0.82, 0.80, higher_is_better=True), 3)
    2.5
    >>> improvement_percent(80.0, 100.0, higher_is_better=False)
    20.0
    """
    if baseline == 0:
        return 0.0
    if higher_is_better:
        return 100.0 * (ours - baseline) / baseline
    return 100.0 * (baseline - ours) / baseline


def max_improvement(
    ours: Sequence[float], baseline: Sequence[float], higher_is_better: bool
) -> float:
    """Maximum per-point % improvement across a sweep (Tables IV–VII).

    Raises:
        ValueError: on mismatched sweep lengths.
    """
    if len(ours) != len(baseline):
        raise ValueError(
            f"sweeps have different lengths: {len(ours)} vs {len(baseline)}"
        )
    if not ours:
        return 0.0
    return max(
        improvement_percent(a, b, higher_is_better) for a, b in zip(ours, baseline)
    )


__all__ = [
    "bounded_slowdown",
    "improvement_percent",
    "max_improvement",
    "mean",
    "paper_slowdown",
    "per_job_slowdowns",
]
