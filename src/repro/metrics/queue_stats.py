"""Queue-dynamics statistics.

The paper's §V reasons about queue behaviour (jobs waiting behind a
large head, fragmentation holes) but reports only per-job means.  A
:class:`QueueTracker` integrates the *queue process* exactly:

- queue length (jobs waiting) over time,
- backlog (processor-seconds of waiting work) over time,

from which mean queue length and mean backlog follow by Little's-law-
style time averaging.  The runner feeds it on every arrival/start, so
the numbers are exact integrals, not samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.accounting import UtilizationTracker


@dataclass(frozen=True)
class QueueSummary:
    """Time-averaged queue statistics over a run window."""

    mean_queue_length: float
    max_queue_length: int
    mean_backlog: float  # processor-seconds of estimated waiting work
    max_backlog: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"queue: mean {self.mean_queue_length:.2f} / max {self.max_queue_length} jobs; "
            f"backlog: mean {self.mean_backlog:.3g} / max {self.max_backlog:.3g} proc·s"
        )


class QueueTracker:
    """Exact integrator of queue length and backlog step functions."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._length = UtilizationTracker(start_time=start_time)
        # Backlog is real-valued; reuse the integer tracker by scaling
        # would lose precision, so keep a parallel float integral.
        self._backlog_level = 0.0
        self._backlog_area = 0.0
        self._backlog_last_time = start_time
        self._max_backlog = 0.0
        self._current_length = 0
        # Tracked explicitly: the UtilizationTracker collapses
        # same-instant transitions, which is right for time averages
        # but would hide zero-measure transient peaks (N arrivals and
        # a start at one instant).
        self._max_length = 0

    # ------------------------------------------------------------------
    def on_enqueue(self, time: float, work: float) -> None:
        """A job entered the waiting queue (``work`` = num × estimate)."""
        self._advance(time)
        length = self._current_length + 1
        self._current_length = length
        if length > self._max_length:
            self._max_length = length
        backlog = self._backlog_level + work
        self._backlog_level = backlog
        if backlog > self._max_backlog:
            self._max_backlog = backlog
        self._length.observe(time, length)

    def on_dequeue(self, time: float, work: float) -> None:
        """A job left the waiting queue (started)."""
        self._advance(time)
        length = self._current_length - 1
        self._current_length = length
        assert length >= 0, "queue length went negative"
        backlog = self._backlog_level - work
        self._backlog_level = backlog if backlog > 0.0 else 0.0
        self._length.observe(time, length)

    def on_work_changed(self, time: float, delta: float) -> None:
        """A queued job's estimated work changed (ECC on a queued job)."""
        self._advance(time)
        backlog = self._backlog_level + delta
        if backlog < 0.0:
            backlog = 0.0
        self._backlog_level = backlog
        if backlog > self._max_backlog:
            self._max_backlog = backlog

    def _advance(self, time: float) -> None:
        dt = time - self._backlog_last_time
        if dt > 0:
            self._backlog_area += self._backlog_level * dt
            self._backlog_last_time = time

    @property
    def samples_dropped(self) -> int:
        """Observations thinned out of the bounded queue-length view.

        The integrals (means, maxima) are exact regardless; this only
        reports how much of the *step-function view* the bounded
        buffer discarded (zero until the run outgrows the cap).
        """
        return self._length.samples_dropped

    # ------------------------------------------------------------------
    def summary(self, until: Optional[float] = None) -> QueueSummary:
        """Time-averaged statistics over ``[start, until]``."""
        horizon = self._length.last_time if until is None else until
        self._advance(horizon)
        span = horizon - self._length.start_time
        mean_backlog = self._backlog_area / span if span > 0 else 0.0
        total_length_area = self._length.busy_area(until=horizon)
        mean_length = total_length_area / span if span > 0 else 0.0
        return QueueSummary(
            mean_queue_length=mean_length,
            max_queue_length=self._max_length,
            mean_backlog=mean_backlog,
            max_backlog=self._max_backlog,
        )


__all__ = ["QueueSummary", "QueueTracker"]
