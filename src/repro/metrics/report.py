"""Plain-text tables for the experiment harness.

The benchmark scripts print paper-shaped tables: one row per load
point (figures) or one row per metric with max-% improvements
(Tables IV–VII).  Everything is simple monospace formatting — the
harness targets terminals and CI logs, not publications.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def _format_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a monospace table with a header rule."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    rendered_rows = [
        [_format_cell(cell, 0).strip() for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rows else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_metrics_table(
    sweep_label: str,
    sweep_values: Sequence[float],
    series: Mapping[str, Sequence[Mapping[str, float]]],
    metrics: Sequence[str] = ("utilization", "mean_wait"),
) -> str:
    """Figure-style table: sweep variable × algorithm × metric.

    Args:
        sweep_label: Name of the x-axis variable (``Load``, ``C_s``).
        sweep_values: The x-axis points.
        series: algorithm name -> list of per-point metric dicts
            (aligned with ``sweep_values``).
        metrics: Which metric keys to print.

    Returns:
        One table block per metric, separated by blank lines.
    """
    blocks = []
    algorithms = list(series)
    for metric in metrics:
        headers = [sweep_label] + algorithms
        rows: List[List[object]] = []
        for index, x in enumerate(sweep_values):
            row: List[object] = [x]
            for algorithm in algorithms:
                row.append(series[algorithm][index][metric])
            rows.append(row)
        blocks.append(f"metric: {metric}\n" + format_table(headers, rows))
    return "\n\n".join(blocks)


def format_comparison_table(
    title: str,
    improvements: Mapping[str, Mapping[str, float]],
) -> str:
    """Tables IV–VII style: metric rows × baseline columns (max %).

    Args:
        title: Table caption.
        improvements: metric name -> {baseline name -> max % improvement}.
    """
    baselines: List[str] = []
    for per_metric in improvements.values():
        for baseline in per_metric:
            if baseline not in baselines:
                baselines.append(baseline)
    headers = ["Performance Metric"] + [f"{b} (%)" for b in baselines]
    rows = []
    for metric, per_metric in improvements.items():
        rows.append([metric] + [per_metric.get(b, float("nan")) for b in baselines])
    return f"{title}\n{format_table(headers, rows)}"


__all__ = ["format_comparison_table", "format_metrics_table", "format_table"]
