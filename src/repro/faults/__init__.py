"""Fault injection and resilience (docs/resilience.md).

The paper evaluates its schedulers on an idealized failure-free
BlueGene/P; this subpackage adds the disruption model a
production-scale system must survive:

- :mod:`repro.faults.model` — declarative, seeded fault configuration
  (:class:`FaultConfig`: MTBF/MTTR pset failures, per-job failure
  probability, poison jobs) and the requeue-and-retry policy
  (:class:`RetryPolicy`), plus the CLI spec parsers,
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which wires
  deterministic ``NodeFail``/``NodeRepair``/``JobFail`` events onto a
  :class:`~repro.sim.Simulator` and drives eviction, lost-work
  accounting, checkpoint-aware requeueing and retry exhaustion through
  the :class:`~repro.experiments.runner.SimulationRunner`.

Everything is deterministic given ``FaultConfig.seed``: the node
failure/repair stream is one substream, and each (job, attempt) pair
draws from its own :class:`numpy.random.SeedSequence`-derived stream,
so outcomes do not depend on event interleaving.
"""

from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FaultConfig,
    RetryPolicy,
    format_faults_spec,
    parse_faults_spec,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "RetryPolicy",
    "format_faults_spec",
    "parse_faults_spec",
]
