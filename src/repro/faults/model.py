"""Fault and retry configuration (docs/resilience.md).

Two frozen dataclasses describe *what goes wrong* and *how the system
responds*:

- :class:`FaultConfig` — the disruption model: an MTBF/MTTR-driven
  pset failure-and-repair process, a per-attempt job failure
  probability, and an explicit poison-job list (jobs that fail on
  every attempt, the classic crash-loop).
- :class:`RetryPolicy` — requeue-and-retry semantics: retry budget,
  exponential resubmission backoff, and an optional checkpoint model
  that preserves completed work across restarts of elastic jobs.

Both are hashable value objects so they can participate in the
experiment cache key (:func:`repro.experiments.cache.run_key`).

The CLI encodes a fault model as a compact ``key=value`` spec::

    --faults mtbf=86400,mttr=3600,seed=7,pfail=0.02,poison=3|9

parsed by :func:`parse_faults_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic, seeded fault model for one simulation run.

    Attributes:
        mtbf: Mean time between pset failures in seconds (exponential
            inter-failure times).  ``0`` disables node failures.
        mttr: Mean time to repair a failed pset in seconds
            (exponential repair times).  Must be positive when node
            failures are enabled.
        seed: Root seed of every fault random stream.  Two runs with
            identical workload, scheduler and ``FaultConfig`` produce
            byte-identical metrics.
        p_job_fail: Probability that any given *attempt* of a job
            crashes mid-run (uniform over the attempt's runtime).
        poison_jobs: Job ids that crash on **every** attempt,
            regardless of ``p_job_fail`` — they exercise the retry
            exhaustion path deterministically.
    """

    mtbf: float = 0.0
    mttr: float = 3600.0
    seed: int = 0
    p_job_fail: float = 0.0
    poison_jobs: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.mtbf < 0:
            raise ValueError(f"mtbf must be >= 0, got {self.mtbf}")
        if self.mtbf > 0 and self.mttr <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr}")
        if not 0.0 <= self.p_job_fail <= 1.0:
            raise ValueError(f"p_job_fail must be in [0, 1], got {self.p_job_fail}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        # normalize: sorted unique tuple so equal configs hash equally
        object.__setattr__(
            self, "poison_jobs", tuple(sorted(set(int(j) for j in self.poison_jobs)))
        )

    @property
    def node_faults_enabled(self) -> bool:
        """Whether the pset failure/repair process is active."""
        return self.mtbf > 0

    @property
    def job_faults_enabled(self) -> bool:
        """Whether any job-level failures can occur."""
        return self.p_job_fail > 0 or bool(self.poison_jobs)

    @property
    def enabled(self) -> bool:
        """Whether this config injects any faults at all."""
        return self.node_faults_enabled or self.job_faults_enabled


@dataclass(frozen=True)
class RetryPolicy:
    """How failed or evicted jobs are resubmitted.

    Attributes:
        max_retries: Requeue budget per job.  A job that fails more
            than ``max_retries`` times is marked
            :attr:`~repro.workload.job.JobState.FAILED` permanently and
            recorded in :class:`~repro.metrics.records.FailureRecord`.
        backoff: Delay (seconds) before the first resubmission; ``0``
            requeues at the failure instant.
        backoff_factor: Multiplier applied per extra attempt — the
            ``k``-th requeue waits ``backoff * backoff_factor**(k-1)``.
        checkpoint: Preserve completed work across restarts.  Elastic
            (-E) schedulers apply the credit through the ECC machinery
            as a synthetic RT command shrinking the remaining runtime;
            without checkpointing every restart runs from scratch and
            the lost work is charged to
            :attr:`~repro.metrics.records.RunMetrics.lost_work`.
    """

    max_retries: int = 3
    backoff: float = 0.0
    backoff_factor: float = 2.0
    checkpoint: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Resubmission delay after failure number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff * self.backoff_factor ** (attempt - 1)


# ----------------------------------------------------------------------
# CLI spec parsing
# ----------------------------------------------------------------------
_SPEC_KEYS = ("mtbf", "mttr", "seed", "pfail", "poison")


def parse_faults_spec(spec: str) -> FaultConfig:
    """Parse a CLI fault spec like ``mtbf=86400,mttr=3600,seed=7``.

    Recognized keys: ``mtbf``, ``mttr``, ``seed``, ``pfail``
    (maps to :attr:`FaultConfig.p_job_fail`) and ``poison`` (job ids
    joined by ``|``, e.g. ``poison=3|9``).  Unknown keys, malformed
    numbers and duplicate keys raise :class:`ValueError` with the
    offending fragment named.
    """
    kwargs: dict = {}
    seen = set()
    for raw in spec.split(","):
        fragment = raw.strip()
        if not fragment:
            continue
        key, sep, value = fragment.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not sep or not value:
            raise ValueError(f"faults spec: expected key=value, got {fragment!r}")
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"faults spec: unknown key {key!r} (expected one of {_SPEC_KEYS})"
            )
        if key in seen:
            raise ValueError(f"faults spec: duplicate key {key!r}")
        seen.add(key)
        try:
            if key == "mtbf":
                kwargs["mtbf"] = float(value)
            elif key == "mttr":
                kwargs["mttr"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "pfail":
                kwargs["p_job_fail"] = float(value)
            elif key == "poison":
                kwargs["poison_jobs"] = tuple(
                    int(part) for part in value.split("|") if part
                )
        except ValueError as exc:
            raise ValueError(f"faults spec: bad value in {fragment!r}: {exc}") from None
    return FaultConfig(**kwargs)


def format_faults_spec(config: FaultConfig) -> str:
    """Inverse of :func:`parse_faults_spec` (canonical key order)."""
    parts = [f"mtbf={config.mtbf:g}"]
    if config.node_faults_enabled:
        parts.append(f"mttr={config.mttr:g}")
    parts.append(f"seed={config.seed}")
    if config.p_job_fail:
        parts.append(f"pfail={config.p_job_fail:g}")
    if config.poison_jobs:
        parts.append("poison=" + "|".join(str(j) for j in config.poison_jobs))
    return ",".join(parts)


__all__ = ["FaultConfig", "RetryPolicy", "format_faults_spec", "parse_faults_spec"]
