"""Deterministic fault event injection (docs/resilience.md).

:class:`FaultInjector` turns a :class:`~repro.faults.model.FaultConfig`
into concrete simulation events on a
:class:`~repro.experiments.runner.SimulationRunner`:

- **NodeFail / NodeRepair** — a renewal process of pset failures.
  Inter-failure gaps are ``Exp(mtbf)`` and repair durations
  ``Exp(mttr)``, both drawn from one dedicated node stream.  Each
  failure takes a uniformly chosen online pset dark (evicting whatever
  job holds it) and chains the next failure event; the chain stops as
  soon as no unfinished work remains so the event heap can drain.
- **JobFail** — per-attempt crashes.  Whether attempt ``k`` of job
  ``j`` crashes, and at which fraction of its runtime, is drawn from a
  stream seeded by ``SeedSequence((seed, j, k))`` — a function of the
  (job, attempt) pair alone, never of event interleaving, so the
  schedule is reproducible even though jobs start in policy-dependent
  order.  Poison jobs crash on every attempt.

All events fire at :attr:`~repro.sim.events.EventPriority.FAULT`:
after same-instant finishes (a job completing exactly when its pset
dies has completed) and before arrivals and scheduler cycles (the
cycle sees post-fault capacity).

The injector decides *what breaks when*; the runner's
``_fail_running_job`` owns the recovery policy (requeue, backoff,
checkpoint credit, retry exhaustion).
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.faults.model import FaultConfig
from repro.sim.events import Event, EventPriority
from repro.workload.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import SimulationRunner


class FaultInjector:
    """Schedules fault events for one simulation run.

    Args:
        runner: The owning simulation runner (machine must have
            ``track_placement=True`` when node faults are enabled).
        config: The fault model to realize.
    """

    def __init__(self, runner: "SimulationRunner", config: FaultConfig) -> None:
        self.runner = runner
        self.config = config
        #: Completed NodeFail events that actually took a pset offline.
        self.node_failures = 0
        self._poison = set(config.poison_jobs)
        # One stream for the whole node failure/repair renewal process;
        # drawn lazily event-by-event so the schedule adapts to the
        # run's length without a horizon parameter.
        self._node_rng = np.random.default_rng(
            np.random.SeedSequence((config.seed, 0xFA11))
        )
        self._job_fail_events: Dict[int, Event] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule the first node failure (call once, before run())."""
        if self.config.node_faults_enabled:
            gap = float(self._node_rng.exponential(self.config.mtbf))
            self.runner.sim.schedule_in(
                gap,
                self._on_node_fail,
                priority=EventPriority.FAULT,
                name="node-fail",
            )

    # ------------------------------------------------------------------
    # Node failure / repair chain
    # ------------------------------------------------------------------
    def _work_remains(self) -> bool:
        """Whether any job may still need the machine.

        Delegated to the runner, which knows whether the workload is
        fully materialized or still streaming in.
        """
        return self.runner.work_remains()

    def _on_node_fail(self) -> None:
        if not self._work_remains():
            # Nothing left to disturb: stop the chain so the heap can
            # drain (outstanding repairs still fire and close the
            # degraded-time window).
            return
        machine = self.runner.machine
        online = machine.online_units()
        if online:
            index = int(online[int(self._node_rng.integers(len(online)))])
            now = self.runner.sim.now
            evicted = machine.fail_unit(index, time=now)
            self.node_failures += 1
            self.runner.trace.record(
                now, "node-fail", unit=index, evicted=evicted
            )
            if evicted is not None:
                job = self.runner._jobs_by_id[int(evicted)]
                self.cancel_job_failure(job)
                # fail_unit already released the allocation in full
                self.runner._fail_running_job(job, release=False, reason="evicted")
            repair = float(self._node_rng.exponential(self.config.mttr))
            self.runner.sim.schedule_in(
                repair,
                # partial, not a lambda: scheduled actions must stay
                # picklable for checkpointing (repro.durable).
                partial(self._on_node_repair, index),
                priority=EventPriority.FAULT,
                name=f"node-repair#{index}",
            )
        gap = float(self._node_rng.exponential(self.config.mtbf))
        self.runner.sim.schedule_in(
            gap,
            self._on_node_fail,
            priority=EventPriority.FAULT,
            name="node-fail",
        )

    def _on_node_repair(self, index: int) -> None:
        now = self.runner.sim.now
        self.runner.machine.repair_unit(index, time=now)
        self.runner.trace.record(now, "node-repair", unit=index)
        # Returned capacity may unblock the queue head immediately.
        self.runner._request_cycle()

    # ------------------------------------------------------------------
    # Per-attempt job failures
    # ------------------------------------------------------------------
    def _attempt_rng(self, job_id: int, attempt: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self.config.seed, int(job_id), int(attempt)))
        )

    def on_job_start(self, job: Job) -> None:
        """Decide whether this attempt crashes; schedule the crash.

        Called by the runner right after a job starts.  Attempt ``k``
        (1-based, ``requeues + 1``) of job ``j`` draws its fate from
        the ``(seed, j, k)`` stream: one uniform for the crash
        decision, one for the crash point as a fraction of the
        attempt's runtime.  The crash instant lies strictly inside
        ``(start, start + runtime)`` whenever the runtime is positive,
        so a crash never races the job's own finish event.
        """
        if not self.config.job_faults_enabled:
            return
        attempt = job.requeues + 1
        rng = self._attempt_rng(job.job_id, attempt)
        doomed = job.job_id in self._poison
        if not doomed and self.config.p_job_fail > 0:
            doomed = float(rng.random()) < self.config.p_job_fail
        if not doomed:
            return
        runtime = job.effective_runtime()
        frac = float(rng.uniform(0.05, 0.95))
        self._job_fail_events[job.job_id] = self.runner.sim.schedule_in(
            frac * runtime,
            partial(self._on_job_fail, job),
            priority=EventPriority.FAULT,
            name=f"job-fail#{job.job_id}",
        )

    def _on_job_fail(self, job: Job) -> None:
        self._job_fail_events.pop(job.job_id, None)
        if job.state is not JobState.RUNNING:
            # Stale: the job was evicted or terminated (e.g. by an RT
            # ECC) between scheduling and firing.
            return
        self.runner._fail_running_job(job, release=True, reason="crash")

    def cancel_job_failure(self, job: Job) -> None:
        """Drop the pending crash event, if any (finish or eviction)."""
        event = self._job_fail_events.pop(job.job_id, None)
        if event is not None:
            event.cancel()


__all__ = ["FaultInjector"]
