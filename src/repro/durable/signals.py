"""Graceful SIGINT/SIGTERM handling for long runs and sweeps.

Two cooperating pieces (docs/resilience.md):

- :func:`graceful_shutdown` — used *inside* a checkpointed run: the
  first signal only raises a flag, letting the event loop finish its
  current chunk and write a final checkpoint at a clean event boundary
  before exiting; a second signal escalates to an immediate
  ``KeyboardInterrupt`` (the escape hatch when the final checkpoint
  itself hangs).
- :func:`sigterm_as_interrupt` — used at the CLI layer: converts
  SIGTERM into ``KeyboardInterrupt`` so ``kill <pid>`` takes the same
  tidy path Ctrl-C does (flush the progress summary, finalize the
  sweep manifest, exit :data:`EXIT_INTERRUPTED`).

Handlers are only installed from the main thread of the main
interpreter (Python's rule for :func:`signal.signal`); elsewhere both
context managers are no-ops.  Previous handlers are restored on exit,
so nesting — the CLI wrapper around a checkpointed run's own handler —
composes.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

#: Exit code for "interrupted but resumable" (BSD ``EX_TEMPFAIL``):
#: distinct from success (0) and argument/runtime errors (1, 2) so
#: wrappers can distinguish "re-run me" from "fix me".
EXIT_INTERRUPTED = 75


class SignalFlag:
    """Latched record of the first shutdown signal received."""

    __slots__ = ("signum",)

    def __init__(self) -> None:
        self.signum: Optional[int] = None

    @property
    def set(self) -> bool:
        return self.signum is not None


def _in_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


@contextmanager
def graceful_shutdown(flag: SignalFlag) -> Iterator[SignalFlag]:
    """Latch SIGINT/SIGTERM into ``flag`` instead of interrupting.

    The body polls ``flag.set`` at safe points (event-chunk
    boundaries) and performs its own orderly exit.  A second signal
    while the flag is already set raises ``KeyboardInterrupt``
    immediately — repeated Ctrl-C always wins.
    """
    if not _in_main_thread():
        yield flag
        return

    def _handler(signum: int, frame: object) -> None:
        if flag.signum is None:
            flag.signum = signum
        else:
            raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (OSError, ValueError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield flag
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


@contextmanager
def sigterm_as_interrupt() -> Iterator[None]:
    """Make SIGTERM raise ``KeyboardInterrupt`` (like SIGINT does)."""
    if not _in_main_thread():
        yield
        return

    def _handler(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


__all__ = [
    "EXIT_INTERRUPTED",
    "SignalFlag",
    "graceful_shutdown",
    "sigterm_as_interrupt",
]
