"""Durable sweep progress: which specs finished, surviving crashes.

A sweep manifest is an append-only JSONL journal (schema
:data:`SWEEP_MANIFEST_SCHEMA`) next to the sweep's
:class:`~repro.experiments.cache.RunCache`: the manifest records *which*
specs completed, the cache holds *their* metrics.  Each line is one
operation::

    {"schema": "repro.sweep-manifest/1", "op": "begin", "total": 19}
    {"op": "done", "key": "4f1c...", "algorithm": "EASY"}
    {"op": "end", "status": "complete"}

Appends are fsync'd (:func:`repro.durable.atomic.append_durable`), so a
``done`` line survives anything short of disk loss.  Loading tolerates
a torn final line and skips malformed interior lines with a warning —
after a hard kill the journal is simply shorter, never poisonous.
:func:`~repro.experiments.parallel.execute_runs` consults ``is_done``
to skip completed specs on restart, re-running only the remainder.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from repro.durable.atomic import append_durable

#: Schema tag stamped on the manifest's first line.
SWEEP_MANIFEST_SCHEMA = "repro.sweep-manifest/1"


class SweepManifest:
    """Append-only completion journal for a sweep.

    Creating the object loads any existing journal at ``path`` (a
    restart resumes where the journal left off); the file itself is
    only created by the first :meth:`begin` or :meth:`mark_done`.

    Args:
        path: Journal location; parent directories are created on
            first append.
        fsync: Fsync every append (default).  Disable only in tests
            where durability is irrelevant and fsync dominates runtime.
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self.done: Set[str] = set()
        self.total: Optional[int] = None
        self.status: Optional[str] = None
        self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        for lineno, line in enumerate(text.split("\n"), start=1):
            if not line.strip():
                continue
            try:
                op = json.loads(line)
                if not isinstance(op, dict):
                    raise ValueError("not an object")
            except ValueError:
                # A torn final line is the normal residue of a kill
                # mid-append; an interior bad line is unexpected but
                # never worth losing the sweep over.
                warnings.warn(
                    f"{self.path}:{lineno}: skipping malformed manifest line",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            kind = op.get("op")
            if kind == "begin":
                schema = op.get("schema")
                if schema != SWEEP_MANIFEST_SCHEMA:
                    raise ValueError(
                        f"{self.path}: unsupported manifest schema {schema!r} "
                        f"(this reader understands {SWEEP_MANIFEST_SCHEMA!r})"
                    )
                total = op.get("total")
                if isinstance(total, int):
                    self.total = total
                self.status = None  # a new begin supersedes an old end
            elif kind == "done":
                key = op.get("key")
                if isinstance(key, str):
                    self.done.add(key)
            elif kind == "end":
                status = op.get("status")
                if isinstance(status, str):
                    self.status = status

    def _append(self, op: Dict[str, Any]) -> None:
        line = json.dumps(op, separators=(",", ":"), sort_keys=True)
        append_durable(self.path, line + "\n", fsync=self._fsync)

    # ------------------------------------------------------------------
    # Journal operations
    # ------------------------------------------------------------------
    def begin(self, total: int) -> None:
        """Record the sweep's start (or restart) and its spec count."""
        self.total = total
        self.status = None
        self._append({"schema": SWEEP_MANIFEST_SCHEMA, "op": "begin", "total": total})

    def mark_done(self, key: str, *, algorithm: Optional[str] = None) -> None:
        """Durably record that the spec with cache-key ``key`` finished.

        Idempotent: re-marking an already-done key appends nothing.
        """
        if key in self.done:
            return
        self.done.add(key)
        op: Dict[str, Any] = {"op": "done", "key": key}
        if algorithm is not None:
            op["algorithm"] = algorithm
        self._append(op)

    def is_done(self, key: str) -> bool:
        """Whether the spec with cache-key ``key`` already completed."""
        return key in self.done

    def finalize(self, status: str = "complete") -> None:
        """Close the journal with a terminal status line."""
        self.status = status
        self._append({"op": "end", "status": status})

    def __len__(self) -> int:
        return len(self.done)

    def __repr__(self) -> str:
        total = "?" if self.total is None else self.total
        return (
            f"SweepManifest({str(self.path)!r}, done={len(self.done)}/{total}, "
            f"status={self.status!r})"
        )


__all__ = ["SWEEP_MANIFEST_SCHEMA", "SweepManifest"]
