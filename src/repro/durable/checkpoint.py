"""Crash-consistent checkpoints of a running simulation, exact resume.

A checkpoint (schema :data:`CHECKPOINT_SCHEMA`) captures the complete
:class:`~repro.experiments.runner.SimulationRunner` state between two
events: virtual clock and event heap, queues and active list, machine
placement (including fault/degraded state), applied-ECC state, every
RNG (workload, faults), online-metric aggregators, telemetry counters,
and the streaming reader's position.  The state is one pickle of the
runner's object graph — every piece is plain data by construction —
with exactly three unpicklable attachments detached and reconstructed
on load:

- the stream iterator (a generator): the checkpoint records the pull
  count and the stream's :class:`~repro.workload.streaming.StreamSpec`;
  resume rebuilds a fresh stream and fast-forwards, which recreates the
  identical iterator state (streams are deterministic functions of
  their spec, reorder-heap contents included);
- the live :class:`~repro.obs.trace_io.TraceWriter` (an open file):
  the checkpoint journals the durable byte offset and record count;
  resume truncates the trace file back to that offset and appends —so
  the finished file is byte-identical to an uninterrupted run's;
- the global event sequence counter: the checkpoint records the heap's
  watermark; load advances the fresh process's counter past it
  (:func:`repro.sim.events.advance_seq`), keeping same-instant
  tie-breaks exact.

**The resume guarantee** — enforced by the kill-fuzz oracle in
``tests/durable/`` across the full algorithm registry, under fault
injection and in streaming mode: a run killed at any checkpoint
boundary and resumed produces bitwise-identical
:class:`~repro.metrics.records.RunMetrics` and trace bytes.

Checkpoint files are written atomically (tmp + fsync + rename) and
checksummed (:mod:`repro.durable.atomic`); a torn or corrupt file is
rejected on load and skipped by :func:`latest_checkpoint`, which falls
back to the previous one — rotation keeps the last
:attr:`CheckpointConfig.keep`.
"""

from __future__ import annotations

import pickle
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.durable.atomic import CorruptFileError, checksummed_read, checksummed_write
from repro.durable.signals import SignalFlag, graceful_shutdown
from repro.obs.spans import begin as _span_begin, end as _span_end

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us lazily)
    from repro.experiments.runner import SimulationRunner
    from repro.metrics.records import RunMetrics

#: Schema tag of every checkpoint file; readers reject others.
CHECKPOINT_SCHEMA = "repro.ckpt/1"

#: Filename suffix of checkpoint files.
CHECKPOINT_SUFFIX = ".ckpt"

#: Default event-count cadence.  Sized so the paper's workloads
#: (thousands of events) checkpoint rarely and archive-scale replays
#: (millions) every few seconds — measured overhead at this cadence is
#: well under the 5% budget the perf gate enforces.
DEFAULT_EVERY_EVENTS = 50_000

#: Events simulated per engine call inside the checkpointed loop —
#: the polling granularity for wall-clock triggers and shutdown
#: signals.  Small enough that a SIGTERM is honoured within
#: milliseconds, large enough that the extra loop iterations vanish
#: against per-event costs.
POLL_EVENTS = 2048


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or reattached."""


class CheckpointInterrupt(KeyboardInterrupt):
    """A shutdown signal arrived; the final checkpoint was written.

    Subclasses ``KeyboardInterrupt`` so it propagates through generic
    ``except Exception`` handlers exactly like a Ctrl-C would.

    Attributes:
        path: The final checkpoint file.
        signum: The signal that triggered the shutdown.
    """

    def __init__(self, path: Union[str, Path], signum: int) -> None:
        super().__init__(str(path), signum)
        self.path = str(path)
        self.signum = signum


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to checkpoint a run.

    Attributes:
        dir: Directory holding this run's rotated checkpoints.
        every_events: Checkpoint after this many simulated events.
        every_seconds: Optional wall-clock cadence (whichever trigger
            fires first wins; both reset on every write).
        keep: Rotation depth — older checkpoints beyond the newest
            ``keep`` are deleted after each write (0 = keep all).
        run_key: Optional identity digest stamped into headers; resume
            validates it so a checkpoint directory can never hand a
            different run's state to an unsuspecting spec.
    """

    dir: Union[str, Path]
    every_events: int = DEFAULT_EVERY_EVENTS
    every_seconds: Optional[float] = None
    keep: int = 3
    run_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.every_events < 1:
            raise ValueError(f"every_events must be positive, got {self.every_events}")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError(f"every_seconds must be positive, got {self.every_seconds}")
        if self.keep < 0:
            raise ValueError(f"keep must be non-negative, got {self.keep}")

    @classmethod
    def coerce(cls, value: Union["CheckpointConfig", str, Path]) -> "CheckpointConfig":
        """A config from itself or a bare checkpoint-directory path."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, Path)):
            return cls(dir=value)
        raise TypeError(
            f"checkpoint must be a CheckpointConfig or a directory path, got {value!r}"
        )


# ----------------------------------------------------------------------
# Capture and write
# ----------------------------------------------------------------------
def _capture(
    runner: "SimulationRunner", *, run_key: Optional[str] = None
) -> tuple[bytes, Dict[str, Any]]:
    """Pickle the runner's full state between events.

    The three unpicklable attachments (stream iterator, workload
    generator handle, live trace writer/sink) are detached for the
    duration of the dump and restored afterwards — the runner keeps
    running unperturbed.
    """
    from repro import __version__

    sim = runner.sim
    if sim._running:
        raise CheckpointError(
            "checkpoints must be taken between events (Simulator.run is active); "
            "use run(checkpoint=...) which segments the event loop"
        )
    if runner._streaming and not runner._stream_exhausted:
        if getattr(runner.workload, "spec", None) is None:
            raise CheckpointError(
                "this JobStream has no rebuildable spec; mid-stream checkpoints "
                "need one (use the stream_* constructors or attach a StreamSpec)"
            )

    writer = runner._trace_writer
    trace_journal = None
    if writer is not None:
        try:
            offset = writer.sync()
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot journal the trace file: {exc}") from exc
        trace_journal = {
            "path": str(runner._trace_out),
            "offset": offset,
            "count": writer.count,
        }

    saved_iter = getattr(runner, "_stream_iter", None)
    saved_items = runner.workload.items if runner._streaming else None
    saved_sink = runner.trace.sink
    # The live span recorder (if any) is detached too: its open-span
    # stack includes the checkpoint_save span this very capture runs
    # under, and a resumed process rebuilds a fresh recorder anyway
    # (perf_counter origins don't survive processes).
    saved_recorder = runner._span_recorder
    try:
        if runner._streaming:
            runner._stream_iter = None
            runner.workload.items = None
        runner.trace.sink = None
        runner._trace_writer = None
        runner._span_recorder = None
        try:
            payload = pickle.dumps(runner, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"runner state is not picklable: {exc}") from exc
    finally:
        if runner._streaming:
            runner._stream_iter = saved_iter
            runner.workload.items = saved_items
        runner.trace.sink = saved_sink
        runner._trace_writer = writer
        runner._span_recorder = saved_recorder

    meta: Dict[str, Any] = {
        "event_count": sim.processed_events,
        "sim_time": sim.now,
        "seq_watermark": sim.max_seq(),
        "algorithm": runner.scheduler.name,
        "streaming": runner._streaming,
        "stream_pulled": runner._stream_pulled,
        "run_key": run_key,
        "trace": trace_journal,
        "repro_version": __version__,
        "wrote_at": time.time(),
    }
    return payload, meta


def checkpoint_path(directory: Union[str, Path], event_count: int) -> Path:
    """Canonical checkpoint filename for a given event count."""
    return Path(directory) / f"ckpt-{event_count:012d}{CHECKPOINT_SUFFIX}"


def save_checkpoint(
    runner: "SimulationRunner",
    config: Union[CheckpointConfig, str, Path],
) -> Path:
    """Write one rotated checkpoint of ``runner`` into ``config.dir``.

    Atomic and checksummed: a crash mid-write leaves the previous
    checkpoints untouched and at worst an ignorable temp file.
    Returns the checkpoint path.
    """
    config = CheckpointConfig.coerce(config)
    token = _span_begin("checkpoint_save")
    try:
        payload, meta = _capture(runner, run_key=config.run_key)
        path = checkpoint_path(config.dir, meta["event_count"])
        checksummed_write(path, payload, magic=CHECKPOINT_SCHEMA, meta=meta)
        runner.telemetry.count("checkpoints_written")
        if config.keep > 0:
            for old in list_checkpoints(config.dir)[: -config.keep]:
                try:
                    old.unlink()
                except OSError:  # pragma: no cover - racing cleanup is fine
                    pass
        return path
    finally:
        _span_end(token)


# ----------------------------------------------------------------------
# Discovery and load
# ----------------------------------------------------------------------
def list_checkpoints(directory: Union[str, Path]) -> List[Path]:
    """All checkpoint files under ``directory``, oldest first.

    Filenames embed the zero-padded event count, so lexicographic
    order is chronological order.  No validation — pair with
    :func:`inspect_checkpoint` or :func:`latest_checkpoint`.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"ckpt-*{CHECKPOINT_SUFFIX}"))


def inspect_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Fully validate a checkpoint file and return its metadata.

    Verifies the schema tag and the payload checksum (the payload is
    read but not unpickled).  Raises :class:`CheckpointError` on any
    corruption.
    """
    try:
        header, _payload = checksummed_read(Path(path), magic=CHECKPOINT_SCHEMA)
    except CorruptFileError as exc:
        raise CheckpointError(str(exc)) from None
    except FileNotFoundError:
        raise CheckpointError(f"no such checkpoint: {path}") from None
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    return header.get("meta", {})


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """Newest *usable* checkpoint in ``directory`` (None when none).

    Corrupt or truncated files — a writer killed mid-rename never
    produces one, but bit rot or manual tampering can — are skipped
    with a ``RuntimeWarning``, falling back to the next-newest.
    """
    for path in reversed(list_checkpoints(directory)):
        try:
            inspect_checkpoint(path)
        except CheckpointError as exc:
            warnings.warn(
                f"skipping unusable checkpoint: {exc}", RuntimeWarning, stacklevel=2
            )
            continue
        return path
    return None


def load_checkpoint(
    source: Union[str, Path],
    *,
    trace_out: Optional[Union[str, Path]] = None,
    expect_run_key: Optional[str] = None,
) -> "SimulationRunner":
    """Restore a runner from a checkpoint file (or directory).

    Reverses :func:`_capture`: unpickles the runner, advances the
    global event-sequence counter past the heap watermark, rebuilds
    the stream iterator from its spec (fast-forwarding to the recorded
    pull position), and reattaches the trace file in journaled
    append-resume mode.  Call :meth:`SimulationRunner.run` on the
    result to continue the simulation.

    Args:
        source: Checkpoint file, or a checkpoint directory (the newest
            usable checkpoint is taken).
        trace_out: Override for the trace file location (default: the
            path recorded in the journal).
        expect_run_key: When given, the checkpoint's stamped run key
            must match — the guard that keeps a sweep from resuming
            the wrong spec's state.

    Raises:
        CheckpointError: corrupt file, schema/run-key mismatch,
            unpicklable payload, missing trace file, or a stream that
            ended before the recorded position.
    """
    path = Path(source)
    if path.is_dir():
        found = latest_checkpoint(path)
        if found is None:
            raise CheckpointError(f"no usable checkpoint under {path}")
        path = found
    try:
        header, payload = checksummed_read(path, magic=CHECKPOINT_SCHEMA)
    except CorruptFileError as exc:
        raise CheckpointError(str(exc)) from None
    except FileNotFoundError:
        raise CheckpointError(f"no such checkpoint: {path}") from None
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    meta = header.get("meta", {})

    if expect_run_key is not None and meta.get("run_key") != expect_run_key:
        raise CheckpointError(
            f"{path}: checkpoint belongs to run {meta.get('run_key')!r}, "
            f"not {expect_run_key!r}"
        )
    from repro import __version__

    if meta.get("repro_version") != __version__:
        warnings.warn(
            f"{path}: checkpoint written by repro {meta.get('repro_version')}, "
            f"loading under {__version__} — resume is only exact across "
            "identical versions",
            RuntimeWarning,
            stacklevel=2,
        )

    try:
        runner = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"{path}: cannot unpickle runner state: {exc}") from exc

    from repro.experiments.runner import SimulationRunner

    if not isinstance(runner, SimulationRunner):
        raise CheckpointError(
            f"{path}: payload is {type(runner).__name__}, not a SimulationRunner"
        )

    # Same-instant tie-breaks: events scheduled after the restore must
    # sort behind every restored heap entry, as in the original process.
    from repro.sim.events import advance_seq

    advance_seq(int(meta.get("seq_watermark", runner.sim.max_seq())) + 1)

    if runner._streaming:
        if runner._stream_exhausted:
            runner._stream_iter = iter(())
            runner.workload.items = ()
        else:
            spec = runner.workload.spec
            if spec is None:  # pragma: no cover - _capture refuses to write these
                raise CheckpointError(f"{path}: streaming state without a StreamSpec")
            fresh = spec.build()
            iterator = iter(fresh)
            for pulled in range(runner._stream_pulled):
                if next(iterator, None) is None:
                    raise CheckpointError(
                        f"{path}: stream ended after {pulled} items but the "
                        f"checkpoint recorded {runner._stream_pulled} pulls — "
                        "the source changed since the checkpoint was written"
                    )
            runner._stream_iter = iterator
            runner.workload.items = iterator

    journal = meta.get("trace")
    if journal is not None:
        from repro.obs.trace_io import TraceWriter

        target = Path(trace_out) if trace_out is not None else Path(journal["path"])
        try:
            runner._trace_writer = TraceWriter.resume(
                target, offset=int(journal["offset"]), count=int(journal["count"])
            )
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"{path}: cannot resume trace file {target}: {exc}"
            ) from exc
        runner._trace_out = target
    elif trace_out is not None:
        raise CheckpointError(
            f"{path}: the interrupted run was not tracing; a trace started "
            "mid-run would be missing its earlier records"
        )
    return runner


# ----------------------------------------------------------------------
# The checkpointed event loop
# ----------------------------------------------------------------------
def drive_checkpointed(
    runner: "SimulationRunner",
    config: CheckpointConfig,
    *,
    until: Optional[float] = None,
) -> None:
    """Run the simulation in segments, checkpointing between events.

    Semantically identical to ``runner.sim.run(until=until)`` — the
    engine is called in bounded chunks, and checkpoints happen only at
    chunk boundaries where no event is mid-flight.  Shutdown signals
    (SIGINT/SIGTERM) are latched, honoured within :data:`POLL_EVENTS`
    events by writing a final checkpoint and raising
    :class:`CheckpointInterrupt`; a second signal interrupts
    immediately without a checkpoint.
    """
    sim = runner.sim
    flag = SignalFlag()
    with graceful_shutdown(flag):
        last_events = sim.processed_events
        last_wall = time.monotonic()
        while True:
            next_time = sim.peek_time()
            if next_time is None or (until is not None and next_time > until):
                break
            budget = config.every_events - (sim.processed_events - last_events)
            sim.run(until=until, max_events=max(1, min(budget, POLL_EVENTS)))
            due = sim.processed_events - last_events >= config.every_events
            if (
                config.every_seconds is not None
                and time.monotonic() - last_wall >= config.every_seconds
            ):
                due = True
            if flag.set:
                due = True
            if due:
                path = save_checkpoint(runner, config)
                last_events = sim.processed_events
                last_wall = time.monotonic()
                if flag.set:
                    assert flag.signum is not None
                    raise CheckpointInterrupt(path, flag.signum)
    # Residual engine semantics (clock advance to a horizon past the
    # last event); a no-op when the loop above drained everything.
    sim.run(until=until)


# ----------------------------------------------------------------------
# High-level resume
# ----------------------------------------------------------------------
def resume(
    source: Union[str, Path],
    *,
    checkpoint: Optional[Union[CheckpointConfig, str, Path]] = None,
    trace_out: Optional[Union[str, Path]] = None,
) -> "RunMetrics":
    """Load a checkpoint and run the simulation to completion.

    The Python-API twin of ``repro resume``.  Pass ``checkpoint`` to
    keep checkpointing the continued run (typically the same
    directory, so repeated kill/resume cycles always pick up the
    newest state).
    """
    runner = load_checkpoint(source, trace_out=trace_out)
    return runner.run(checkpoint=checkpoint)


__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SUFFIX",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointInterrupt",
    "DEFAULT_EVERY_EVENTS",
    "POLL_EVENTS",
    "checkpoint_path",
    "drive_checkpointed",
    "inspect_checkpoint",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "resume",
    "save_checkpoint",
]
