"""Crash-safe filesystem primitives (docs/resilience.md).

Every artifact the repo persists — run-cache entries, checkpoints,
benchmark history lines, sweep manifests — funnels through this module
so torn-write handling lives in exactly one place:

- :func:`atomic_write_bytes` — write-tmp + fsync + rename (+ directory
  fsync), so readers see either the old file or the complete new one,
  never a prefix;
- :func:`checksummed_write` / :func:`checksummed_read` — a one-file
  container: a JSON header line carrying a magic tag, SHA-256 and
  payload size, followed by the raw payload.  Any corruption — torn
  header, short payload, flipped bit — is a :class:`CorruptFileError`
  on read, never a misparse;
- :func:`append_durable` — fsync'd append for journal files (history,
  manifests) where rename-per-line is the wrong tool; readers of those
  journals tolerate a torn final line instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

PathLike = Union[str, Path]


class CorruptFileError(ValueError):
    """A checksummed file failed validation (torn write or bit rot)."""


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def fsync_dir(path: PathLike) -> None:
    """Best-effort fsync of a directory (persists the rename itself).

    Silently skipped where directories cannot be opened for reading
    (some filesystems/platforms); the rename is still atomic, only its
    durability across power loss is then filesystem-dependent.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes, *, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    The bytes land in a temp file in the same directory, are fsync'd,
    then renamed over the target (``os.replace``), so a concurrent
    reader — or a reader after a mid-write crash — sees either the
    previous content or all of ``data``, never a torn prefix.  Last
    writer wins under concurrency.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)


def checksummed_write(
    path: PathLike,
    payload: bytes,
    *,
    magic: str,
    meta: Optional[Dict[str, Any]] = None,
    fsync: bool = True,
) -> None:
    """Atomically write a checksummed container file.

    Layout: one JSON header line ``{"magic": ..., "sha256": ...,
    "size": ..., "meta": {...}}`` terminated by ``\\n``, then the raw
    payload bytes.  ``meta`` must be JSON-serializable.
    """
    header = {
        "magic": magic,
        "sha256": sha256_hex(payload),
        "size": len(payload),
        "meta": dict(meta or {}),
    }
    head = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, head + b"\n" + payload, fsync=fsync)


def read_header(path: PathLike, *, magic: str) -> Dict[str, Any]:
    """Parse and validate only the header of a checksummed container.

    Cheap (reads one line); does **not** verify the payload digest —
    use :func:`checksummed_read` for full validation.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.readline()
    return _parse_header(head, path, magic)


def _parse_header(head: bytes, path: Path, magic: str) -> Dict[str, Any]:
    if not head.endswith(b"\n"):
        raise CorruptFileError(f"{path}: truncated header line (torn write?)")
    try:
        header = json.loads(head)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptFileError(f"{path}: malformed header: {exc}") from None
    if not isinstance(header, dict) or header.get("magic") != magic:
        raise CorruptFileError(
            f"{path}: not a {magic!r} file "
            f"(magic is {header.get('magic')!r})"
            if isinstance(header, dict)
            else f"{path}: header is not an object"
        )
    if not isinstance(header.get("sha256"), str) or not isinstance(
        header.get("size"), int
    ):
        raise CorruptFileError(f"{path}: header missing sha256/size fields")
    return header


def checksummed_read(path: PathLike, *, magic: str) -> Tuple[Dict[str, Any], bytes]:
    """Read and fully validate a checksummed container file.

    Returns ``(header, payload)``.  Raises :class:`CorruptFileError`
    on a wrong magic, torn header, short/long payload, or digest
    mismatch; :class:`FileNotFoundError`/``OSError`` pass through for
    the caller to map to its own miss/skip semantics.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.readline()
        payload = fh.read()
    header = _parse_header(head, path, magic)
    if len(payload) != header["size"]:
        raise CorruptFileError(
            f"{path}: payload is {len(payload)} bytes, header says "
            f"{header['size']} (torn write?)"
        )
    digest = sha256_hex(payload)
    if digest != header["sha256"]:
        raise CorruptFileError(
            f"{path}: payload SHA-256 mismatch "
            f"(header {header['sha256'][:12]}…, actual {digest[:12]}…)"
        )
    return header, payload


def append_durable(path: PathLike, text: str, *, fsync: bool = True) -> None:
    """Append ``text`` to a journal file and fsync it.

    Appends are not atomic — a crash can leave a torn final line — but
    the fsync bounds the loss to that one line, and every journal
    reader in this repo (bench history, sweep manifests, traces)
    tolerates a torn tail.  Concurrent appenders interleave at line
    granularity on POSIX (``O_APPEND``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())


__all__ = [
    "CorruptFileError",
    "append_durable",
    "atomic_write_bytes",
    "checksummed_read",
    "checksummed_write",
    "fsync_dir",
    "read_header",
    "sha256_hex",
]
