"""Durability layer: crash-safe persistence and exact resume.

Long replays and sweeps (docs/scaling.md) run for minutes to hours; a
crash, OOM kill or preemption must not cost the whole run.  This
package provides the three pieces (docs/resilience.md):

- :mod:`repro.durable.atomic` — filesystem primitives every persistent
  artifact goes through: atomic write-tmp-fsync-rename, checksummed
  single-file containers, fsync'd appends;
- :mod:`repro.durable.checkpoint` — periodic crash-consistent
  checkpoints of a running :class:`~repro.experiments.runner.SimulationRunner`
  (schema ``repro.ckpt/1``) plus exact resume: a resumed run is
  bitwise-identical to an uninterrupted one — same
  :class:`~repro.metrics.records.RunMetrics`, same trace bytes;
- :mod:`repro.durable.manifest` — sweep completion journals (schema
  ``repro.sweep-manifest/1``) so a crashed sweep re-runs only the
  specs that never finished.
"""

from repro.durable.atomic import (
    CorruptFileError,
    append_durable,
    atomic_write_bytes,
    checksummed_read,
    checksummed_write,
)
from repro.durable.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConfig,
    CheckpointError,
    CheckpointInterrupt,
    inspect_checkpoint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    resume,
    save_checkpoint,
)
from repro.durable.manifest import SWEEP_MANIFEST_SCHEMA, SweepManifest
from repro.durable.signals import EXIT_INTERRUPTED, SignalFlag, graceful_shutdown, sigterm_as_interrupt

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointInterrupt",
    "CorruptFileError",
    "EXIT_INTERRUPTED",
    "SWEEP_MANIFEST_SCHEMA",
    "SignalFlag",
    "SweepManifest",
    "append_durable",
    "atomic_write_bytes",
    "checksummed_read",
    "checksummed_write",
    "graceful_shutdown",
    "inspect_checkpoint",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "resume",
    "save_checkpoint",
    "sigterm_as_interrupt",
]
