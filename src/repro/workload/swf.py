"""Standard Workload Format (SWF) support.

SWF is the Parallel Workloads Archive format [21]: one job per line,
18 whitespace-separated numeric fields, ``;`` comment lines carrying
header metadata.  We implement the subset of semantics the scheduling
literature relies on (submit time, requested processors, requested
time, run time, status) and preserve all 18 fields for round-tripping.

Field reference (1-indexed, as in the archive spec):

====  =======================  ==========================================
 #    Name                     Notes
====  =======================  ==========================================
 1    job number               unique, usually 1..N
 2    submit time              seconds from the log start
 3    wait time                seconds (−1 when unknown)
 4    run time                 actual runtime, seconds
 5    allocated processors
 6    average CPU time used
 7    used memory
 8    requested processors
 9    requested time           user runtime estimate (kill-by basis)
 10   requested memory
 11   status                   1 = completed, 0 = failed, 5 = cancelled
 12   user id
 13   group id
 14   executable id
 15   queue id
 16   partition id
 17   preceding job
 18   think time
====  =======================  ==========================================

Optional malleability extension (this repo; docs/malleability.md):
fields 19–21 carry a job's ``min/pref/max`` processor range for the
scheduler-initiated malleability layer.  ``-1`` (or absence — archive
logs always stop at 18 fields) means rigid, so every legacy trace
parses unchanged and round-trips without the extra columns.

====  =======================  ==========================================
 19   min processors           smallest size the job can shrink to
 20   preferred processors     size the job would ideally run at
 21   max processors           largest size the job can expand to
====  =======================  ==========================================
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from repro.workload.errors import WorkloadFormatError, numbered_records, source_name
from repro.workload.job import Job, JobKind

UNKNOWN = -1


class SWFParseError(WorkloadFormatError):
    """Raised when a line cannot be parsed as an SWF record.

    Carries ``source``/``line`` context when raised by the file-level
    readers; see :class:`repro.workload.errors.WorkloadFormatError`.
    """


@dataclass
class SWFRecord:
    """One SWF line with all 18 standard fields."""

    job_id: int
    submit: float
    wait: float = UNKNOWN
    run_time: float = UNKNOWN
    allocated_procs: int = UNKNOWN
    avg_cpu_time: float = UNKNOWN
    used_memory: float = UNKNOWN
    requested_procs: int = UNKNOWN
    requested_time: float = UNKNOWN
    requested_memory: float = UNKNOWN
    status: int = UNKNOWN
    user_id: int = UNKNOWN
    group_id: int = UNKNOWN
    executable: int = UNKNOWN
    queue: int = UNKNOWN
    partition: int = UNKNOWN
    preceding_job: int = UNKNOWN
    think_time: float = UNKNOWN
    # Malleability extension (optional fields 19–21; UNKNOWN = rigid).
    min_procs: int = UNKNOWN
    pref_procs: int = UNKNOWN
    max_procs: int = UNKNOWN

    FIELD_NAMES = (
        "job_id",
        "submit",
        "wait",
        "run_time",
        "allocated_procs",
        "avg_cpu_time",
        "used_memory",
        "requested_procs",
        "requested_time",
        "requested_memory",
        "status",
        "user_id",
        "group_id",
        "executable",
        "queue",
        "partition",
        "preceding_job",
        "think_time",
    )

    #: Optional trailing columns (fields 19–21): the malleability range.
    RANGE_FIELD_NAMES = ("min_procs", "pref_procs", "max_procs")

    _INT_FIELDS = frozenset(
        {
            "job_id",
            "allocated_procs",
            "requested_procs",
            "status",
            "user_id",
            "group_id",
            "executable",
            "queue",
            "partition",
            "preceding_job",
        }
    )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, line: str) -> "SWFRecord":
        """Parse one non-comment SWF line.

        Lines shorter than 18 fields are padded with ``-1`` (several
        archive logs truncate trailing unknowns); fields 19–21, when
        present, carry the malleability range; longer lines raise.
        """
        tokens = line.split()
        if not tokens:
            raise SWFParseError("empty line")
        limit = len(cls.FIELD_NAMES) + len(cls.RANGE_FIELD_NAMES)
        if len(tokens) > limit:
            raise SWFParseError(
                f"expected at most {limit} fields, got {len(tokens)}"
            )
        values = {}
        for name, token in zip(cls.FIELD_NAMES, tokens):
            try:
                number = float(token)
            except ValueError as exc:
                raise SWFParseError(f"field {name}: non-numeric token {token!r}") from exc
            values[name] = int(number) if name in cls._INT_FIELDS else number
        for name, token in zip(
            cls.RANGE_FIELD_NAMES, tokens[len(cls.FIELD_NAMES) :]
        ):
            try:
                values[name] = int(float(token))
            except ValueError as exc:
                raise SWFParseError(f"field {name}: non-numeric token {token!r}") from exc
        return cls(**values)

    @property
    def has_malleable_range(self) -> bool:
        """Whether any malleability column (fields 19–21) is set."""
        return self.min_procs > 0 or self.pref_procs > 0 or self.max_procs > 0

    def to_line(self) -> str:
        """Serialize to one canonical SWF line.

        The malleability columns are appended only when set, so rigid
        records — every record of a legacy archive log — round-trip to
        standard 18-field SWF byte-for-byte.
        """
        parts = []
        for name in self.FIELD_NAMES:
            value = getattr(self, name)
            if name in self._INT_FIELDS:
                parts.append(str(int(value)))
            else:
                # Keep integral floats compact, as archive logs do.
                parts.append(str(int(value)) if float(value).is_integer() else f"{value:.2f}")
        if self.has_malleable_range:
            for name in self.RANGE_FIELD_NAMES:
                parts.append(str(int(getattr(self, name))))
        return " ".join(parts)

    # ------------------------------------------------------------------
    CANCELLED_STATUS = 5

    def to_job(self) -> Job:
        """Convert to a simulation :class:`Job` (batch).

        Requested time falls back to run time when absent (common in
        archive logs that lack estimates), mirroring standard practice
        in backfill studies.  Status-5 (cancelled) jobs that never ran
        carry a ``cancel_at`` of ``submit + wait`` — the instant the
        log shows them leaving the queue.
        """
        estimate = self.requested_time if self.requested_time > 0 else self.run_time
        cancelled_in_queue = self.status == self.CANCELLED_STATUS and self.run_time <= 0
        if estimate <= 0:
            if not cancelled_in_queue:
                raise SWFParseError(f"job {self.job_id}: no usable runtime/estimate")
            estimate = 1.0  # never ran; any positive placeholder works
        procs = self.requested_procs if self.requested_procs > 0 else self.allocated_procs
        if procs <= 0:
            raise SWFParseError(f"job {self.job_id}: no usable processor request")
        actual = self.run_time if self.run_time > 0 else estimate
        cancel_at = None
        if cancelled_in_queue:
            cancel_at = self.submit + max(0.0, self.wait)
        return Job(
            job_id=self.job_id,
            submit=self.submit,
            num=int(procs),
            estimate=float(estimate),
            actual=float(actual),
            kind=JobKind.BATCH,
            cancel_at=cancel_at,
            min_procs=self.min_procs if self.min_procs > 0 else None,
            pref_procs=self.pref_procs if self.pref_procs > 0 else None,
            max_procs=self.max_procs if self.max_procs > 0 else None,
        )

    @classmethod
    def from_job(cls, job: Job) -> "SWFRecord":
        """Build a record from a job (post-run fields when available)."""
        wait = job.wait_time() if job.start_time is not None else UNKNOWN
        run = (
            job.finish_time - job.start_time
            if job.start_time is not None and job.finish_time is not None
            else job.actual if job.actual is not None else UNKNOWN
        )
        return cls(
            job_id=job.job_id,
            submit=job.submit,
            wait=wait,
            run_time=run,
            allocated_procs=job.num,
            requested_procs=job.num,
            requested_time=job.original_estimate,
            status=1,
            min_procs=job.min_procs if job.min_procs is not None else UNKNOWN,
            pref_procs=job.pref_procs if job.pref_procs is not None else UNKNOWN,
            max_procs=job.max_procs if job.max_procs is not None else UNKNOWN,
        )


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def _open_text(path: Union[str, Path], mode: str):
    """Open a trace file, transparently handling ``.gz`` archives.

    Parallel Workloads Archive logs ship gzip-compressed; both readers
    and writers accept ``*.gz`` paths directly.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_swf(
    source: Union[str, Path, TextIO], *, strict: bool = True
) -> Iterator[SWFRecord]:
    """Yield records from an SWF file (``.gz`` ok) or open text stream.

    Under ``strict`` (the default) a malformed line raises
    :class:`SWFParseError` carrying the file name and line number;
    with ``strict=False`` the line is skipped with a
    :class:`RuntimeWarning` instead — for dirty archive logs where a
    few broken records should not discard the rest.
    """
    if isinstance(source, (str, Path)):
        with _open_text(source, "r") as fh:
            yield from iter_swf(fh, strict=strict)
        return
    for _, record in numbered_records(
        source,
        SWFRecord.parse,
        strict=strict,
        source=source_name(source),
        error_cls=SWFParseError,
    ):
        yield record


def read_swf(
    source: Union[str, Path, TextIO], *, strict: bool = True
) -> List[SWFRecord]:
    """Read an entire SWF file into a list of records."""
    return list(iter_swf(source, strict=strict))


def write_swf(
    records: Iterable[SWFRecord],
    target: Union[str, Path, TextIO],
    header: Iterable[str] = (),
) -> None:
    """Write records as SWF, with optional ``;``-prefixed header lines."""
    if isinstance(target, (str, Path)):
        with _open_text(target, "w") as fh:
            write_swf(records, fh, header=header)
        return
    for line in header:
        target.write(f"; {line}\n")
    for record in records:
        target.write(record.to_line() + "\n")


__all__ = [
    "SWFParseError",
    "SWFRecord",
    "UNKNOWN",
    "iter_swf",
    "read_swf",
    "write_swf",
    "_open_text",
]
