"""The paper's two-stage-uniform job-size model for BlueGene/P (§IV-D).

Job sizes on the simulated BlueGene/P come in multiples of 32
processors.  The paper samples:

- *small* jobs (probability ``P_S``): ``32 * round(U[1, 3])`` — sizes
  32, 64 or 96 (round of a continuous uniform gives 64 twice the
  weight of the endpoints),
- *large* jobs (probability ``1 - P_S``): ``32 * round(U[4, 10])`` —
  sizes 128, 160, …, 320 (interior values twice the endpoint weight).

``P_S`` is the packing-properties knob swept throughout §V; this
deliberate deviation from the SDSC log's size distribution is the crux
of the paper's claim that LOS degrades when job sizes change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TwoStageSizeConfig:
    """Parameters of the two-stage uniform size model.

    Attributes:
        p_small: The paper's ``P_S`` — probability a job is small.
        granularity: Processor multiple (32 on BlueGene/P).
        small_range: Inclusive bounds of the *continuous* uniform whose
            rounded value scales ``granularity`` for small jobs.
        large_range: Same for large jobs.
    """

    p_small: float = 0.5
    granularity: int = 32
    small_range: Tuple[float, float] = (1.0, 3.0)
    large_range: Tuple[float, float] = (4.0, 10.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_small <= 1.0:
            raise ValueError(f"p_small must be a probability, got {self.p_small}")
        if self.granularity <= 0:
            raise ValueError(f"granularity must be positive, got {self.granularity}")
        for name, (lo, hi) in (
            ("small_range", self.small_range),
            ("large_range", self.large_range),
        ):
            if not (0 < lo <= hi):
                raise ValueError(f"{name} must satisfy 0 < lo <= hi, got {(lo, hi)}")

    def small_sizes(self) -> Tuple[int, ...]:
        """All sizes the small branch can produce, in processors."""
        lo, hi = self.small_range
        return tuple(
            self.granularity * k for k in range(round(lo), round(hi) + 1)
        )

    def large_sizes(self) -> Tuple[int, ...]:
        """All sizes the large branch can produce, in processors."""
        lo, hi = self.large_range
        return tuple(
            self.granularity * k for k in range(round(lo), round(hi) + 1)
        )

    def max_size(self) -> int:
        """Largest producible size (320 with defaults)."""
        return self.granularity * round(self.large_range[1])


class TwoStageSizeModel:
    """Sampler for the §IV-D size distribution."""

    def __init__(self, config: TwoStageSizeConfig = TwoStageSizeConfig()) -> None:
        self.config = config

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one job size in processors."""
        cfg = self.config
        branch = cfg.small_range if rng.random() < cfg.p_small else cfg.large_range
        units = int(round(rng.uniform(*branch)))
        return cfg.granularity * units

    def mean_size(self) -> float:
        """Exact expected size (used by load calibration and tests).

        The rounded uniform over ``[lo, hi]`` with integer endpoints
        puts weight 1/(2(hi-lo)) on each endpoint and 1/(hi-lo) on each
        interior integer; the mean is simply ``(lo + hi) / 2`` by
        symmetry.
        """
        cfg = self.config
        small_mean = sum(cfg.small_range) / 2.0 * cfg.granularity
        large_mean = sum(cfg.large_range) / 2.0 * cfg.granularity
        return cfg.p_small * small_mean + (1.0 - cfg.p_small) * large_mean


__all__ = ["TwoStageSizeConfig", "TwoStageSizeModel"]
