"""Elastic Control Commands (ECCs).

ECCs are the paper's runtime-elasticity primitive (§III-C): explicit,
user-issued requests to extend or reduce a previously submitted job's
execution-time requirement on-the-fly.  They are carried in CWF fields
20–21 (Figure 4) and processed FCFS by the elastic control queue.

Kinds (Figure 4):
    ``S``  — plain job submission (not an ECC; kept for CWF parsing),
    ``ET`` — execution-time extension,
    ``RT`` — execution-time reduction,
    ``EP`` — processor-count extension (paper's future work),
    ``RP`` — processor-count reduction (paper's future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ECCKind(Enum):
    """CWF field-20 request types."""

    SUBMIT = "S"
    EXTEND_TIME = "ET"
    REDUCE_TIME = "RT"
    EXTEND_PROCS = "EP"
    REDUCE_PROCS = "RP"

    @property
    def is_time(self) -> bool:
        """Whether the command targets the time dimension."""
        return self in (ECCKind.EXTEND_TIME, ECCKind.REDUCE_TIME)

    @property
    def is_procs(self) -> bool:
        """Whether the command targets the resource dimension."""
        return self in (ECCKind.EXTEND_PROCS, ECCKind.REDUCE_PROCS)

    @property
    def is_extension(self) -> bool:
        """Whether the command grows the requirement."""
        return self in (ECCKind.EXTEND_TIME, ECCKind.EXTEND_PROCS)


@dataclass(frozen=True)
class ECC:
    """One elastic control command.

    Attributes:
        job_id: The previously submitted job this ECC targets (same ID,
            per Figure 4).
        issue_time: When the user issues the command; it enters the
            elastic control queue at this instant.
        kind: ET/RT/EP/RP.
        amount: Extension/reduction amount (CWF field 21), in seconds
            for ET/RT and processors for EP/RP.  Always positive; the
            direction is encoded in ``kind``.
    """

    job_id: int
    issue_time: float
    kind: ECCKind
    amount: float

    def __post_init__(self) -> None:
        if self.kind is ECCKind.SUBMIT:
            raise ValueError("ECC records cannot have kind S (submission)")
        if self.amount <= 0:
            raise ValueError(
                f"ECC for job {self.job_id}: amount must be positive, got {self.amount}"
            )
        if self.issue_time < 0:
            raise ValueError(
                f"ECC for job {self.job_id}: negative issue time {self.issue_time}"
            )

    def signed_amount(self) -> float:
        """Amount with reductions negated (ET:+x, RT:-x)."""
        return self.amount if self.kind.is_extension else -self.amount


__all__ = ["ECC", "ECCKind"]
