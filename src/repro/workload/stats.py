"""Workload characterization.

Summarizes a workload the way the paper's §IV-D/§V describe theirs:
job counts by class, the mean size (``n̄``) and runtime, the offered
load, size histogram in granularity units, arrival burstiness, and ECC
composition.  Used by ``repro-sim --stats`` and handy when validating
externally supplied CWF/SWF traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.workload.ecc import ECCKind
from repro.workload.generator import Workload
from repro.workload.load import log_span, mean_runtime, mean_size


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of one workload."""

    n_jobs: int
    n_batch: int
    n_dedicated: int
    n_eccs: int
    machine_size: int
    granularity: int
    offered_load: float
    span_seconds: float
    mean_size: float
    mean_runtime: float
    p_small_empirical: float
    size_histogram: Dict[int, int]
    runtime_quantiles: Dict[str, float]
    interarrival_mean: float
    interarrival_cv: float
    ecc_kinds: Dict[str, int]

    def lines(self) -> List[str]:
        """Human-readable report lines."""
        out = [
            f"jobs:             {self.n_jobs} "
            f"({self.n_batch} batch, {self.n_dedicated} dedicated)",
            f"ECCs:             {self.n_eccs} {self.ecc_kinds or ''}".rstrip(),
            f"machine:          M={self.machine_size}, granularity={self.granularity}",
            f"offered load:     {self.offered_load:.3f} over {self.span_seconds:.0f} s",
            f"mean size (n̄):    {self.mean_size:.1f} processors "
            f"(small-job share {self.p_small_empirical:.0%})",
            f"mean runtime:     {self.mean_runtime:.0f} s "
            f"(p50 {self.runtime_quantiles['p50']:.0f}, "
            f"p90 {self.runtime_quantiles['p90']:.0f}, "
            f"p99 {self.runtime_quantiles['p99']:.0f})",
            f"inter-arrival:    mean {self.interarrival_mean:.1f} s, "
            f"cv {self.interarrival_cv:.2f}",
            "size histogram:   "
            + " ".join(f"{size}:{count}" for size, count in sorted(self.size_histogram.items())),
        ]
        return out

    def render(self) -> str:
        """The report as one string."""
        return "\n".join(self.lines())


def characterize(workload: Workload, small_threshold: int = 96) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a workload.

    Args:
        workload: The workload to characterize.
        small_threshold: Jobs of at most this many processors count as
            "small" (96 = the paper's small/large boundary on BG/P).
    """
    jobs = workload.jobs
    runtimes = np.array([job.effective_runtime() for job in jobs]) if jobs else np.array([0.0])
    submits = sorted(job.submit for job in jobs)
    gaps = np.diff(submits) if len(submits) > 1 else np.array([0.0])
    histogram: Dict[int, int] = {}
    for job in jobs:
        histogram[job.num] = histogram.get(job.num, 0) + 1
    ecc_kinds: Dict[str, int] = {}
    for ecc in workload.eccs:
        ecc_kinds[ecc.kind.value] = ecc_kinds.get(ecc.kind.value, 0) + 1

    gap_mean = float(gaps.mean()) if gaps.size else 0.0
    gap_cv = float(gaps.std() / gap_mean) if gap_mean > 0 else 0.0
    return WorkloadStats(
        n_jobs=len(jobs),
        n_batch=len(workload.batch_jobs),
        n_dedicated=len(workload.dedicated_jobs),
        n_eccs=len(workload.eccs),
        machine_size=workload.machine_size,
        granularity=workload.granularity,
        offered_load=workload.offered_load(),
        span_seconds=log_span(jobs),
        mean_size=mean_size(jobs),
        mean_runtime=mean_runtime(jobs),
        p_small_empirical=(
            sum(1 for job in jobs if job.num <= small_threshold) / len(jobs)
            if jobs
            else 0.0
        ),
        size_histogram=histogram,
        runtime_quantiles={
            "p50": float(np.percentile(runtimes, 50)),
            "p90": float(np.percentile(runtimes, 90)),
            "p99": float(np.percentile(runtimes, 99)),
        },
        interarrival_mean=gap_mean,
        interarrival_cv=gap_cv,
        ecc_kinds=ecc_kinds,
    )


__all__ = ["WorkloadStats", "characterize"]
