"""The CWF workload generator (paper §IV-C/§IV-D, Figure 3).

Composes the statistical pieces into a complete heterogeneous, elastic
workload:

- arrival times from the Lublin arrival process (``β_arr`` is the load
  knob),
- sizes from the two-stage uniform BlueGene/P model (``P_S`` knob),
- runtimes from the size-correlated hyper-Gamma (Table I),
- a job is dedicated with probability ``P_D``; its rigid requested
  start time is ``submit + Exp(mean)``,
- ET commands injected with probability ``P_E`` and RT with ``P_R``
  per job; amounts are exponential (§IV-D, last paragraph).

The output :class:`Workload` is a value object: experiments copy jobs
per run so one generated workload can be scheduled by all algorithms
under identical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.workload.cwf import CWFRecord, write_cwf
from repro.workload.distributions import exponential
from repro.workload.ecc import ECC, ECCKind
from repro.workload.job import Job, JobKind
from repro.workload.load import offered_load
from repro.workload.lublin import LublinConfig, LublinModel
from repro.workload.twostage import TwoStageSizeConfig, TwoStageSizeModel


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the CWF workload generator.

    Attributes:
        n_jobs: Jobs per experiment (the paper's ``N_J = 500``).
        machine_size: Simulated machine size ``M`` (320).
        size: Two-stage uniform size model parameters (``P_S`` inside).
        lublin: Runtime + arrival parameters (Tables I–II); the size
            part of the Lublin config is unused here because sizes come
            from the two-stage model.
        p_dedicated: The paper's ``P_D``.
        dedicated_start_mean: Mean of the exponential offset between a
            dedicated job's submission and its rigid requested start.
        p_extend / p_reduce: The paper's ``P_E`` / ``P_R`` ECC
            injection probabilities (0.2 / 0.1 in §IV-D when elastic).
        ecc_amount_mean: Mean of the exponential ET/RT amount, as a
            fraction of the job's estimated runtime.  Relative amounts
            keep commands meaningful across the wide runtime range.
        ecc_issue_mean_fraction: Mean (fraction of estimate) of the
            exponential delay after submission at which an ECC is
            issued.
        estimate_factor: User over-estimation factor; estimates are
            ``actual * estimate_factor`` (1.0 = perfect estimates, the
            paper's model; 2.0 reproduces Mu'alem's observation).
        integral_times: Round arrivals/runtimes to whole seconds, as
            SWF logs are integral.
    """

    n_jobs: int = 500
    machine_size: int = 320
    size: TwoStageSizeConfig = field(default_factory=TwoStageSizeConfig)
    lublin: LublinConfig = field(default_factory=LublinConfig)
    p_dedicated: float = 0.0
    dedicated_start_mean: float = 3600.0
    p_extend: float = 0.0
    p_reduce: float = 0.0
    #: Probability a job is user-cancelled (SWF status-5 behaviour);
    #: the cancellation instant is submit + Exp(cancel_mean_fraction
    #: x estimate), so short-queued jobs usually run before it fires.
    p_cancel: float = 0.0
    cancel_mean_fraction: float = 2.0
    ecc_amount_mean: float = 0.5
    ecc_issue_mean_fraction: float = 0.5
    estimate_factor: float = 1.0
    integral_times: bool = True

    def __post_init__(self) -> None:
        if self.n_jobs < 0:
            raise ValueError(f"n_jobs must be non-negative, got {self.n_jobs}")
        if self.machine_size < self.size.max_size():
            raise ValueError(
                f"machine size {self.machine_size} cannot fit the largest "
                f"generated job ({self.size.max_size()})"
            )
        for name in ("p_dedicated", "p_extend", "p_reduce", "p_cancel"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.estimate_factor < 1.0:
            raise ValueError(
                f"estimate_factor must be >= 1 (estimates bound runtimes), "
                f"got {self.estimate_factor}"
            )
        for name in (
            "dedicated_start_mean",
            "ecc_amount_mean",
            "ecc_issue_mean_fraction",
            "cancel_mean_fraction",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def with_beta_arr(self, beta_arr: float) -> "GeneratorConfig":
        """Copy with a different arrival-rate (load) knob."""
        return replace(self, lublin=self.lublin.with_beta_arr(beta_arr))

    def with_p_small(self, p_small: float) -> "GeneratorConfig":
        """Copy with a different ``P_S`` (packing-properties knob)."""
        return replace(self, size=replace(self.size, p_small=p_small))


@dataclass
class Workload:
    """A generated (or loaded) workload ready for simulation."""

    jobs: List[Job]
    eccs: List[ECC] = field(default_factory=list)
    machine_size: int = 320
    granularity: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        self.jobs.sort(key=lambda j: (j.submit, j.job_id))
        self.eccs.sort(key=lambda e: (e.issue_time, e.job_id))

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def batch_jobs(self) -> List[Job]:
        """Jobs scheduled flexibly by the scheduler."""
        return [j for j in self.jobs if not j.is_dedicated]

    @property
    def dedicated_jobs(self) -> List[Job]:
        """Jobs with rigid requested start times."""
        return [j for j in self.jobs if j.is_dedicated]

    def offered_load(self) -> float:
        """The paper's Load formula over this workload."""
        return offered_load(self.jobs, self.machine_size)

    def fresh_jobs(self) -> List[Job]:
        """Pristine job copies for one simulation run."""
        return [job.copy_for_run() for job in self.jobs]

    def scale_arrivals(self, factor: float) -> "Workload":
        """New workload with arrival times multiplied by ``factor``.

        This is how [7] (and the paper's Figure 1) varies load on a
        fixed log: stretching inter-arrival gaps lowers load, while
        sizes and runtimes — the packing properties — stay untouched.
        Dedicated start offsets are preserved relative to submission.
        """
        if factor <= 0:
            raise ValueError(f"arrival scale factor must be positive, got {factor}")
        scaled = []
        for job in self.jobs:
            start = None
            if job.requested_start is not None:
                start = job.submit * factor + (job.requested_start - job.submit)
            cancel = None
            if job.cancel_at is not None:
                # Preserve the queue-side patience relative to submission.
                cancel = job.submit * factor + (job.cancel_at - job.submit)
            scaled.append(
                Job(
                    job_id=job.job_id,
                    submit=job.submit * factor,
                    num=job.num,
                    estimate=job.original_estimate,
                    actual=job.actual,
                    kind=job.kind,
                    requested_start=start,
                    cancel_at=cancel,
                )
            )
        ratio = {job.job_id: job.submit for job in self.jobs}
        eccs = [
            ECC(
                job_id=e.job_id,
                issue_time=e.issue_time + ratio[e.job_id] * (factor - 1.0),
                kind=e.kind,
                amount=e.amount,
            )
            for e in self.eccs
        ]
        return Workload(
            jobs=scaled,
            eccs=eccs,
            machine_size=self.machine_size,
            granularity=self.granularity,
            description=f"{self.description} (arrivals x{factor:g})".strip(),
        )

    def to_cwf(self, target: Union[str, Path]) -> None:
        """Write the workload (submissions + ECCs) as a CWF file."""
        records: List[tuple[float, int, CWFRecord]] = []
        for job in self.jobs:
            records.append((job.submit, 0, CWFRecord.from_job(job)))
        for ecc in self.eccs:
            records.append((ecc.issue_time, 1, CWFRecord.from_ecc(ecc)))
        records.sort(key=lambda item: (item[0], item[1], item[2].job_id))
        write_cwf(
            (record for _, _, record in records),
            target,
            header=[
                f"Cloud Workload Format; {len(self.jobs)} jobs, {len(self.eccs)} ECCs",
                f"MaxProcs: {self.machine_size}",
                self.description or "generated by repro.workload.generator",
            ],
        )


class CWFWorkloadGenerator:
    """Synthesizes :class:`Workload` objects from a :class:`GeneratorConfig`."""

    def __init__(self, config: GeneratorConfig = GeneratorConfig()) -> None:
        self.config = config
        self._sizes = TwoStageSizeModel(config.size)
        self._lublin = LublinModel(config.lublin)

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Workload:
        """Draw one complete workload."""
        cfg = self.config
        # Independent substreams: job attributes and ECCs are identical
        # across load-knob (beta_arr) probes, so calibration sweeps one
        # smooth dimension (see LublinModel.sample_gap).
        arrival_rng, attr_rng, ecc_rng = rng.spawn(3)
        arrivals = self._lublin.sample_arrivals(cfg.n_jobs, arrival_rng)
        jobs: List[Job] = []
        eccs: List[ECC] = []
        for index, arrival in enumerate(arrivals, start=1):
            job = self._generate_job(index, arrival, attr_rng)
            jobs.append(job)
            eccs.extend(self._generate_eccs(job, ecc_rng))
        return Workload(
            jobs=jobs,
            eccs=eccs,
            machine_size=cfg.machine_size,
            granularity=cfg.size.granularity,
            description=(
                f"CWF synthetic: N={cfg.n_jobs} P_S={cfg.size.p_small:g} "
                f"P_D={cfg.p_dedicated:g} P_E={cfg.p_extend:g} P_R={cfg.p_reduce:g} "
                f"beta_arr={cfg.lublin.beta_arr:g}"
            ),
        )

    # ------------------------------------------------------------------
    def _round_time(self, value: float) -> float:
        if self.config.integral_times:
            return float(max(1, round(value)))
        return float(value)

    def _generate_job(self, job_id: int, arrival: float, rng: np.random.Generator) -> Job:
        cfg = self.config
        size = self._sizes.sample(rng)
        actual = self._round_time(self._lublin.sample_runtime(size, rng))
        estimate = self._round_time(actual * cfg.estimate_factor)
        submit = float(round(arrival)) if cfg.integral_times else arrival
        cancel_at = None
        if cfg.p_cancel > 0.0 and rng.random() < cfg.p_cancel:
            cancel_at = submit + self._round_time(
                exponential(cfg.cancel_mean_fraction * actual, rng)
            )
        if rng.random() < cfg.p_dedicated:
            offset = self._round_time(exponential(cfg.dedicated_start_mean, rng))
            return Job(
                job_id=job_id,
                submit=submit,
                num=size,
                estimate=estimate,
                actual=actual,
                kind=JobKind.DEDICATED,
                requested_start=submit + offset,
                cancel_at=cancel_at,
            )
        return Job(
            job_id=job_id,
            submit=submit,
            num=size,
            estimate=estimate,
            actual=actual,
            kind=JobKind.BATCH,
            cancel_at=cancel_at,
        )

    def _generate_eccs(self, job: Job, rng: np.random.Generator) -> List[ECC]:
        cfg = self.config
        commands: List[ECC] = []
        for kind, probability in (
            (ECCKind.EXTEND_TIME, cfg.p_extend),
            (ECCKind.REDUCE_TIME, cfg.p_reduce),
        ):
            if probability <= 0.0 or rng.random() >= probability:
                continue
            amount = self._round_time(
                exponential(cfg.ecc_amount_mean * job.estimate, rng)
            )
            issue_offset = exponential(
                cfg.ecc_issue_mean_fraction * job.estimate, rng
            )
            commands.append(
                ECC(
                    job_id=job.job_id,
                    issue_time=self._round_time(job.submit + issue_offset),
                    kind=kind,
                    amount=amount,
                )
            )
        return commands


__all__ = ["CWFWorkloadGenerator", "GeneratorConfig", "Workload"]
