"""The paper's offered-load formula (§IV-D).

.. math::

    Load = \\frac{\\lambda}{M} \\sum_{i=1}^{N_J} \\frac{w_i.num}{\\mu_i}

with :math:`\\lambda` the inverse of the experiment duration,
:math:`M` the machine size and :math:`1/\\mu_i` the runtime of job
``i`` — i.e. total requested processor-seconds divided by the log span
times machine size.  The same convention is used for real logs in [7]:
"multiplying the job's sizes by their runtimes, summing these values,
and then dividing the result by the log's duration and the size of the
machine".
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.workload.job import Job


def log_span(jobs: Sequence[Job]) -> float:
    """Duration of a workload: first submission to last job end.

    Using ``max(submit + runtime)`` rather than the last submission
    avoids overstating the load of short bursty logs; for long logs the
    two coincide to within one job runtime.
    """
    if not jobs:
        return 0.0
    start = min(job.submit for job in jobs)
    end = max(job.submit + job.effective_runtime() for job in jobs)
    return end - start


def offered_load(
    jobs: Sequence[Job],
    machine_size: int,
    duration: Optional[float] = None,
) -> float:
    """Offered load of a workload on a machine of ``machine_size``.

    Args:
        jobs: The workload (order irrelevant).
        machine_size: The paper's ``M``.
        duration: Override the log span (e.g. with an observed
            makespan); defaults to :func:`log_span`.

    Returns:
        The dimensionless offered load; 0.0 for empty/degenerate logs.

    >>> from repro.workload.job import Job
    >>> job = Job(job_id=1, submit=0.0, num=160, estimate=100.0)
    >>> offered_load([job], machine_size=320)
    0.5
    """
    if machine_size <= 0:
        raise ValueError(f"machine size must be positive, got {machine_size}")
    if not jobs:
        return 0.0
    span = log_span(jobs) if duration is None else float(duration)
    if span <= 0:
        return 0.0
    work = sum(job.num * job.effective_runtime() for job in jobs)
    return work / (machine_size * span)


def mean_runtime(jobs: Iterable[Job]) -> float:
    """The paper's :math:`\\bar\\mu{}^{-1}`: average job runtime."""
    jobs = list(jobs)
    if not jobs:
        return 0.0
    return sum(job.effective_runtime() for job in jobs) / len(jobs)


def mean_size(jobs: Iterable[Job]) -> float:
    """The paper's :math:`\\bar n`: average requested processors."""
    jobs = list(jobs)
    if not jobs:
        return 0.0
    return sum(job.num for job in jobs) / len(jobs)


__all__ = ["log_span", "mean_runtime", "mean_size", "offered_load"]
