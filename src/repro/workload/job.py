"""Job records.

A :class:`Job` is the paper's ``w_i`` tuple with full lifecycle state.
Batch jobs carry ``(num, dur, arr, scount)`` and dedicated (interactive)
jobs carry ``(num, dur, start)`` — see the Notations box.  We keep a
single class with a :class:`JobKind` discriminator because dedicated
jobs *become* batch jobs when their start time arrives (Algorithm 3,
``Move_Dedicated_Head_To_Batch_Head``).

Runtime-elasticity semantics pinned here:

- ``estimate`` is the user-estimated execution time (SWF field 9, the
  paper's ``dur``).  Schedulers see only estimates; the kill-by time is
  ``start + estimate``.
- ``actual`` is the true compute demand (SWF field 4).  By default the
  generator sets ``actual == estimate`` (the paper's model draws one
  runtime per job); an over-estimation factor ablation separates them.
- Elastic Control Commands mutate *both*: an ET/RT changes the user's
  declared requirement and the work actually done, shifting the
  kill-by time on-the-fly (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class JobKind(Enum):
    """Batch jobs are placed by the scheduler; dedicated jobs are rigid."""

    BATCH = "batch"
    DEDICATED = "dedicated"


class JobState(Enum):
    """Lifecycle of a job inside a simulation."""

    PENDING = "pending"  # exists in the workload, not yet submitted
    QUEUED = "queued"  # in W^b or W^d
    RUNNING = "running"  # in A, holding processors
    FINISHED = "finished"  # released its processors
    CANCELLED = "cancelled"  # withdrawn from the queue before starting
    FAILED = "failed"  # fault-injected failure with retries exhausted

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class Job:
    """A parallel job (the paper's ``w^b`` / ``w^d`` tuple).

    Attributes:
        job_id: Unique identifier (SWF field 1).
        submit: Arrival time into the system (``arr``; SWF field 2).
        num: Requested processors (``num``; SWF field 8).
        estimate: Current user-estimated runtime (``dur``; SWF field 9).
            Mutable at runtime through ECCs.
        actual: Actual compute demand; defaults to ``estimate``.
        kind: Batch or dedicated.
        requested_start: Rigid start time for dedicated jobs (CWF field
            19); ``None`` for batch jobs.
        scount: Skip count — number of scheduling cycles the job was
            skipped at the head of the queue (Delayed-LOS, §III-A).
        ecc_count: Number of ECCs applied so far (a per-job cap may be
            enforced by the ECC processor).
        cancel_at: Optional user cancellation instant (SWF status 5
            jobs).  A job still queued then is withdrawn; a running job
            is terminated at that instant.
        min_procs / pref_procs / max_procs: Optional malleability range
            (docs/malleability.md).  ``None`` on all three (the
            default) marks the job *rigid* — exactly the paper's model,
            and byte-identical behaviour for every existing workload.
            When any is set the missing ones default to ``num`` and the
            scheduler-initiated malleability layer may resize the job
            within ``[min_procs, max_procs]`` at runtime; ``pref_procs``
            is the size the job would ideally run at.
    """

    job_id: int
    submit: float
    num: int
    estimate: float
    actual: Optional[float] = None
    kind: JobKind = JobKind.BATCH
    requested_start: Optional[float] = None
    scount: int = 0
    ecc_count: int = 0
    cancel_at: Optional[float] = None

    # Malleability range (None on all three = rigid, the default).
    min_procs: Optional[int] = None
    pref_procs: Optional[int] = None
    max_procs: Optional[int] = None

    # Lifecycle (filled in by the simulation runner).
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    killed: bool = False  # terminated at kill-by before actual completed
    #: Times the job failed (fault injection / eviction) and re-entered
    #: the batch queue; 0 on the fault-free path.
    requeues: int = 0
    #: Instant of the latest requeue (None before any failure); this is
    #: the job's *effective arrival* for queue-ordering purposes.
    requeued_at: Optional[float] = None

    # Immutable originals, for metrics and round-tripping.
    original_estimate: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.num <= 0:
            raise ValueError(f"job {self.job_id}: num must be positive, got {self.num}")
        if self.estimate <= 0:
            raise ValueError(
                f"job {self.job_id}: estimate must be positive, got {self.estimate}"
            )
        if self.submit < 0:
            raise ValueError(f"job {self.job_id}: negative submit time {self.submit}")
        if self.actual is None:
            self.actual = self.estimate
        if self.actual < 0:
            raise ValueError(f"job {self.job_id}: negative actual runtime {self.actual}")
        if self.cancel_at is not None and self.cancel_at < self.submit:
            raise ValueError(
                f"job {self.job_id}: cancel_at {self.cancel_at} precedes submit {self.submit}"
            )
        if self.kind is JobKind.DEDICATED:
            if self.requested_start is None:
                raise ValueError(f"dedicated job {self.job_id} needs a requested_start")
            if self.requested_start < self.submit:
                raise ValueError(
                    f"job {self.job_id}: requested_start {self.requested_start} precedes "
                    f"submit {self.submit}"
                )
        elif self.requested_start is not None:
            raise ValueError(f"batch job {self.job_id} must not set requested_start")
        if (
            self.min_procs is not None
            or self.pref_procs is not None
            or self.max_procs is not None
        ):
            if self.min_procs is None:
                self.min_procs = self.num
            if self.max_procs is None:
                self.max_procs = self.num
            if self.pref_procs is None:
                self.pref_procs = self.num
            if self.min_procs <= 0:
                raise ValueError(
                    f"job {self.job_id}: min_procs must be positive, got {self.min_procs}"
                )
            if not self.min_procs <= self.pref_procs <= self.max_procs:
                raise ValueError(
                    f"job {self.job_id}: malleability range must satisfy "
                    f"min <= pref <= max, got {self.min_procs} <= "
                    f"{self.pref_procs} <= {self.max_procs}"
                )
            if not self.min_procs <= self.num <= self.max_procs:
                raise ValueError(
                    f"job {self.job_id}: num {self.num} outside malleability "
                    f"range [{self.min_procs}, {self.max_procs}]"
                )
        if not self.original_estimate:
            self.original_estimate = self.estimate

    # ------------------------------------------------------------------
    # Scheduler-visible quantities
    # ------------------------------------------------------------------
    @property
    def is_dedicated(self) -> bool:
        """Whether the job is rigid in its start time."""
        return self.kind is JobKind.DEDICATED

    @property
    def is_malleable(self) -> bool:
        """Whether the job declared a processor range (docs/malleability.md).

        Rigid jobs (all three range fields ``None``, the default) are
        never touched by the scheduler-initiated malleability layer.
        """
        return self.min_procs is not None

    def effective_runtime(self) -> float:
        """Time the job will actually occupy processors once started.

        Jobs overrunning their estimate are killed at the kill-by time
        (backfill semantics), so occupancy is ``min(actual, estimate)``.
        """
        assert self.actual is not None
        return min(self.actual, self.estimate)

    def kill_by(self) -> float:
        """Scheduled termination instant (requires the job be running)."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time + self.estimate

    def residual(self, now: float) -> float:
        """Scheduler-visible remaining runtime (the paper's ``res``).

        Based on the estimate, as in EASY/LOS: the scheduler cannot see
        the actual runtime of a running job.
        """
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return max(0.0, self.start_time + self.estimate - now)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def wait_time(self) -> float:
        """Queueing delay ``start - submit`` (requires job started)."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} never started")
        return self.start_time - self.submit

    def runtime(self) -> float:
        """Realized runtime ``finish - start`` (requires job finished)."""
        if self.start_time is None or self.finish_time is None:
            raise ValueError(f"job {self.job_id} did not complete")
        return self.finish_time - self.start_time

    def effective_arrival(self) -> float:
        """When the job last entered the batch queue.

        The original submission for never-failed jobs; the latest
        requeue instant otherwise.  FIFO queue ordering is defined on
        this quantity so requeued jobs rejoin at the tail without
        violating the Notations-box arrival invariant.
        """
        return self.requeued_at if self.requeued_at is not None else self.submit

    def dedicated_delay(self) -> float:
        """How late a dedicated job started relative to its rigid start.

        Zero for on-time starts.  Only meaningful for dedicated jobs.
        """
        if self.requested_start is None or self.start_time is None:
            raise ValueError(f"job {self.job_id} is not a started dedicated job")
        return max(0.0, self.start_time - self.requested_start)

    def copy_for_run(self) -> "Job":
        """Fresh copy with pristine lifecycle state.

        Experiments run the *same* workload under several schedulers;
        each run gets independent mutable copies.
        """
        return Job(
            job_id=self.job_id,
            submit=self.submit,
            num=self.num,
            estimate=self.original_estimate,
            actual=self.actual,
            kind=self.kind,
            requested_start=self.requested_start,
            cancel_at=self.cancel_at,
            min_procs=self.min_procs,
            pref_procs=self.pref_procs,
            max_procs=self.max_procs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "D" if self.is_dedicated else "B"
        return (
            f"Job#{self.job_id}[{tag} num={self.num} est={self.estimate:.0f} "
            f"arr={self.submit:.0f} {self.state}]"
        )


__all__ = ["Job", "JobKind", "JobState"]
