"""Workload validation.

External SWF/CWF traces are messy; this module checks a workload for
everything the simulation runner would reject (hard errors) plus
conditions that usually signal a broken trace (warnings), returning a
structured issue list instead of failing on the first problem.  Used
by ``repro-sim --validate`` before simulating user-supplied files.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.workload.generator import Workload


class Severity(Enum):
    """Issue severities."""

    ERROR = "error"  # the runner would reject or mis-simulate this
    WARNING = "warning"  # suspicious but simulatable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.code}: {self.message}"


def validate_workload(workload: Workload) -> List[Issue]:
    """Check a workload; returns all issues found (empty = clean)."""
    issues: List[Issue] = []
    seen_ids: Dict[int, int] = {}

    for job in workload.jobs:
        seen_ids[job.job_id] = seen_ids.get(job.job_id, 0) + 1
        if job.num > workload.machine_size:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "job-too-large",
                    f"job {job.job_id} requests {job.num} > machine "
                    f"{workload.machine_size}",
                )
            )
        if workload.granularity > 1 and job.num % workload.granularity != 0:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "granularity",
                    f"job {job.job_id} size {job.num} not a multiple of "
                    f"{workload.granularity}",
                )
            )
        if job.actual is not None and job.actual > job.estimate:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "under-estimate",
                    f"job {job.job_id} actual {job.actual:g}s exceeds estimate "
                    f"{job.estimate:g}s (will be killed at kill-by)",
                )
            )
        if job.estimate > 7 * 86400:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "huge-runtime",
                    f"job {job.job_id} estimate {job.estimate:g}s exceeds a week",
                )
            )

    for job_id, count in seen_ids.items():
        if count > 1:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "duplicate-id",
                    f"job id {job_id} appears {count} times",
                )
            )

    by_id = {job.job_id: job for job in workload.jobs}
    for ecc in workload.eccs:
        target = by_id.get(ecc.job_id)
        if target is None:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "dangling-ecc",
                    f"ECC targets unknown job {ecc.job_id}",
                )
            )
            continue
        if ecc.issue_time < target.submit:
            issues.append(
                Issue(
                    Severity.ERROR,
                    "ecc-before-submit",
                    f"ECC for job {ecc.job_id} issued at {ecc.issue_time:g}s "
                    f"before submission at {target.submit:g}s",
                )
            )
        if ecc.kind.is_time and ecc.amount > 100 * target.estimate:
            issues.append(
                Issue(
                    Severity.WARNING,
                    "ecc-huge-amount",
                    f"ECC for job {ecc.job_id} amount {ecc.amount:g}s is "
                    f">100x the job's estimate",
                )
            )

    if workload.jobs and workload.offered_load() > 3.0:
        issues.append(
            Issue(
                Severity.WARNING,
                "extreme-load",
                f"offered load {workload.offered_load():.2f} > 3: queues will "
                "grow without bound for most of the run",
            )
        )
    return issues


def has_errors(issues: List[Issue]) -> bool:
    """Whether any issue is a hard error."""
    return any(issue.severity is Severity.ERROR for issue in issues)


def format_issues(issues: List[Issue]) -> str:
    """Human-readable report (a clean message when empty)."""
    if not issues:
        return "workload OK: no issues found"
    lines = [f"{len(issues)} issue(s) found:"]
    for issue in issues:
        lines.append(f"  [{issue.severity.value:7s}] {issue.code}: {issue.message}")
    return "\n".join(lines)


__all__ = ["Issue", "Severity", "format_issues", "has_errors", "validate_workload"]
