"""Downey's workload model (1997) — an alternative to Lublin.

Allen Downey's "A parallel workload model and its implications for
processor allocation" is the other classic statistical model of
supercomputer workloads; Lublin & Feitelson [17] compare against it.
Having a second, structurally different generator lets the benchmark
harness check that the paper's conclusions are not artifacts of the
Lublin model (``benchmarks/bench_study_model_sensitivity.py``).

Model structure (as published):

- *cumulative speedup-adjusted lifetime* ``L`` is log-uniform over
  ``[ln(lo), ln(hi)]`` — Downey observed that total allocated
  CPU-seconds of jobs fit a uniform distribution in log space,
- *parallelism* ``n`` is log-uniform over ``[0, ln(N)]`` (jobs request
  anywhere from 1 processor to the full machine, with small requests
  more common),
- runtime is ``L / n`` — bigger partitions finish faster (Downey's
  model assumes near-linear speedup within a job's parallelism range),
- arrivals are Poisson (exponential inter-arrival gaps), the standard
  assumption of the era; the rate is this model's load knob.

Sizes are snapped to the machine granularity for BlueGene-style
machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List

import numpy as np

from repro.workload.generator import Workload
from repro.workload.job import Job, JobKind


@dataclass(frozen=True)
class DowneyConfig:
    """Parameters of the Downey model.

    Attributes:
        machine_size: Total processors ``N``.
        granularity: Allocation unit (sizes snap up to it).
        lifetime_lo / lifetime_hi: Bounds of the log-uniform total-work
            distribution, in processor-seconds.  Downey's SDSC fits
            span roughly seconds to a week of cumulative CPU time.
        mean_interarrival: Poisson arrival knob (seconds).
        max_parallelism_fraction: Cap on a job's size as a fraction of
            the machine (1.0 = full-machine jobs possible).
    """

    machine_size: int = 320
    granularity: int = 32
    lifetime_lo: float = 1.0e3
    lifetime_hi: float = 3.0e7
    mean_interarrival: float = 300.0
    max_parallelism_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.machine_size <= 0 or self.granularity <= 0:
            raise ValueError("machine geometry must be positive")
        if self.machine_size % self.granularity != 0:
            raise ValueError(
                f"machine {self.machine_size} not a multiple of granularity "
                f"{self.granularity}"
            )
        if not 0.0 < self.lifetime_lo < self.lifetime_hi:
            raise ValueError("need 0 < lifetime_lo < lifetime_hi")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not 0.0 < self.max_parallelism_fraction <= 1.0:
            raise ValueError("max_parallelism_fraction must be in (0, 1]")

    def with_mean_interarrival(self, value: float) -> "DowneyConfig":
        """Copy with a different load knob."""
        return replace(self, mean_interarrival=value)


class DowneyModel:
    """Sampler for the Downey workload model."""

    def __init__(self, config: DowneyConfig = DowneyConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def sample_parallelism(self, rng: np.random.Generator) -> int:
        """Log-uniform job size in [granularity, fraction * N]."""
        cfg = self.config
        cap = max(cfg.granularity, int(cfg.machine_size * cfg.max_parallelism_fraction))
        log_n = rng.uniform(0.0, math.log(cap))
        raw = math.exp(log_n)
        units = max(1, math.ceil(raw / cfg.granularity))
        return min(cap - cap % cfg.granularity or cfg.granularity, units * cfg.granularity)

    def sample_lifetime(self, rng: np.random.Generator) -> float:
        """Log-uniform cumulative work in processor-seconds."""
        cfg = self.config
        log_l = rng.uniform(math.log(cfg.lifetime_lo), math.log(cfg.lifetime_hi))
        return math.exp(log_l)

    def sample_gap(self, rng: np.random.Generator) -> float:
        """Poisson arrivals: exponential inter-arrival gap."""
        return float(rng.exponential(self.config.mean_interarrival))

    # ------------------------------------------------------------------
    def generate(self, n_jobs: int, rng: np.random.Generator) -> Workload:
        """Draw a complete batch workload of ``n_jobs`` jobs."""
        if n_jobs < 0:
            raise ValueError(f"n_jobs must be non-negative, got {n_jobs}")
        cfg = self.config
        jobs: List[Job] = []
        now = 0.0
        for job_id in range(1, n_jobs + 1):
            now += self.sample_gap(rng)
            num = self.sample_parallelism(rng)
            lifetime = self.sample_lifetime(rng)
            runtime = max(1.0, round(lifetime / num))
            jobs.append(
                Job(
                    job_id=job_id,
                    submit=round(now),
                    num=num,
                    estimate=runtime,
                    kind=JobKind.BATCH,
                )
            )
        return Workload(
            jobs=jobs,
            machine_size=cfg.machine_size,
            granularity=cfg.granularity,
            description=(
                f"Downey synthetic: N={n_jobs}, mean gap {cfg.mean_interarrival:g}s"
            ),
        )


def calibrate_downey(
    target_load: float,
    n_jobs: int,
    seed: int,
    config: DowneyConfig = DowneyConfig(),
    tolerance: float = 0.03,
    max_iterations: int = 40,
) -> Workload:
    """Bisect the Poisson rate until the offered load hits the target.

    Mirrors :func:`repro.experiments.calibrate.calibrate_beta_arr` for
    the Downey model (load decreases with ``mean_interarrival``).
    """
    if target_load <= 0:
        raise ValueError("target load must be positive")
    lo, hi = 1.0, 1.0e6  # mean inter-arrival bracket (seconds)
    best = None
    for _ in range(max_iterations):
        mid = math.sqrt(lo * hi)  # geometric: the knob spans decades
        workload = DowneyModel(config.with_mean_interarrival(mid)).generate(
            n_jobs, np.random.default_rng(seed)
        )
        load = workload.offered_load()
        if best is None or abs(load - target_load) < abs(best[0] - target_load):
            best = (load, workload)
        if abs(load - target_load) <= tolerance:
            return workload
        if load > target_load:
            lo = mid  # too much load -> slow arrivals down
        else:
            hi = mid
    assert best is not None
    return best[1]


__all__ = ["DowneyConfig", "DowneyModel", "calibrate_downey"]
