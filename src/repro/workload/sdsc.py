"""SDSC-like validation trace (substitute for the real SDSC SP2 log).

Figure 1 of the paper validates the LOS implementation by re-running
the comparison of [7] on the SDSC log from the Parallel Workloads
Archive, varying load by multiplying arrival times by a constant
factor.  The real log is unavailable offline, so — per DESIGN.md §2 —
we generate a statistically equivalent trace from the *full* Lublin
model (whose parameters were fit to archive logs including SDSC's) on
a 128-processor SP2-like machine with no allocation granularity, and
vary load exactly the same way (:meth:`Workload.scale_arrivals`).

The validation claim this preserves: on a real-log-shaped workload
(many small, power-of-two-heavy jobs; bursty arrivals), LOS's DP
packing beats EASY's single-job backfilling.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from repro.workload.generator import Workload
from repro.workload.job import Job, JobKind
from repro.workload.lublin import LublinConfig, LublinModel

#: SDSC SP2: 128 nodes (Parallel Workloads Archive header).
SDSC_MACHINE_SIZE = 128


def sdsc_like_config(machine_size: int = SDSC_MACHINE_SIZE) -> LublinConfig:
    """Lublin configuration for the SDSC-like trace."""
    return LublinConfig(max_nodes=machine_size)


def generate_sdsc_like(
    n_jobs: int,
    rng: np.random.Generator,
    machine_size: int = SDSC_MACHINE_SIZE,
    beta_arr: float = 0.48,
) -> Workload:
    """Generate an SDSC-like workload of ``n_jobs`` jobs.

    Args:
        n_jobs: Trace length.
        rng: Seeded generator (determinism).
        machine_size: Machine the trace targets (128 for SP2).
        beta_arr: Base arrival-rate knob; Figure-1 experiments then
            scale arrivals to sweep load, as [7] does, rather than
            re-drawing with different ``beta_arr``.

    Returns:
        A batch-only :class:`Workload` with granularity 1.
    """
    config = replace(sdsc_like_config(machine_size), beta_arr=beta_arr)
    model = LublinModel(config)
    samples = model.sample(n_jobs, rng)
    jobs: List[Job] = [
        Job(
            job_id=index,
            submit=float(round(sample.arrival)),
            num=sample.size,
            estimate=float(max(1, round(sample.runtime))),
            kind=JobKind.BATCH,
        )
        for index, sample in enumerate(samples, start=1)
    ]
    return Workload(
        jobs=jobs,
        machine_size=machine_size,
        granularity=1,
        description=f"SDSC-like Lublin trace: N={n_jobs}, M={machine_size}",
    )


__all__ = ["SDSC_MACHINE_SIZE", "generate_sdsc_like", "sdsc_like_config"]
