"""The Lublin–Feitelson analytical workload model [17].

This is the model behind both the paper's synthetic workloads and the
SDSC-like validation trace of Figure 1.  It has three coupled parts:

Size (degree of parallelism)
    A job is serial with probability ``serial_prob``; parallel sizes
    are ``2**u`` with ``u`` drawn from a two-stage uniform on
    ``[ulow, umed, uhi]`` and rounded to an integer power of two with
    probability ``pow2_prob``.

Runtime
    ``2**x`` seconds with ``x`` drawn from a hyper-Gamma whose first-
    component probability is linear in the job size:
    ``p = pa * size + pb`` (clipped to [0, 1]).  Large jobs therefore
    skew towards the second, long-runtime component — the paper's
    "runtimes of jobs are correlated with their size".

Arrivals
    Inter-arrival gaps are ``2**g`` seconds with
    ``g ~ Gamma(alpha_arr, beta_arr)``; ``beta_arr`` is the load knob
    the paper sweeps (Table II).  A daily cycle modulates the gaps:
    during rush hours gaps shrink by the Arrive-Rush-to-All-Ratio
    (ARAR).  The count Gamma(alpha_num, beta_num) — "the number of
    jobs that arrive in each interval" — is available as an optional
    hard per-hour admission quota (``quota_enabled``) for burstiness
    ablations; it is off by default because its mean (~15 jobs/hour)
    sits below the rate the paper's Load = 1 points require, so it
    cannot have been a hard cap in the original experiments.  This
    reproduces the day-cycled arrival structure of real logs without
    copying the (unavailable) original C implementation line-by-line;
    DESIGN.md §2 records the interpretation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.workload.distributions import HyperGamma, gamma, two_stage_uniform

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class LublinConfig:
    """Parameters of the Lublin–Feitelson model.

    Defaults follow the paper's Tables I–II for runtime and arrival
    parameters and the published model defaults for the size part.
    """

    max_nodes: int = 320

    # --- size model ---------------------------------------------------
    serial_prob: float = 0.244
    pow2_prob: float = 0.576
    ulow: float = 0.8  # log2 of smallest parallel size
    umed_offset: float = 2.5  # umed = uhi - umed_offset
    uprob: float = 0.86

    # --- runtime model (Table I) ---------------------------------------
    alpha1: float = 4.2
    beta1: float = 0.94
    alpha2: float = 312.0
    beta2: float = 0.03
    pa: float = -0.0054
    pb: float = 0.78
    min_runtime: float = 1.0
    max_runtime: float = 86400.0  # clamp pathological tail samples (1 day)

    # --- arrival model (Table II) ---------------------------------------
    alpha_arr: float = 13.2303
    beta_arr: float = 0.5101  # midpoint of the paper's sweep range
    alpha_num: float = 15.1737
    beta_num: float = 0.9631
    arar: float = 1.0225
    rush_start_hour: int = 8
    rush_end_hour: int = 18
    #: Hard per-hour admission cap drawn from Gamma(alpha_num,
    #: beta_num).  Off by default: the cap's mean (~15 jobs/hour) is
    #: *below* the arrival rate the paper's Load = 1 points require
    #: (~23 jobs/hour on the 320-proc machine), so the count Gamma
    #: cannot be a hard cap in the paper's experiments — it shapes the
    #: daily cycle instead (via ARAR).  Enable for burstiness ablations.
    quota_enabled: bool = False

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {self.max_nodes}")
        if not 0.0 <= self.serial_prob <= 1.0:
            raise ValueError("serial_prob must be a probability")
        if not 0.0 <= self.pow2_prob <= 1.0:
            raise ValueError("pow2_prob must be a probability")
        if self.beta_arr <= 0:
            raise ValueError("beta_arr must be positive")
        if not 0 <= self.rush_start_hour < self.rush_end_hour <= 24:
            raise ValueError("rush hours must satisfy 0 <= start < end <= 24")

    @property
    def uhi(self) -> float:
        """Upper log2-size bound: log2 of the machine size."""
        return math.log2(self.max_nodes)

    @property
    def umed(self) -> float:
        """Breakpoint of the two-stage uniform size distribution."""
        return max(self.ulow, self.uhi - self.umed_offset)

    def with_beta_arr(self, beta_arr: float) -> "LublinConfig":
        """Copy with a different load knob (used by the calibrator)."""
        return replace(self, beta_arr=beta_arr)


@dataclass
class LublinSample:
    """One raw model draw: (arrival time, size, runtime)."""

    arrival: float
    size: int
    runtime: float


class LublinModel:
    """Sampler for the Lublin–Feitelson model.

    All draws flow from the supplied generator; two models built with
    equal configs and seeds produce identical traces.
    """

    def __init__(self, config: LublinConfig = LublinConfig()) -> None:
        self.config = config
        self._runtime_mixture = HyperGamma(
            config.alpha1, config.beta1, config.alpha2, config.beta2
        )

    # ------------------------------------------------------------------
    # Component samplers
    # ------------------------------------------------------------------
    def sample_size(self, rng: np.random.Generator) -> int:
        """Draw a job size in processors (degree of parallelism)."""
        cfg = self.config
        if cfg.max_nodes == 1 or rng.random() < cfg.serial_prob:
            return 1
        u = two_stage_uniform(cfg.ulow, cfg.umed, cfg.uhi, cfg.uprob, rng)
        if rng.random() < cfg.pow2_prob:
            size = 2 ** int(round(u))
        else:
            size = int(round(2.0**u))
        return max(1, min(cfg.max_nodes, size))

    def first_component_prob(self, size: int) -> float:
        """Mixing probability ``p = pa*size + pb`` clipped to [0, 1]."""
        cfg = self.config
        return min(1.0, max(0.0, cfg.pa * size + cfg.pb))

    def sample_runtime(self, size: int, rng: np.random.Generator) -> float:
        """Draw a runtime (seconds) correlated with ``size``."""
        cfg = self.config
        x = self._runtime_mixture.sample(self.first_component_prob(size), rng)
        runtime = 2.0**x
        return float(min(cfg.max_runtime, max(cfg.min_runtime, runtime)))

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def _is_rush_hour(self, time: float) -> bool:
        hour = (time / SECONDS_PER_HOUR) % 24.0
        return self.config.rush_start_hour <= hour < self.config.rush_end_hour

    def _interval_quota(self, rng: np.random.Generator) -> int:
        """Max arrivals admitted into one 1-hour interval."""
        n = gamma(self.config.alpha_num, self.config.beta_num, rng)
        return max(1, int(round(n)))

    def sample_gap(self, time: float, rng: np.random.Generator) -> float:
        """Inter-arrival gap in seconds at simulation ``time``.

        Sampled as ``2 ** (beta_arr * Gamma(alpha_arr, 1))`` — by the
        Gamma scaling property this is exactly ``2 ** Gamma(alpha_arr,
        beta_arr)``, but the standard-Gamma draw is independent of
        ``beta_arr``, so with a fixed seed the load knob *stretches* a
        fixed arrival pattern monotonically.  The load calibrator's
        bisection relies on this.
        """
        cfg = self.config
        g = cfg.beta_arr * gamma(cfg.alpha_arr, 1.0, rng)
        gap = 2.0**g
        # ARAR: the rush/overall arrival-rate ratio.  Rush hours see
        # proportionally shorter gaps, off hours longer ones.
        if self._is_rush_hour(time):
            gap /= cfg.arar
        else:
            gap *= cfg.arar
        return float(max(1.0, gap))

    def sample_arrivals(self, count: int, rng: np.random.Generator) -> List[float]:
        """Generate ``count`` non-decreasing arrival times from t=0.

        Implements the quota/spill structure: at most one interval
        quota of jobs lands inside each 1-hour window; once the quota
        is exhausted the clock jumps to the next window.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        # Independent substreams: the gap stream is stretched by
        # beta_arr while the quota stream is untouched by it, keeping
        # the whole arrival pattern smooth in the load knob.
        gap_rng, quota_rng = rng.spawn(2)
        arrivals: List[float] = []
        now = 0.0
        interval_index = 0
        quota = self._interval_quota(quota_rng)
        admitted = 0
        while len(arrivals) < count:
            now += self.sample_gap(now, gap_rng)
            if self.config.quota_enabled:
                idx = int(now // SECONDS_PER_HOUR)
                if idx > interval_index:
                    interval_index = idx
                    quota = self._interval_quota(quota_rng)
                    admitted = 0
                if admitted >= quota:
                    # Quota exhausted: spill to the next hour's start.
                    now = (interval_index + 1) * SECONDS_PER_HOUR
                    interval_index += 1
                    quota = self._interval_quota(quota_rng)
                    admitted = 0
            arrivals.append(now)
            admitted += 1
        return arrivals

    # ------------------------------------------------------------------
    # Full trace
    # ------------------------------------------------------------------
    def sample(self, count: int, rng: np.random.Generator) -> List[LublinSample]:
        """Draw a complete raw trace of ``count`` jobs."""
        arrivals = self.sample_arrivals(count, rng)
        out = []
        for arrival in arrivals:
            size = self.sample_size(rng)
            runtime = self.sample_runtime(size, rng)
            out.append(LublinSample(arrival=arrival, size=size, runtime=runtime))
        return out


__all__ = ["LublinConfig", "LublinModel", "LublinSample", "SECONDS_PER_HOUR"]
