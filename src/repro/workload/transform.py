"""Workload transformations: slicing, merging, filtering.

Standard trace-handling operations when working with archive logs or
composing scenarios:

- :func:`time_slice` — extract a submission window (re-based to t=0),
- :func:`merge` — combine workloads (e.g. a batch background plus a
  hand-built dedicated schedule) with job-id collision handling,
- :func:`filter_jobs` — keep a predicate-selected subset with its ECCs,
- :func:`head` — the first N jobs by submission.

All functions return new :class:`Workload` objects; inputs are never
mutated (jobs are copied via :meth:`Job.copy_for_run`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.workload.ecc import ECC
from repro.workload.generator import Workload
from repro.workload.job import Job


def _copy_shift(job: Job, delta: float) -> Job:
    return Job(
        job_id=job.job_id,
        submit=job.submit + delta,
        num=job.num,
        estimate=job.original_estimate,
        actual=job.actual,
        kind=job.kind,
        requested_start=(
            None if job.requested_start is None else job.requested_start + delta
        ),
        cancel_at=None if job.cancel_at is None else job.cancel_at + delta,
    )


def time_slice(
    workload: Workload,
    start: float,
    end: float,
    rebase: bool = True,
) -> Workload:
    """Jobs submitted in ``[start, end)``, with their ECCs.

    Args:
        workload: Source workload.
        start / end: Submission-time window.
        rebase: Shift the slice so its first kept submission is the
            window start relative to zero (standard when excerpting
            archive logs).

    Raises:
        ValueError: when ``start >= end``.
    """
    if start >= end:
        raise ValueError(f"empty window [{start}, {end})")
    kept = [job for job in workload.jobs if start <= job.submit < end]
    delta = -start if rebase else 0.0
    kept_ids = {job.job_id for job in kept}
    jobs = [_copy_shift(job, delta) for job in kept]
    eccs = [
        ECC(
            job_id=e.job_id,
            issue_time=max(0.0, e.issue_time + delta),
            kind=e.kind,
            amount=e.amount,
        )
        for e in workload.eccs
        if e.job_id in kept_ids
    ]
    return Workload(
        jobs=jobs,
        eccs=eccs,
        machine_size=workload.machine_size,
        granularity=workload.granularity,
        description=f"{workload.description} [slice {start:g}..{end:g})".strip(),
    )


def filter_jobs(
    workload: Workload, predicate: Callable[[Job], bool]
) -> Workload:
    """Keep jobs satisfying ``predicate`` (and their ECCs)."""
    kept = [job.copy_for_run() for job in workload.jobs if predicate(job)]
    kept_ids = {job.job_id for job in kept}
    return Workload(
        jobs=kept,
        eccs=[e for e in workload.eccs if e.job_id in kept_ids],
        machine_size=workload.machine_size,
        granularity=workload.granularity,
        description=f"{workload.description} [filtered]".strip(),
    )


def head(workload: Workload, n: int) -> Workload:
    """The first ``n`` jobs by submission order (with their ECCs)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    kept_ids = {job.job_id for job in workload.jobs[:n]}
    return filter_jobs(workload, lambda job: job.job_id in kept_ids)


def merge(
    workloads: Sequence[Workload],
    machine_size: Optional[int] = None,
    granularity: Optional[int] = None,
) -> Workload:
    """Combine workloads into one, remapping colliding job ids.

    Ids from the first workload are preserved; later workloads keep
    their ids where unique and otherwise get fresh ids above the
    current maximum (their ECCs are remapped consistently).

    Args:
        workloads: At least one source.
        machine_size / granularity: Target geometry; defaults to the
            maxima across sources (so every job still fits).
    """
    if not workloads:
        raise ValueError("need at least one workload")
    target_machine = machine_size or max(w.machine_size for w in workloads)
    target_gran = granularity or max(w.granularity for w in workloads)

    jobs: List[Job] = []
    eccs: List[ECC] = []
    used_ids: set[int] = set()
    next_id = 1
    for source in workloads:
        remap: dict[int, int] = {}
        for job in source.jobs:
            new_id = job.job_id
            if new_id in used_ids:
                while next_id in used_ids:
                    next_id += 1
                new_id = next_id
            remap[job.job_id] = new_id
            used_ids.add(new_id)
            clone = job.copy_for_run()
            clone.job_id = new_id
            jobs.append(clone)
        for ecc in source.eccs:
            eccs.append(
                ECC(
                    job_id=remap[ecc.job_id],
                    issue_time=ecc.issue_time,
                    kind=ecc.kind,
                    amount=ecc.amount,
                )
            )
    return Workload(
        jobs=jobs,
        eccs=eccs,
        machine_size=target_machine,
        granularity=target_gran,
        description=f"merge of {len(workloads)} workloads",
    )


__all__ = ["filter_jobs", "head", "merge", "time_slice"]
