"""Workload transformations: slicing, merging, filtering.

Standard trace-handling operations when working with archive logs or
composing scenarios:

- :func:`time_slice` — extract a submission window (re-based to t=0),
- :func:`merge` — combine workloads (e.g. a batch background plus a
  hand-built dedicated schedule) with job-id collision handling,
- :func:`filter_jobs` — keep a predicate-selected subset with its ECCs,
- :func:`head` — the first N jobs by submission,
- :func:`make_malleable` — declare ``[min, pref, max]`` processor
  ranges on a sampled subset of batch jobs (docs/malleability.md).

All functions return new :class:`Workload` objects; inputs are never
mutated (jobs are copied via :meth:`Job.copy_for_run`).
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from repro.workload.ecc import ECC
from repro.workload.generator import Workload
from repro.workload.job import Job


def _copy_shift(job: Job, delta: float) -> Job:
    return Job(
        job_id=job.job_id,
        submit=job.submit + delta,
        num=job.num,
        estimate=job.original_estimate,
        actual=job.actual,
        kind=job.kind,
        requested_start=(
            None if job.requested_start is None else job.requested_start + delta
        ),
        cancel_at=None if job.cancel_at is None else job.cancel_at + delta,
        min_procs=job.min_procs,
        pref_procs=job.pref_procs,
        max_procs=job.max_procs,
    )


def time_slice(
    workload: Workload,
    start: float,
    end: float,
    rebase: bool = True,
) -> Workload:
    """Jobs submitted in ``[start, end)``, with their ECCs.

    Args:
        workload: Source workload.
        start / end: Submission-time window.
        rebase: Shift the slice so its first kept submission is the
            window start relative to zero (standard when excerpting
            archive logs).

    Raises:
        ValueError: when ``start >= end``.
    """
    if start >= end:
        raise ValueError(f"empty window [{start}, {end})")
    kept = [job for job in workload.jobs if start <= job.submit < end]
    delta = -start if rebase else 0.0
    kept_ids = {job.job_id for job in kept}
    jobs = [_copy_shift(job, delta) for job in kept]
    eccs = [
        ECC(
            job_id=e.job_id,
            issue_time=max(0.0, e.issue_time + delta),
            kind=e.kind,
            amount=e.amount,
        )
        for e in workload.eccs
        if e.job_id in kept_ids
    ]
    return Workload(
        jobs=jobs,
        eccs=eccs,
        machine_size=workload.machine_size,
        granularity=workload.granularity,
        description=f"{workload.description} [slice {start:g}..{end:g})".strip(),
    )


def filter_jobs(
    workload: Workload, predicate: Callable[[Job], bool]
) -> Workload:
    """Keep jobs satisfying ``predicate`` (and their ECCs)."""
    kept = [job.copy_for_run() for job in workload.jobs if predicate(job)]
    kept_ids = {job.job_id for job in kept}
    return Workload(
        jobs=kept,
        eccs=[e for e in workload.eccs if e.job_id in kept_ids],
        machine_size=workload.machine_size,
        granularity=workload.granularity,
        description=f"{workload.description} [filtered]".strip(),
    )


def head(workload: Workload, n: int) -> Workload:
    """The first ``n`` jobs by submission order (with their ECCs)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    kept_ids = {job.job_id for job in workload.jobs[:n]}
    return filter_jobs(workload, lambda job: job.job_id in kept_ids)


def make_malleable(
    workload: Workload,
    fraction: float = 1.0,
    *,
    min_factor: float = 0.5,
    pref_factor: float = 1.5,
    max_factor: float = 2.0,
    seed: int = 0,
) -> Workload:
    """Declare a malleability range on a sampled subset of batch jobs.

    The rigid sizes and runtimes are untouched — a job selected here
    merely *permits* the scheduler-initiated malleability layer
    (:mod:`repro.core.malleable`, docs/malleability.md) to resize it at
    runtime.  Under any non-malleable policy the returned workload
    therefore behaves byte-identically to the input (the CI
    ``malleable-equivalence`` job pins this).

    Args:
        workload: Source workload (never mutated).
        fraction: Probability each *batch* job is made malleable
            (dedicated jobs are rigid in time and stay rigid in size).
        min_factor: ``min_procs = num * min_factor`` (floored, clamped
            into ``[1, num]``).
        pref_factor: ``pref_procs = num * pref_factor`` (rounded,
            clamped into the range).
        max_factor: ``max_procs = num * max_factor`` (ceiled, clamped
            into ``[num, machine_size]``).
        seed: Selection RNG seed — one draw per batch job in workload
            order, so the same seed always picks the same jobs.

    Raises:
        ValueError: on a fraction outside ``[0, 1]`` or factors that
            cannot produce a valid range.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not 0.0 < min_factor <= 1.0:
        raise ValueError(f"min_factor must be in (0, 1], got {min_factor}")
    if max_factor < 1.0:
        raise ValueError(f"max_factor must be >= 1, got {max_factor}")
    rng = random.Random(seed)
    machine_size = workload.machine_size
    jobs: List[Job] = []
    for job in workload.jobs:
        clone = job.copy_for_run()
        if not clone.is_dedicated and rng.random() < fraction:
            lo = max(1, min(clone.num, int(clone.num * min_factor)))
            hi = max(clone.num, min(machine_size, math.ceil(clone.num * max_factor)))
            pref = max(lo, min(hi, int(round(clone.num * pref_factor))))
            clone.min_procs = lo
            clone.pref_procs = pref
            clone.max_procs = hi
        jobs.append(clone)
    return Workload(
        jobs=jobs,
        eccs=list(workload.eccs),
        machine_size=machine_size,
        granularity=workload.granularity,
        description=f"{workload.description} [malleable f={fraction:g}]".strip(),
    )


def merge(
    workloads: Sequence[Workload],
    machine_size: Optional[int] = None,
    granularity: Optional[int] = None,
) -> Workload:
    """Combine workloads into one, remapping colliding job ids.

    Ids from the first workload are preserved; later workloads keep
    their ids where unique and otherwise get fresh ids above the
    current maximum (their ECCs are remapped consistently).

    Args:
        workloads: At least one source.
        machine_size / granularity: Target geometry; defaults to the
            maxima across sources (so every job still fits).
    """
    if not workloads:
        raise ValueError("need at least one workload")
    target_machine = machine_size or max(w.machine_size for w in workloads)
    target_gran = granularity or max(w.granularity for w in workloads)

    jobs: List[Job] = []
    eccs: List[ECC] = []
    used_ids: set[int] = set()
    next_id = 1
    for source in workloads:
        remap: dict[int, int] = {}
        for job in source.jobs:
            new_id = job.job_id
            if new_id in used_ids:
                while next_id in used_ids:
                    next_id += 1
                new_id = next_id
            remap[job.job_id] = new_id
            used_ids.add(new_id)
            clone = job.copy_for_run()
            clone.job_id = new_id
            jobs.append(clone)
        for ecc in source.eccs:
            eccs.append(
                ECC(
                    job_id=remap[ecc.job_id],
                    issue_time=ecc.issue_time,
                    kind=ecc.kind,
                    amount=ecc.amount,
                )
            )
    return Workload(
        jobs=jobs,
        eccs=eccs,
        machine_size=target_machine,
        granularity=target_gran,
        description=f"merge of {len(workloads)} workloads",
    )


__all__ = ["filter_jobs", "head", "make_malleable", "merge", "time_slice"]
